"""Differential suite: 30 seeded graph/config/placement scenarios.

Every case runs FastBFS and X-Stream on the same input and checks that

* both agree exactly with the in-memory reference BFS on levels;
* both produce a valid parent tree (Graph500 rules, reference-checked);
* the :class:`~repro.obs.CounterRegistry` sampled from each machine
  reconciles **bit-for-bit** with the run's :class:`IOReport` — per
  device, per stream role, and in the persistent-device totals.

The scenario matrix deliberately crosses the axes the engines special-case:
degree skew (powerlaw/R-MAT vs uniform), disconnected components,
self-loops, trimming thresholds/grace, selective scheduling, partition
counts, and one- vs two-disk stream placement (with and without rotation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.reference import bfs_levels
from repro.algorithms.validation import validate_bfs_result
from repro.core.engine import FastBFSEngine
from repro.engines.xstream import XStreamEngine
from repro.graph.generators import (
    grid_graph,
    powerlaw_graph,
    random_graph,
    rmat_graph,
)
from repro.graph.graph import Graph
from repro.obs import CounterRegistry
from tests.helpers import fresh_machine, small_fastbfs_config

NUM_CASES = 30


# ----------------------------------------------------------------------
# Scenario matrix (deterministic in the case index)
# ----------------------------------------------------------------------
def _graph_for(i: int) -> Graph:
    kind = ("random", "powerlaw", "rmat", "grid", "selfloop",
            "disconnected")[i % 6]
    seed = 1000 + i
    if kind == "random":
        return random_graph(80 + 20 * i, 5 * (80 + 20 * i), seed=seed)
    if kind == "powerlaw":
        # Heavy degree skew: a few hubs own most out-edges.
        return powerlaw_graph(300 + 10 * i, 3000, out_exponent=1.8, seed=seed)
    if kind == "rmat":
        return rmat_graph(scale=8, edge_factor=8, seed=seed)
    if kind == "grid":
        return grid_graph(12 + i, 10)
    if kind == "selfloop":
        base = random_graph(150, 900, seed=seed)
        rng = np.random.RandomState(seed)
        loops = rng.randint(0, base.num_vertices, size=40)
        src = np.concatenate([base.edges["src"], loops])
        dst = np.concatenate([base.edges["dst"], loops])
        return Graph.from_arrays(base.num_vertices, src, dst,
                                 name=f"selfloop{i}")
    # disconnected: two random blocks with no cross edges, plus isolated
    # tail vertices that appear in no edge at all.
    a = random_graph(120, 700, seed=seed)
    b = random_graph(60, 300, seed=seed + 1)
    src = np.concatenate([a.edges["src"], b.edges["src"] + a.num_vertices])
    dst = np.concatenate([a.edges["dst"], b.edges["dst"] + a.num_vertices])
    return Graph.from_arrays(a.num_vertices + b.num_vertices + 10, src, dst,
                             name=f"disconnected{i}")


def _config_for(i: int):
    # Trim thresholds cycle through off / immediate / delayed / triggered.
    return small_fastbfs_config(
        num_partitions=1 + i % 5,
        trim_enabled=(i % 3 != 2),
        trim_start_iteration=i % 4,
        trim_trigger_fraction=(0.0, 0.2, 0.5)[i % 3],
        cancellation_grace=(0.0, 0.001, 0.01)[(i // 2) % 3],
        selective_scheduling=bool(i % 2),
        extended_trim=bool((i // 3) % 2),
        rotate_streams=(i % 2 == 1 and i % 4 == 1),
        stay_disk=(1 if (i % 10 == 0 and i % 2 == 1) else None),
    )


def _placement_for(i: int):
    """(num_disks, memory_kb): one- vs two-disk, always out-of-core."""
    num_disks = 1 + i % 2
    memory_kb = (64, 256, 1024)[i % 3]
    return num_disks, memory_kb


def _root_for(graph: Graph, i: int) -> int:
    deg = graph.out_degrees()
    if i % 4 == 0:
        return int(np.argmax(deg))
    candidates = np.flatnonzero(deg > 0)
    return int(candidates[i % len(candidates)]) if len(candidates) else 0


def _assert_counters_reconcile(machine, result) -> None:
    registry = CounterRegistry.from_machine(machine)
    errors = registry.reconcile(result.report)
    assert errors == [], "\n".join(errors)
    # Byte totals equal the IOReport bit-for-bit, device by device.
    for dev in result.report.devices:
        assert registry.total(
            "device_bytes_total", device=dev.name, kind="read"
        ) == dev.bytes_read
        assert registry.total(
            "device_bytes_total", device=dev.name, kind="write"
        ) == dev.bytes_written
    persistent = [d for d in result.report.devices if d.kind != "ram"]
    assert sum(d.bytes_total for d in persistent) == result.report.bytes_total
    # The report-derived registry agrees with the machine-derived one on
    # every device byte series.
    from_report = CounterRegistry.from_report(result.report)
    assert from_report.reconcile(result.report) == []


@pytest.mark.parametrize("case", range(NUM_CASES))
def test_differential_case(case):
    graph = _graph_for(case)
    cfg = _config_for(case)
    num_disks, memory_kb = _placement_for(case)
    if (cfg.rotate_streams or cfg.stay_disk) and num_disks < 2:
        num_disks = 2  # two-disk placements need two disks
    root = _root_for(graph, case)
    ref = bfs_levels(graph, root)

    fb_machine = fresh_machine(num_disks=num_disks, memory=memory_kb * 1024)
    fb = FastBFSEngine(cfg).run(graph, fb_machine, root=root)

    xs_machine = fresh_machine(num_disks=num_disks, memory=memory_kb * 1024)
    xs = XStreamEngine(cfg).run(graph, xs_machine, root=root)

    # Level agreement: engine vs engine vs in-memory reference.
    assert np.array_equal(fb.levels, ref), f"fastbfs levels diverge (case {case})"
    assert np.array_equal(xs.levels, ref), f"x-stream levels diverge (case {case})"

    # Parent validity under the Graph500 rules, pinned to the reference.
    for result, name in ((fb, "fastbfs"), (xs, "x-stream")):
        report = validate_bfs_result(
            graph, root, result.levels, result.parents, reference_levels=ref
        )
        assert report.ok, f"{name} case {case}: {report.errors}"

    # Counters reconcile exactly with the IOReport on both machines.
    _assert_counters_reconcile(fb_machine, fb)
    _assert_counters_reconcile(xs_machine, xs)


def test_case_matrix_covers_the_advertised_axes():
    """The 30 scenarios really do span the matrix the docstring claims."""
    graphs = [_graph_for(i) for i in range(NUM_CASES)]
    names = {g.name.rstrip("0123456789") for g in graphs}
    assert any("selfloop" in n for n in names)
    assert any("disconnected" in n for n in names)
    configs = [_config_for(i) for i in range(NUM_CASES)]
    assert {c.trim_enabled for c in configs} == {True, False}
    assert len({c.trim_start_iteration for c in configs}) >= 3
    assert len({c.trim_trigger_fraction for c in configs}) >= 2
    assert {c.selective_scheduling for c in configs} == {True, False}
    assert any(c.rotate_streams for c in configs)
    assert {_placement_for(i)[0] for i in range(NUM_CASES)} == {1, 2}

    # Self-loop graphs genuinely contain self-loops, disconnected graphs
    # genuinely have more than one component reachable set.
    loopy = next(g for g in graphs if g.name.startswith("selfloop"))
    assert (loopy.edges["src"] == loopy.edges["dst"]).any()
    disc = next(g for g in graphs if g.name.startswith("disconnected"))
    hub = int(np.argmax(disc.out_degrees()))
    assert (bfs_levels(disc, hub) < 0).any()
