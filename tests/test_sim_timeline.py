"""Tests for the FIFO device timeline, including cancellation semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TimelineError
from repro.sim.timeline import Timeline


class TestScheduling:
    def test_idle_device_starts_immediately(self):
        tl = Timeline()
        req = tl.schedule(submit=1.0, service=2.0, nbytes=100, kind="read")
        assert req.start == 1.0
        assert req.end == 3.0
        assert req.queue_delay == 0.0

    def test_fifo_queueing(self):
        tl = Timeline()
        a = tl.schedule(0.0, 5.0, 10, "read")
        b = tl.schedule(1.0, 2.0, 10, "write")
        assert b.start == a.end == 5.0
        assert b.end == 7.0
        assert b.queue_delay == 4.0

    def test_gap_between_requests(self):
        tl = Timeline()
        tl.schedule(0.0, 1.0, 10, "read")
        b = tl.schedule(10.0, 1.0, 10, "read")
        assert b.start == 10.0  # device was idle in between

    def test_free_at(self):
        tl = Timeline()
        assert tl.free_at == 0.0
        tl.schedule(0.0, 3.0, 10, "read")
        assert tl.free_at == 3.0

    def test_zero_service_allowed(self):
        req = Timeline().schedule(0.0, 0.0, 0, "read")
        assert req.start == req.end

    def test_negative_service_rejected(self):
        with pytest.raises(TimelineError):
            Timeline().schedule(0.0, -1.0, 10, "read")

    def test_negative_size_rejected(self):
        with pytest.raises(TimelineError):
            Timeline().schedule(0.0, 1.0, -1, "read")

    def test_bad_kind_rejected(self):
        with pytest.raises(TimelineError):
            Timeline().schedule(0.0, 1.0, 1, "erase")

    def test_non_monotonic_submission_rejected(self):
        tl = Timeline()
        tl.schedule(5.0, 1.0, 10, "read")
        with pytest.raises(TimelineError):
            tl.schedule(4.0, 1.0, 10, "read")

    def test_byte_accounting(self):
        tl = Timeline()
        tl.schedule(0.0, 1.0, 100, "read")
        tl.schedule(0.0, 1.0, 50, "write")
        tl.schedule(0.0, 1.0, 25, "read")
        assert tl.bytes_read == 125
        assert tl.bytes_written == 50

    def test_request_count(self):
        tl = Timeline()
        for i in range(5):
            tl.schedule(float(i), 0.1, 1, "read")
        assert tl.request_count == 5


class TestCancellation:
    def test_cancel_queued_request(self):
        tl = Timeline()
        tl.schedule(0.0, 10.0, 10, "read", group="keep")
        victim = tl.schedule(0.0, 5.0, 20, "write", group="stay")
        cancelled = tl.cancel(now=0.0, predicate=lambda r: r.group == "stay")
        assert cancelled == [victim]
        assert victim.cancelled
        assert tl.bytes_written == 0
        assert tl.free_at == 10.0  # only the read remains

    def test_cannot_cancel_in_service(self):
        tl = Timeline()
        running = tl.schedule(0.0, 10.0, 10, "write", group="g")
        cancelled = tl.cancel(now=5.0, predicate=lambda r: True)
        assert cancelled == []
        assert not running.cancelled

    def test_repack_moves_later_requests_earlier(self):
        tl = Timeline()
        tl.schedule(0.0, 2.0, 10, "read")  # runs [0, 2)
        mid = tl.schedule(0.0, 6.0, 10, "write", group="victim")  # [2, 8)
        tail = tl.schedule(0.0, 1.0, 10, "read")  # [8, 9)
        assert tail.start == 8.0
        tl.cancel(now=0.5, predicate=lambda r: r.group == "victim")
        assert tail.start == 2.0
        assert tail.end == 3.0
        assert not mid in tl.pending_requests()

    def test_repack_respects_now(self):
        """A repacked request cannot start before the cancellation time."""
        tl = Timeline()
        tl.schedule(0.0, 1.0, 10, "write", group="v")  # runs [0, 1)
        tail = tl.schedule(0.0, 1.0, 10, "write", group="t")  # [1, 2)
        # Cancel 't' predecessors at t=1.5 — nothing to cancel that started,
        # but repack of 't' itself must not move before now.
        tl.cancel(now=1.4, predicate=lambda r: r.group == "none")
        assert tail.start == 1.0  # untouched: no cancellation happened

    def test_cancel_is_selective(self):
        tl = Timeline()
        blocker = tl.schedule(0.0, 4.0, 1, "read")
        a = tl.schedule(0.0, 1.0, 1, "write", group="a")
        b = tl.schedule(0.0, 1.0, 1, "write", group="b")
        tl.cancel(now=0.0, predicate=lambda r: r.group == "a")
        assert not b.cancelled
        assert b.start == blocker.end

    def test_busy_time_after_cancel(self):
        tl = Timeline()
        tl.schedule(0.0, 2.0, 1, "read")
        tl.schedule(0.0, 3.0, 1, "write", group="v")
        tl.cancel(now=0.0, predicate=lambda r: r.group == "v")
        assert tl.busy_time_until(10.0) == pytest.approx(2.0)


class TestQueries:
    def test_group_end(self):
        tl = Timeline()
        tl.schedule(0.0, 1.0, 1, "write", group="g")
        last = tl.schedule(0.0, 1.0, 1, "write", group="g")
        assert tl.group_end("g") == last.end

    def test_group_end_missing(self):
        assert Timeline().group_end("nope") is None

    def test_busy_time_partial(self):
        tl = Timeline()
        tl.schedule(0.0, 4.0, 1, "read")  # busy [0, 4)
        assert tl.busy_time_until(2.0) == pytest.approx(2.0)
        assert tl.busy_time_until(4.0) == pytest.approx(4.0)
        assert tl.busy_time_until(100.0) == pytest.approx(4.0)

    def test_busy_time_with_gap(self):
        tl = Timeline()
        tl.schedule(0.0, 1.0, 1, "read")
        tl.schedule(5.0, 1.0, 1, "read")
        assert tl.busy_time_until(10.0) == pytest.approx(2.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10),  # submit delta
            st.floats(min_value=0, max_value=5),  # service
        ),
        min_size=1,
        max_size=40,
    )
)
def test_fifo_invariants(ops):
    """Requests never overlap, never start before submission, stay FIFO."""
    tl = Timeline()
    t = 0.0
    reqs = []
    for delta, service in ops:
        t += delta
        reqs.append(tl.schedule(t, service, 1, "read"))
    for req in reqs:
        assert req.start >= req.submit
        assert req.end == pytest.approx(req.start + req.service)
    for prev, cur in zip(reqs, reqs[1:]):
        assert cur.start >= prev.end - 1e-9
