"""Tests for BFS path extraction/checking and diameter estimation."""

import numpy as np
import pytest

from repro.algorithms.diameter import (
    DiameterEstimate,
    double_sweep_diameter,
    engine_sweep,
)
from repro.algorithms.paths import (
    extract_path,
    hop_distances_from_paths,
    path_exists_in_graph,
)
from repro.algorithms.reference import bfs_parents_and_levels
from repro.errors import GraphError, ValidationError
from repro.graph.generators import grid_graph, path_graph, rmat_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.types import NO_PARENT


class TestExtractPath:
    def setup_method(self):
        self.graph = rmat_graph(scale=9, edge_factor=8, seed=8)
        self.root = int(np.argmax(self.graph.out_degrees()))
        self.levels, self.parents = bfs_parents_and_levels(self.graph, self.root)

    def test_path_to_root_is_trivial(self):
        assert extract_path(self.parents, self.root, self.root) == [self.root]

    def test_extracted_path_is_real_and_shortest(self):
        targets = np.flatnonzero(self.levels >= 2)[:20]
        for t in targets:
            path = extract_path(self.parents, self.root, int(t))
            assert path[0] == self.root and path[-1] == t
            assert len(path) - 1 == self.levels[t]
            assert path_exists_in_graph(self.graph, path)

    def test_unreached_returns_none(self):
        unreached = np.flatnonzero(self.levels < 0)
        if len(unreached) == 0:
            pytest.skip("fully reachable")
        assert extract_path(self.parents, self.root, int(unreached[0])) is None

    def test_cycle_detected(self):
        parents = np.array([1, 0, NO_PARENT], dtype=np.uint32)
        with pytest.raises(ValidationError):
            extract_path(parents, 2, 0)

    def test_broken_chain_detected(self):
        parents = np.array([NO_PARENT, 9, NO_PARENT], dtype=np.uint32)
        with pytest.raises(ValidationError):
            extract_path(parents, 0, 1)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            extract_path(np.array([0], dtype=np.uint32), 0, 5)


class TestPathExists:
    def test_real_path(self):
        g = path_graph(5)
        assert path_exists_in_graph(g, [0, 1, 2, 3])

    def test_fake_hop(self):
        g = path_graph(5)
        assert not path_exists_in_graph(g, [0, 2])

    def test_trivial_paths(self):
        g = path_graph(3)
        assert path_exists_in_graph(g, [1])
        assert path_exists_in_graph(g, [])


class TestHopDistances:
    def test_matches_levels(self):
        g = grid_graph(8, 8)
        levels, parents = bfs_parents_and_levels(g, 0)
        hops = hop_distances_from_paths(parents, levels, 0, [0, 7, 63])
        assert hops == [0, int(levels[7]), int(levels[63])]

    def test_contradiction_raises(self):
        g = path_graph(4)
        levels, parents = bfs_parents_and_levels(g, 0)
        levels = levels.copy()
        levels[3] = 1  # lie
        with pytest.raises(ValidationError):
            hop_distances_from_paths(parents, levels, 0, [3])


class TestDiameter:
    def test_path_graph_exact(self):
        g = path_graph(40).symmetrized()
        est = double_sweep_diameter(g, seed_root=20)
        assert est.lower_bound == 39

    def test_grid_exact(self):
        g = grid_graph(10, 6)
        est = double_sweep_diameter(g, seed_root=33)
        assert est.lower_bound == 9 + 5  # manhattan corner-to-corner

    def test_star(self):
        est = double_sweep_diameter(star_graph(20).symmetrized(), seed_root=0)
        assert est.lower_bound == 2

    def test_lower_bound_never_exceeds_true_diameter(self):
        import networkx as nx

        g = rmat_graph(scale=7, edge_factor=4, seed=5).symmetrized()
        est = double_sweep_diameter(g)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_vertices))
        nxg.add_edges_from(zip(g.edges["src"].tolist(), g.edges["dst"].tolist()))
        giant = max(nx.connected_components(nxg), key=len)
        true_diameter = nx.diameter(nxg.subgraph(giant))
        assert est.lower_bound <= true_diameter
        assert est.lower_bound >= true_diameter // 2  # double sweep quality

    def test_sweeps_bounded(self):
        g = grid_graph(12, 12)
        est = double_sweep_diameter(g, max_sweeps=2)
        assert est.sweeps <= 2
        assert len(est.sweep_roots) == est.sweeps

    def test_engine_sweep_adapter(self):
        from tests.helpers import fresh_machine, small_fastbfs_config
        from repro.core.engine import FastBFSEngine

        g = grid_graph(9, 5)
        sweep = engine_sweep(
            lambda: FastBFSEngine(small_fastbfs_config(num_partitions=2)),
            fresh_machine,
        )
        est = double_sweep_diameter(g, seed_root=22, sweep=sweep)
        reference = double_sweep_diameter(g, seed_root=22)
        assert est.lower_bound == reference.lower_bound

    def test_bad_args(self):
        with pytest.raises(GraphError):
            double_sweep_diameter(path_graph(3), max_sweeps=0)
        with pytest.raises(GraphError):
            double_sweep_diameter(path_graph(3), seed_root=9)
