"""Unit tests + property tests for byte/time formatting and parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.utils.units import (
    GB,
    KB,
    MB,
    TB,
    format_bytes,
    format_seconds,
    parse_bytes,
)


class TestParseBytes:
    def test_plain_int(self):
        assert parse_bytes(1234) == 1234

    def test_zero(self):
        assert parse_bytes(0) == 0

    def test_float_truncates(self):
        assert parse_bytes(10.9) == 10

    def test_plain_string_number(self):
        assert parse_bytes("4096") == 4096

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1KB", KB),
            ("1kb", KB),
            ("2K", 2 * KB),
            ("16MB", 16 * MB),
            ("1.5GB", int(1.5 * GB)),
            ("4GiB", 4 * GB),
            ("1TB", TB),
            ("256 MB", 256 * MB),
            ("100B", 100),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("bad", ["", "MB", "12XB", "1.2.3GB", "-5MB", None, [1]])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigError):
            parse_bytes(bad)

    def test_rejects_negative_int(self):
        with pytest.raises(ConfigError):
            parse_bytes(-1)

    def test_rejects_bool(self):
        with pytest.raises(ConfigError):
            parse_bytes(True)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_roundtrip_int_identity(self, n):
        assert parse_bytes(n) == n

    @given(st.integers(min_value=0, max_value=2**40 // KB))
    def test_kb_string_roundtrip(self, n):
        assert parse_bytes(f"{n}KB") == n * KB


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (KB, "1.00KB"),
            (1536, "1.50KB"),
            (3 * MB, "3.00MB"),
            (2 * GB, "2.00GB"),
            (5 * TB, "5.00TB"),
        ],
    )
    def test_values(self, value, expected):
        assert format_bytes(value) == expected

    def test_negative(self):
        assert format_bytes(-2 * MB) == "-2.00MB"

    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_never_raises(self, value):
        out = format_bytes(value)
        assert isinstance(out, str) and out


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0015, "2ms"),
            (0.25, "250ms"),
            (1.5, "1.50s"),
            (90, "90.00s"),
            (125, "2m05s"),
            (3600 * 2 + 60 * 5, "2h05m"),
        ],
    )
    def test_values(self, value, expected):
        assert format_seconds(value) == expected

    def test_negative(self):
        assert format_seconds(-2.0) == "-2.00s"

    @given(st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_never_raises(self, value):
        assert isinstance(format_seconds(value), str)
