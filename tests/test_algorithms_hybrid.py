"""Tests for direction-optimizing (hybrid) BFS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.hybrid import hybrid_bfs
from repro.algorithms.reference import bfs_levels, bfs_parents_and_levels
from repro.algorithms.validation import validate_bfs_result
from repro.errors import GraphError
from repro.graph.generators import (
    grid_graph,
    path_graph,
    random_graph,
    rmat_graph,
    star_graph,
)


class TestCorrectness:
    def test_levels_match_reference_rmat(self):
        g = rmat_graph(scale=11, edge_factor=16, seed=4)
        root = int(np.argmax(g.out_degrees()))
        result = hybrid_bfs(g, root)
        assert np.array_equal(result.levels, bfs_levels(g, root))

    def test_valid_bfs_tree(self):
        g = rmat_graph(scale=10, edge_factor=8, seed=9)
        root = int(np.argmax(g.out_degrees()))
        result = hybrid_bfs(g, root)
        validate_bfs_result(
            g, root, result.levels, result.parents, bfs_levels(g, root)
        ).raise_if_failed()

    def test_directed_correctness(self):
        """Bottom-up scans in-edges, so direction must be respected."""
        g = star_graph(200, out=False)  # leaves -> hub only
        result = hybrid_bfs(g, 0)
        assert result.levels[0] == 0
        assert (result.levels[1:] == -1).all()

    def test_path(self):
        result = hybrid_bfs(path_graph(30), 0)
        assert result.levels.tolist() == list(range(30))

    def test_grid(self):
        g = grid_graph(20, 20)
        assert np.array_equal(hybrid_bfs(g, 0).levels, bfs_levels(g, 0))

    def test_bad_root(self):
        with pytest.raises(GraphError):
            hybrid_bfs(path_graph(3), 3)

    def test_bad_constants(self):
        with pytest.raises(GraphError):
            hybrid_bfs(path_graph(3), 0, alpha=0)
        with pytest.raises(GraphError):
            hybrid_bfs(path_graph(3), 0, beta=-1)

    @given(
        n=st.integers(min_value=2, max_value=80),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_reference(self, n, seed):
        g = random_graph(n, 4 * n, seed=seed)
        root = seed % n
        assert np.array_equal(hybrid_bfs(g, root).levels, bfs_levels(g, root))


class TestDirectionSwitching:
    def test_switches_bottom_up_on_skewed_graph(self):
        """Beamer's defaults switch on an R-MAT frontier explosion."""
        g = rmat_graph(scale=11, edge_factor=16, seed=4)
        root = int(np.argmax(g.out_degrees()))
        result = hybrid_bfs(g, root)
        assert result.used_bottom_up
        assert result.directions[0] == "top-down"  # tiny frontier first

    def test_pure_top_down_with_tiny_alpha(self):
        """alpha -> 0 raises the switch threshold beyond any frontier."""
        g = rmat_graph(scale=9, edge_factor=8, seed=2)
        root = int(np.argmax(g.out_degrees()))
        result = hybrid_bfs(g, root, alpha=1e-9)
        assert not result.used_bottom_up

    def test_bottom_up_examines_fewer_edges_at_peak(self):
        """The point of the optimization: fewer edge checks overall."""
        g = rmat_graph(scale=12, edge_factor=16, seed=6)
        root = int(np.argmax(g.out_degrees()))
        hybrid = hybrid_bfs(g, root)
        top_down_only = hybrid_bfs(g, root, alpha=1e-9)
        assert hybrid.used_bottom_up
        assert hybrid.total_edges_examined < top_down_only.total_edges_examined

    def test_trace_lengths_consistent(self):
        g = rmat_graph(scale=9, edge_factor=8, seed=1)
        root = int(np.argmax(g.out_degrees()))
        result = hybrid_bfs(g, root)
        assert len(result.directions) == len(result.edges_examined)
        assert len(result.directions) >= result.depth
