"""Tests for the in-memory reference BFS and the convergence profile."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import networkx as nx

from repro.algorithms.reference import (
    bfs_levels,
    bfs_parents_and_levels,
    level_profile,
    reachable_count,
)
from repro.errors import GraphError
from repro.graph.generators import grid_graph, path_graph, random_graph, rmat_graph
from repro.graph.graph import Graph
from repro.graph.types import NO_PARENT, UNVISITED


def networkx_levels(graph: Graph, root: int) -> np.ndarray:
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(zip(graph.edges["src"].tolist(), graph.edges["dst"].tolist()))
    lengths = nx.single_source_shortest_path_length(g, root)
    out = np.full(graph.num_vertices, UNVISITED, dtype=np.int32)
    for v, d in lengths.items():
        out[v] = d
    return out


class TestBfsLevels:
    def test_path(self):
        levels = bfs_levels(path_graph(5), 0)
        assert levels.tolist() == [0, 1, 2, 3, 4]

    def test_unreachable(self):
        g = Graph.from_edge_pairs(4, [(0, 1)])
        levels = bfs_levels(g, 0)
        assert levels.tolist() == [0, 1, UNVISITED, UNVISITED]

    def test_root_only(self):
        g = Graph.from_edge_pairs(3, [])
        assert bfs_levels(g, 2).tolist() == [UNVISITED, UNVISITED, 0]

    def test_self_loops_ignored(self):
        g = Graph.from_edge_pairs(2, [(0, 0), (0, 1)])
        assert bfs_levels(g, 0).tolist() == [0, 1]

    def test_multi_edges_equivalent(self):
        g1 = Graph.from_edge_pairs(3, [(0, 1), (0, 1), (1, 2)])
        g2 = Graph.from_edge_pairs(3, [(0, 1), (1, 2)])
        assert np.array_equal(bfs_levels(g1, 0), bfs_levels(g2, 0))

    def test_bad_root(self):
        with pytest.raises(GraphError):
            bfs_levels(path_graph(3), 5)

    def test_against_networkx_rmat(self):
        g = rmat_graph(scale=9, edge_factor=8, seed=4)
        root = int(np.argmax(g.out_degrees()))
        assert np.array_equal(bfs_levels(g, root), networkx_levels(g, root))

    def test_against_networkx_grid(self):
        g = grid_graph(9, 7)
        assert np.array_equal(bfs_levels(g, 13), networkx_levels(g, 13))

    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_networkx(self, n, seed):
        g = random_graph(n, 3 * n, seed=seed)
        root = seed % n
        assert np.array_equal(bfs_levels(g, root), networkx_levels(g, root))


class TestParents:
    def test_root_has_no_parent(self):
        levels, parents = bfs_parents_and_levels(path_graph(4), 0)
        assert parents[0] == NO_PARENT

    def test_parents_descend_one_level(self):
        g = rmat_graph(scale=8, edge_factor=8, seed=2)
        root = int(np.argmax(g.out_degrees()))
        levels, parents = bfs_parents_and_levels(g, root)
        tree = np.flatnonzero((levels > 0))
        assert (levels[parents[tree].astype(np.int64)] == levels[tree] - 1).all()

    def test_parent_edges_exist(self):
        g = random_graph(80, 400, seed=6)
        levels, parents = bfs_parents_and_levels(g, 0)
        pairs = set(zip(g.edges["src"].tolist(), g.edges["dst"].tolist()))
        for v in np.flatnonzero(levels > 0):
            assert (int(parents[v]), int(v)) in pairs

    def test_deterministic_lowest_parent(self):
        g = Graph.from_edge_pairs(4, [(0, 2), (1, 2), (0, 1), (0, 3), (3, 2)])
        _, parents = bfs_parents_and_levels(g, 0)
        assert parents[2] == 0  # 0 beats 1 and 3 as parent of 2

    def test_unreachable_have_no_parent(self):
        g = Graph.from_edge_pairs(3, [(0, 1)])
        _, parents = bfs_parents_and_levels(g, 0)
        assert parents[2] == NO_PARENT


class TestReachableCount:
    def test_counts_root(self):
        assert reachable_count(path_graph(4), 3) == 1

    def test_full_path(self):
        assert reachable_count(path_graph(4), 0) == 4


class TestLevelProfile:
    def test_path_profile(self):
        prof = level_profile(path_graph(4), 0)
        assert prof.frontier_sizes == [1, 1, 1, 1]
        assert prof.scatter_edges == [1, 1, 1, 0]
        assert prof.depth == 3

    def test_remaining_edges_monotone(self):
        g = rmat_graph(scale=10, edge_factor=8, seed=7)
        prof = level_profile(g, int(np.argmax(g.out_degrees())))
        remaining = prof.remaining_edges
        assert all(a >= b for a, b in zip(remaining, remaining[1:]))
        assert remaining[-1] >= 0

    def test_useful_fraction_starts_at_one(self):
        g = rmat_graph(scale=8, edge_factor=8, seed=1)
        prof = level_profile(g, int(np.argmax(g.out_degrees())))
        assert prof.useful_fraction[0] == 1.0

    def test_fig1_shape_on_skewed_graph(self):
        """Fig. 1's claim: the useful fraction decays as levels proceed."""
        g = rmat_graph(scale=11, edge_factor=16, seed=3)
        prof = level_profile(g, int(np.argmax(g.out_degrees())))
        fractions = prof.useful_fraction
        assert fractions[min(3, len(fractions) - 1)] < 0.55

    def test_scan_totals(self):
        g = rmat_graph(scale=8, edge_factor=8, seed=2)
        prof = level_profile(g, int(np.argmax(g.out_degrees())))
        without = prof.total_scanned_without_trimming()
        with_trim = prof.total_scanned_with_trimming()
        assert with_trim < without
        assert without == g.num_edges * (prof.depth + 1)

    def test_frontier_sums_to_reachable(self):
        g = random_graph(100, 400, seed=8)
        prof = level_profile(g, 0)
        assert sum(prof.frontier_sizes) == reachable_count(g, 0)
