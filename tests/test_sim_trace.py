"""Tests for request tracing and Gantt rendering."""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root, small_fastbfs_config

from repro.core.engine import FastBFSEngine
from repro.errors import SimulationError
from repro.graph.generators import rmat_graph
from repro.obs import Span, Tracer
from repro.sim.timeline import Timeline
from repro.sim.trace import (
    lane_key,
    render_gantt,
    render_span_gantt,
    render_timeline_gantt,
    span_lanes,
)
from repro.storage.device import DeviceSpec
from repro.storage.machine import Machine
from repro.utils.units import MB


class TestTraceCapture:
    def test_disabled_by_default(self):
        tl = Timeline()
        tl.schedule(0.0, 1.0, 10, "read", group="edges:p0")
        assert tl.trace == []

    def test_enabled_captures_all(self):
        tl = Timeline(keep_trace=True)
        a = tl.schedule(0.0, 1.0, 10, "read", group="edges:p0")
        b = tl.schedule(0.0, 1.0, 10, "write", group="stay:p0:i0")
        tl.cancel(0.0, lambda r: r is b)
        assert tl.trace == [a, b]
        assert b.cancelled

    def test_machine_trace_flag(self):
        m = Machine([DeviceSpec.hdd()], memory=MB, trace=True)
        assert m.disks[0].timeline.keep_trace
        assert m.ram.timeline.keep_trace


class TestRendering:
    def _traced(self):
        tl = Timeline("hdd0", keep_trace=True)
        tl.schedule(0.0, 1.0, 10, "read", group="edges:p0")
        tl.schedule(0.0, 0.5, 10, "write", group="stay:p0:i0")
        return tl

    def test_untraced_raises(self):
        with pytest.raises(SimulationError):
            render_timeline_gantt(Timeline())

    def test_lanes_per_role(self):
        text = render_timeline_gantt(self._traced(), width=40)
        assert "edges[R]" in text
        assert "stay[W]" in text
        assert "hdd0" in text

    def test_busy_then_idle_shape(self):
        tl = Timeline("d", keep_trace=True)
        tl.schedule(0.0, 1.0, 10, "read", group="edges:p0")  # busy [0,1)
        text = render_timeline_gantt(tl, start=0.0, end=2.0, width=20)
        lane = [l for l in text.splitlines() if "edges" in l][0]
        bar = lane.split()[-1]
        assert bar[:9].count("█") >= 8  # first half busy
        assert bar[-8:].count("·") >= 7  # second half idle

    def test_empty_window(self):
        tl = Timeline("d", keep_trace=True)
        with pytest.raises(SimulationError):
            render_timeline_gantt(tl, start=5.0, end=5.0)

    def test_width_validation(self):
        with pytest.raises(SimulationError):
            render_timeline_gantt(self._traced(), width=3)

    def test_no_requests_message(self):
        tl = Timeline("d", keep_trace=True)
        text = render_timeline_gantt(tl, start=0.0, end=1.0)
        assert "no requests" in text


class TestLaneKeyUnification:
    def test_lane_key_matches_byte_ledger_keys(self):
        """One lane definition: renderer keys == bytes_by_role keys."""
        tl = Timeline("d", keep_trace=True)
        tl.schedule(0.0, 1.0, 10, "read", group="edges:p0")
        tl.schedule(0.0, 0.5, 20, "write", group="stay:p3:i2")
        tl.schedule(0.0, 0.5, 30, "write", group="updates:i1:p2")
        assert {lane_key(r) for r in tl.trace} == set(tl.bytes_by_role())

    def test_lane_of_is_role_kind(self):
        tl = Timeline(keep_trace=True)
        req = tl.schedule(0.0, 1.0, 10, "write", group="stay:p3:i2")
        assert Timeline.lane_of(req) == ("stay", "write")


class TestSpanGantt:
    def _spans(self):
        return [
            Span(1, None, "query", 0.0, 10.0),
            Span(2, 1, "iteration", 0.0, 6.0),
            Span(3, 2, "scatter", 0.0, 4.0),
            Span(4, 1, "stay_flush", 1.0, 3.0),
            Span(5, 1, "open", 9.0, -1.0),  # unfinished: dropped
        ]

    def test_lanes_follow_taxonomy_order(self):
        lanes = span_lanes(self._spans())
        assert [name for name, _ in lanes] == [
            "query", "iteration", "scatter", "stay_flush"
        ]

    def test_names_filter(self):
        lanes = span_lanes(self._spans(), names=("scatter", "stay_flush"))
        assert [name for name, _ in lanes] == ["scatter", "stay_flush"]

    def test_renders_from_span_list(self):
        text = render_span_gantt(self._spans(), width=20, title="t")
        assert "scatter" in text and "stay_flush" in text
        assert "t:" in text

    def test_renders_from_tracer_and_machine(self):
        graph = rmat_graph(scale=9, edge_factor=8, seed=3)
        machine = fresh_machine()
        tracer = Tracer()
        machine.attach_tracer(tracer)
        FastBFSEngine(small_fastbfs_config()).run(
            graph, machine, root=hub_root(graph)
        )
        from_tracer = render_span_gantt(tracer, width=40)
        from_machine = render_span_gantt(machine, width=40)
        assert from_tracer == from_machine
        assert "scatter" in from_tracer

    def test_machine_without_tracer_raises(self):
        with pytest.raises(SimulationError):
            render_span_gantt(fresh_machine())


class TestEngineGantt:
    def test_full_run_renders(self):
        graph = rmat_graph(scale=9, edge_factor=8, seed=3)
        machine = Machine(
            [DeviceSpec.hdd("hdd0"), DeviceSpec.hdd("hdd1")],
            memory=2 * MB, trace=True,
        )
        FastBFSEngine(small_fastbfs_config(rotate_streams=True)).run(
            graph, machine, root=hub_root(graph)
        )
        text = render_gantt(machine, width=60)
        assert "hdd0" in text and "hdd1" in text
        assert "stay[W]" in text
        # Rotation: both disks carried stay writes at some point.
        assert text.count("stay[W]") == 2
