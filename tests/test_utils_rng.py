"""Tests for deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import rng_from_seed, spawn_rngs


class TestRngFromSeed:
    def test_same_seed_same_stream(self):
        a = rng_from_seed(42).integers(0, 1000, 50)
        b = rng_from_seed(42).integers(0, 1000, 50)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rng_from_seed(1).integers(0, 10**9, 20)
        b = rng_from_seed(2).integers(0, 10**9, 20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert rng_from_seed(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(rng_from_seed(None), np.random.Generator)

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        a = rng_from_seed(seq).random(4)
        b = rng_from_seed(np.random.SeedSequence(5)).random(4)
        assert np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        children = spawn_rngs(3, 3)
        streams = [c.integers(0, 10**9, 10) for c in children]
        assert not np.array_equal(streams[0], streams[1])
        assert not np.array_equal(streams[1], streams[2])

    def test_children_reproducible(self):
        a = [c.integers(0, 10**9, 5) for c in spawn_rngs(9, 3)]
        b = [c.integers(0, 10**9, 5) for c in spawn_rngs(9, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 2)
        assert len(children) == 2
