"""Unit tests for EngineResult / IterationStats presentation."""

import numpy as np
import pytest

from repro.engines.result import EngineResult, IterationStats
from repro.storage.machine import IOReport


def make_result(**kwargs):
    defaults = dict(
        engine="fastbfs",
        algorithm="bfs",
        graph_name="test",
        output={"level": np.array([0, 1, -1], dtype=np.int32),
                "parent": np.array([3, 0, 3], dtype=np.uint32)},
        report=IOReport(execution_time=2.0, compute_time=0.5,
                        iowait_time=1.5),
        iterations=[
            IterationStats(iteration=0, edges_scanned=100,
                           updates_generated=40, partitions_processed=4,
                           clock_end=1.0),
            IterationStats(iteration=1, edges_scanned=60,
                           updates_generated=0, activated=40,
                           partitions_processed=3, partitions_skipped=1,
                           stay_records_written=60, stay_swaps=2,
                           clock_end=2.0),
        ],
        extras={"stay_swaps": 2.0},
    )
    defaults.update(kwargs)
    return EngineResult(**defaults)


class TestAccessors:
    def test_levels_and_parents(self):
        r = make_result()
        assert r.levels.tolist() == [0, 1, -1]
        assert r.parents.tolist() == [3, 0, 3]

    def test_distance_alias(self):
        r = make_result(output={"distance": np.array([0, 1], dtype=np.int32)})
        assert r.levels.tolist() == [0, 1]
        assert r.parents is None

    def test_counters(self):
        r = make_result()
        assert r.num_iterations == 2
        assert r.edges_scanned == 160
        assert r.updates_generated == 40
        assert r.execution_time == 2.0

    def test_empty_iterations(self):
        r = make_result(iterations=[])
        assert r.edges_scanned == 0
        assert r.num_iterations == 0


class TestRendering:
    def test_summary_contains_key_facts(self):
        text = make_result().summary()
        assert "fastbfs" in text
        assert "bfs" in text
        assert "stay_swaps" in text
        assert "iowait" in text

    def test_iteration_table_rows(self):
        text = make_result().iteration_table()
        lines = text.splitlines()
        assert "edges scanned" in lines[0]
        assert len(lines) == 2 + 2  # header + rule + 2 iterations
        assert "100" in lines[2]
        assert "2/0" in lines[3]  # swaps/cancels

    def test_iteration_table_empty(self):
        text = make_result(iterations=[]).iteration_table()
        assert "edges scanned" in text
