"""Unit tests for the analyzer's symbol, call-graph and effect layers."""

from repro.tooling.analyzer.callgraph import COMMON_METHOD_NAMES, build_call_graph
from repro.tooling.analyzer.effects import (
    CLOCK_ADVANCE,
    RNG,
    WALLCLOCK,
    format_effect_table,
    named_seed_table,
    propagate_effects,
    scan_pattern_sites,
    witness_path,
)
from repro.tooling.analyzer.symbols import (
    SymbolTable,
    module_name_for,
    subsystem_of,
)

CLOCK_SRC = (
    "class SimClock:\n"
    "    def charge_compute(self, seconds):\n"
    "        self.now = seconds\n"
    "\n"
    "    def wait_until(self, when):\n"
    "        self.now = when\n"
)


def table_for(sources):
    return SymbolTable.from_sources(sources)


class TestModuleNames:
    def test_real_tree_anchoring(self):
        assert module_name_for("src/repro/storage/vfs.py") == "repro.storage.vfs"

    def test_fixture_tree_anchoring(self):
        path = "tests/analyzer_fixtures/fb201/repro/obs/watch.py"
        assert module_name_for(path) == "repro.obs.watch"

    def test_package_init_maps_to_package(self):
        assert module_name_for("src/repro/__init__.py") == "repro"
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"

    def test_loose_file_falls_back_to_stem(self):
        assert module_name_for("scripts/tool.py") == "tool"

    def test_subsystem(self):
        assert subsystem_of("repro.storage.vfs") == "storage"
        assert subsystem_of("repro.api") == ""


class TestSymbolTable:
    def test_classes_methods_and_functions_registered(self):
        table = table_for(
            {
                "p/repro/sim/clock.py": CLOCK_SRC,
                "p/repro/util.py": "def helper():\n    return 1\n",
            }
        )
        assert "repro.sim.clock.SimClock" in table.classes
        cls = table.classes["repro.sim.clock.SimClock"]
        assert cls.methods["charge_compute"] == (
            "repro.sim.clock.SimClock.charge_compute"
        )
        assert "repro.util.helper" in table.functions

    def test_syntax_error_recorded_not_raised(self):
        table = table_for({"p/repro/bad.py": "def f(:\n"})
        assert len(table.parse_errors) == 1
        path, line, _msg = table.parse_errors[0]
        assert path == "p/repro/bad.py"
        assert line == 1
        assert "repro.bad" not in table.modules

    def test_resolve_method_walks_project_bases(self):
        table = table_for(
            {
                "p/repro/engines/base.py": (
                    "class Base:\n"
                    "    def stage_partitions(self):\n"
                    "        return 0\n"
                ),
                "p/repro/engines/fast.py": (
                    "from repro.engines.base import Base\n"
                    "\n"
                    "\n"
                    "class Fast(Base):\n"
                    "    def run(self):\n"
                    "        return self.stage_partitions()\n"
                ),
            }
        )
        resolved = table.resolve_method("repro.engines.fast.Fast", "stage_partitions")
        assert resolved == "repro.engines.base.Base.stage_partitions"


class TestCallGraph:
    def test_local_constructor_assignment_types_receiver(self):
        table = table_for(
            {
                "p/repro/sim/clock.py": CLOCK_SRC,
                "p/repro/core/step.py": (
                    "from repro.sim.clock import SimClock\n"
                    "\n"
                    "\n"
                    "def advance():\n"
                    "    clock = SimClock()\n"
                    "    clock.charge_compute(1.0)\n"
                ),
            }
        )
        graph = build_call_graph(table)
        assert (
            "repro.sim.clock.SimClock.charge_compute"
            in graph.callees("repro.core.step.advance")
        )
        sites = graph.callers_of("repro.sim.clock.SimClock.charge_compute")
        assert [s.via for s in sites] == ["typed"]

    def test_annotated_parameter_types_receiver(self):
        table = table_for(
            {
                "p/repro/sim/clock.py": CLOCK_SRC,
                "p/repro/core/step.py": (
                    "from repro.sim.clock import SimClock\n"
                    "\n"
                    "\n"
                    "def advance(clock: SimClock):\n"
                    "    clock.charge_compute(1.0)\n"
                ),
            }
        )
        graph = build_call_graph(table)
        assert (
            "repro.sim.clock.SimClock.charge_compute"
            in graph.callees("repro.core.step.advance")
        )

    def test_init_attribute_assignment_types_self_attr(self):
        table = table_for(
            {
                "p/repro/sim/clock.py": CLOCK_SRC,
                "p/repro/obs/watch.py": (
                    "from repro.sim.clock import SimClock\n"
                    "\n"
                    "\n"
                    "class Watcher:\n"
                    "    def __init__(self):\n"
                    "        self.clock = SimClock()\n"
                    "\n"
                    "    def record(self):\n"
                    "        self.clock.charge_compute(1.0)\n"
                ),
            }
        )
        graph = build_call_graph(table)
        assert (
            "repro.sim.clock.SimClock.charge_compute"
            in graph.callees("repro.obs.watch.Watcher.record")
        )

    def test_annotated_dataclass_field_types_self_attr(self):
        table = table_for(
            {
                "p/repro/sim/clock.py": CLOCK_SRC,
                "p/repro/core/holder.py": (
                    "from dataclasses import dataclass\n"
                    "\n"
                    "from repro.sim.clock import SimClock\n"
                    "\n"
                    "\n"
                    "@dataclass\n"
                    "class Holder:\n"
                    "    clock: SimClock\n"
                    "\n"
                    "    def tick(self):\n"
                    "        self.clock.charge_compute(1.0)\n"
                ),
            }
        )
        graph = build_call_graph(table)
        assert (
            "repro.sim.clock.SimClock.charge_compute"
            in graph.callees("repro.core.holder.Holder.tick")
        )

    def test_common_method_names_do_not_name_match(self):
        assert "update" in COMMON_METHOD_NAMES
        table = table_for(
            {
                "p/repro/storage/store.py": (
                    "class Store:\n"
                    "    def update(self, key):\n"
                    "        self.key = key\n"
                ),
                "p/repro/core/use.py": (
                    "def bump(mystery):\n"
                    "    mystery.update(1)\n"
                ),
            }
        )
        graph = build_call_graph(table)
        assert graph.callees("repro.core.use.bump") == []

    def test_uncommon_method_name_falls_back_to_name_match(self):
        table = table_for(
            {
                "p/repro/sim/clock.py": CLOCK_SRC,
                "p/repro/core/use.py": (
                    "def bump(mystery):\n"
                    "    mystery.charge_compute(1.0)\n"
                ),
            }
        )
        graph = build_call_graph(table)
        sites = graph.callers_of("repro.sim.clock.SimClock.charge_compute")
        assert [s.via for s in sites] == ["name-match"]

    def test_typed_receiver_without_method_creates_no_edge(self):
        # A known project type that lacks the method: the call is a
        # builtin/ndarray op, not a project call — no fallback edge.
        table = table_for(
            {
                "p/repro/sim/clock.py": CLOCK_SRC,
                "p/repro/sim/other.py": (
                    "class Other:\n"
                    "    def charge_compute(self, s):\n"
                    "        self.s = s\n"
                ),
                "p/repro/core/use.py": (
                    "from repro.sim.clock import SimClock\n"
                    "\n"
                    "\n"
                    "def bump(clock: SimClock):\n"
                    "    clock.nonexistent_method(1.0)\n"
                ),
            }
        )
        graph = build_call_graph(table)
        assert graph.callees("repro.core.use.bump") == []


class TestEffects:
    def _chained_table(self):
        return table_for(
            {
                "p/repro/sim/clock.py": CLOCK_SRC,
                "p/repro/core/mid.py": (
                    "from repro.sim.clock import SimClock\n"
                    "\n"
                    "\n"
                    "def middle():\n"
                    "    clock = SimClock()\n"
                    "    clock.charge_compute(1.0)\n"
                ),
                "p/repro/analysis/top.py": (
                    "from repro.core.mid import middle\n"
                    "\n"
                    "\n"
                    "def outer():\n"
                    "    return middle()\n"
                ),
            }
        )

    def test_named_seeds_bind_to_analyzed_tree(self):
        table = self._chained_table()
        seeds = named_seed_table(table)
        assert seeds["repro.sim.clock.SimClock.charge_compute"] == {CLOCK_ADVANCE}
        empty = named_seed_table(table_for({"p/repro/x.py": "A = 1\n"}))
        assert empty == {}

    def test_effects_propagate_transitively(self):
        table = self._chained_table()
        graph = build_call_graph(table)
        effects = propagate_effects(table, graph, named_seed_table(table))
        assert CLOCK_ADVANCE in effects["repro.core.mid.middle"]
        assert CLOCK_ADVANCE in effects["repro.analysis.top.outer"]

    def test_barriers_stop_propagation_to_callers(self):
        table = self._chained_table()
        graph = build_call_graph(table)
        effects = propagate_effects(
            table,
            graph,
            named_seed_table(table),
            barriers=frozenset({"repro.core.mid.middle"}),
        )
        assert CLOCK_ADVANCE in effects["repro.core.mid.middle"]
        assert CLOCK_ADVANCE not in effects["repro.analysis.top.outer"]

    def test_witness_path_names_the_chain(self):
        table = self._chained_table()
        graph = build_call_graph(table)
        seeds = named_seed_table(table)
        effects = propagate_effects(table, graph, seeds)
        chain = witness_path(
            graph, effects, seeds, "repro.analysis.top.outer", CLOCK_ADVANCE
        )
        assert chain == [
            "repro.analysis.top.outer",
            "repro.core.mid.middle",
            "repro.sim.clock.SimClock.charge_compute",
        ]

    def test_pattern_sites_detect_wallclock_and_rng(self):
        table = table_for(
            {
                "p/repro/obs/probe.py": (
                    "import time\n"
                    "\n"
                    "import numpy as np\n"
                    "\n"
                    "from time import perf_counter as pc\n"
                    "\n"
                    "\n"
                    "def now():\n"
                    "    return time.time() + pc()\n"
                    "\n"
                    "\n"
                    "def draw():\n"
                    "    return np.random.default_rng(0)\n"
                ),
            }
        )
        sites = scan_pattern_sites(table)
        by_detail = {s.detail: s for s in sites}
        assert by_detail["time.time"].effect == WALLCLOCK
        assert by_detail["time.perf_counter"].effect == WALLCLOCK
        assert by_detail["numpy.random.default_rng"].effect == RNG
        assert by_detail["time.time"].function == "repro.obs.probe.now"

    def test_effect_table_dump_is_deterministic(self):
        table = self._chained_table()
        graph = build_call_graph(table)
        effects = propagate_effects(table, graph, named_seed_table(table))
        dump = format_effect_table(effects)
        assert dump == format_effect_table(effects)
        assert dump.endswith("\n")
        assert "repro.analysis.top.outer: CLOCK_ADVANCE" in dump
