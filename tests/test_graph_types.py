"""Tests for record dtypes and constructors."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.types import (
    EDGE_DTYPE,
    NO_PARENT,
    UNVISITED,
    UPDATE_DTYPE,
    WEIGHTED_EDGE_DTYPE,
    empty_edges,
    make_edges,
    make_updates,
)


class TestDtypes:
    def test_edge_record_is_8_bytes(self):
        """The paper's raw binary edge list: two little-endian u32s."""
        assert EDGE_DTYPE.itemsize == 8

    def test_update_record_is_8_bytes(self):
        assert UPDATE_DTYPE.itemsize == 8

    def test_weighted_edge_is_12_bytes(self):
        assert WEIGHTED_EDGE_DTYPE.itemsize == 12

    def test_little_endian(self):
        assert EDGE_DTYPE["src"].byteorder in ("<", "=")

    def test_sentinels(self):
        assert NO_PARENT == 0xFFFFFFFF
        assert UNVISITED == -1


class TestMakeEdges:
    def test_basic(self):
        e = make_edges([0, 1], [1, 2])
        assert e.dtype == EDGE_DTYPE
        assert e["src"].tolist() == [0, 1]
        assert e["dst"].tolist() == [1, 2]

    def test_empty(self):
        assert len(make_edges([], [])) == 0

    def test_length_mismatch(self):
        with pytest.raises(GraphError):
            make_edges([0, 1], [1])

    def test_2d_rejected(self):
        with pytest.raises(GraphError):
            make_edges(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_empty_edges_helper(self):
        assert empty_edges().dtype == EDGE_DTYPE
        assert empty_edges(weighted=True).dtype == WEIGHTED_EDGE_DTYPE


class TestMakeUpdates:
    def test_basic(self):
        u = make_updates([5, 6], [1, 2])
        assert u.dtype == UPDATE_DTYPE
        assert u["dst"].tolist() == [5, 6]
        assert u["payload"].tolist() == [1, 2]

    def test_scalar_payload_broadcasts(self):
        u = make_updates([1, 2, 3], 7)
        assert u["payload"].tolist() == [7, 7, 7]

    def test_mismatch_rejected(self):
        with pytest.raises(GraphError):
            make_updates([1, 2], [1, 2, 3])
