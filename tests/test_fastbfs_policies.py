"""Unit tests for the trimming activation policy."""

from repro.core.config import FastBFSConfig
from repro.core.policies import TrimPolicy
from repro.engines.result import IterationStats


def stats(iteration, scanned, updates):
    s = IterationStats(iteration=iteration)
    s.edges_scanned = scanned
    s.updates_generated = updates
    return s


class TestTrimPolicy:
    def test_default_always_on(self):
        policy = TrimPolicy(FastBFSConfig(), True)
        assert policy.trimming_active(0, None)
        assert policy.trimming_active(5, stats(4, 100, 0))

    def test_disabled_by_config(self):
        policy = TrimPolicy(FastBFSConfig(trim_enabled=False), True)
        assert not policy.trimming_active(0, None)

    def test_disabled_by_algorithm(self):
        policy = TrimPolicy(FastBFSConfig(), False)
        assert not policy.trimming_active(3, stats(2, 100, 100))

    def test_start_iteration(self):
        policy = TrimPolicy(FastBFSConfig(trim_start_iteration=3), True)
        assert not policy.trimming_active(0, None)
        assert not policy.trimming_active(2, stats(1, 10, 10))
        assert policy.trimming_active(3, stats(2, 10, 10))

    def test_trigger_waits_for_fraction(self):
        policy = TrimPolicy(FastBFSConfig(trim_trigger_fraction=0.5), True)
        assert not policy.trimming_active(1, stats(0, 100, 10))  # 10%
        assert not policy.trimming_active(2, stats(1, 100, 49))  # 49%
        assert policy.trimming_active(3, stats(2, 100, 50))  # 50%

    def test_trigger_is_sticky(self):
        policy = TrimPolicy(FastBFSConfig(trim_trigger_fraction=0.5), True)
        assert policy.trimming_active(1, stats(0, 100, 90))
        # Later iterations stay on even if the fraction drops.
        assert policy.trimming_active(2, stats(1, 100, 1))

    def test_trigger_with_no_history(self):
        policy = TrimPolicy(FastBFSConfig(trim_trigger_fraction=0.5), True)
        assert not policy.trimming_active(0, None)

    def test_trigger_ignores_empty_scan(self):
        policy = TrimPolicy(FastBFSConfig(trim_trigger_fraction=0.5), True)
        assert not policy.trimming_active(1, stats(0, 0, 0))

    def test_start_iteration_and_trigger_combine(self):
        cfg = FastBFSConfig(trim_start_iteration=2, trim_trigger_fraction=0.3)
        policy = TrimPolicy(cfg, True)
        # Trigger fires at iteration 1 data-wise, but start gate holds.
        assert not policy.trimming_active(1, stats(0, 100, 90))
        assert policy.trimming_active(2, stats(1, 100, 90))
