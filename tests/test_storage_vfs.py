"""Tests for the virtual filesystem."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.graph.types import EDGE_DTYPE, make_edges
from repro.storage.device import Device, DeviceSpec
from repro.storage.vfs import VFS, VirtualFile


@pytest.fixture
def device():
    return Device(DeviceSpec.ram())


@pytest.fixture
def vfs():
    return VFS()


def edges(n, start=0):
    return make_edges(np.arange(start, start + n), np.arange(start, start + n))


class TestVirtualFile:
    def test_append_and_read(self, vfs, device):
        f = vfs.create("a", device)
        f.append_records(edges(10))
        f.append_records(edges(5, start=10))
        data = f.records()
        assert len(data) == 15
        assert data["src"][12] == 12

    def test_nbytes_and_count(self, vfs, device):
        f = vfs.create("a", device)
        f.append_records(edges(10))
        assert f.num_records == 10
        assert f.nbytes == 10 * EDGE_DTYPE.itemsize
        assert f.record_size == EDGE_DTYPE.itemsize

    def test_empty_file(self, vfs, device):
        f = vfs.create("a", device)
        assert len(f.records()) == 0
        assert f.nbytes == 0
        assert f.record_size == 0

    def test_seal_prevents_append(self, vfs, device):
        f = vfs.create("a", device)
        f.append_records(edges(3))
        f.seal()
        with pytest.raises(StorageError):
            f.append_records(edges(1))

    def test_seal_idempotent(self, vfs, device):
        f = vfs.create("a", device)
        f.append_records(edges(3))
        f.seal()
        f.seal()
        assert len(f.records()) == 3

    def test_read_records_slice(self, vfs, device):
        f = vfs.create("a", device)
        f.append_records(edges(10))
        view = f.read_records(3, 4)
        assert len(view) == 4
        assert view["src"][0] == 3

    def test_read_past_end_clamps(self, vfs, device):
        f = vfs.create("a", device)
        f.append_records(edges(10))
        assert len(f.read_records(8, 100)) == 2

    def test_read_bad_start(self, vfs, device):
        f = vfs.create("a", device)
        f.append_records(edges(5))
        with pytest.raises(StorageError):
            f.read_records(6, 1)

    def test_dtype_mismatch_rejected(self, vfs, device):
        f = vfs.create("a", device)
        f.append_records(edges(3))
        with pytest.raises(StorageError):
            f.append_records(np.zeros(3, dtype=np.float64))

    def test_2d_rejected(self, vfs, device):
        f = vfs.create("a", device)
        with pytest.raises(StorageError):
            f.append_records(np.zeros((2, 2)))

    def test_unique_file_ids(self, vfs, device):
        a = vfs.create("a", device)
        b = vfs.create("b", device)
        assert a.file_id != b.file_id


class TestVFS:
    def test_create_get(self, vfs, device):
        f = vfs.create("x", device)
        assert vfs.get("x") is f
        assert "x" in vfs
        assert vfs.exists("x")

    def test_duplicate_create_rejected(self, vfs, device):
        vfs.create("x", device)
        with pytest.raises(StorageError):
            vfs.create("x", device)

    def test_create_overwrite(self, vfs, device):
        old = vfs.create("x", device)
        new = vfs.create("x", device, overwrite=True)
        assert vfs.get("x") is new
        assert old.deleted

    def test_get_missing(self, vfs):
        with pytest.raises(StorageError):
            vfs.get("nope")

    def test_delete(self, vfs, device):
        f = vfs.create("x", device)
        vfs.delete("x")
        assert not vfs.exists("x")
        assert f.deleted
        with pytest.raises(StorageError):
            f.records()

    def test_delete_missing(self, vfs):
        with pytest.raises(StorageError):
            vfs.delete("nope")

    def test_delete_if_exists(self, vfs, device):
        vfs.delete_if_exists("nope")  # no error
        vfs.create("x", device)
        vfs.delete_if_exists("x")
        assert not vfs.exists("x")

    def test_replace_swaps_stay_file_in(self, vfs, device):
        old = vfs.create("edges:p0", device)
        old.append_records(edges(10))
        stay = vfs.create("stay:p0:i1", device)
        stay.append_records(edges(4))
        result = vfs.replace("stay:p0:i1", "edges:p0")
        assert result is stay
        assert vfs.get("edges:p0") is stay
        assert stay.name == "edges:p0"
        assert old.deleted
        assert not vfs.exists("stay:p0:i1")

    def test_replace_to_new_name(self, vfs, device):
        f = vfs.create("a", device)
        vfs.replace("a", "b")
        assert vfs.get("b") is f
        assert not vfs.exists("a")

    def test_total_bytes(self, vfs, device):
        vfs.create("a", device).append_records(edges(10))
        vfs.create("b", device).append_records(edges(5))
        assert vfs.total_bytes() == 15 * EDGE_DTYPE.itemsize
        vfs.delete("a")
        assert vfs.total_bytes() == 5 * EDGE_DTYPE.itemsize

    def test_names_sorted(self, vfs, device):
        for name in ("c", "a", "b"):
            vfs.create(name, device)
        assert vfs.names() == ["a", "b", "c"]

    def test_len(self, vfs, device):
        assert len(vfs) == 0
        vfs.create("a", device)
        assert len(vfs) == 1
