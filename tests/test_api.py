"""Tests for the one-call API front-end."""

import numpy as np
import pytest

from repro.algorithms.reference import bfs_levels
from repro.api import ENGINES, make_engine, run_bfs, run_queries
from repro.core.engine import FastBFSEngine
from repro.engines.graphchi import GraphChiEngine
from repro.engines.xstream import XStreamEngine
from repro.errors import ConfigError, EngineError
from repro.graph.generators import rmat_graph
from repro.storage.machine import Machine


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=9, edge_factor=8, seed=17)


class TestMakeEngine:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("fastbfs", FastBFSEngine),
            ("fast-bfs", FastBFSEngine),
            ("x-stream", XStreamEngine),
            ("xstream", XStreamEngine),
            ("graphchi", GraphChiEngine),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(make_engine(name), cls)

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_engine("pregel")

    def test_engine_list_constant(self):
        for name in ENGINES:
            make_engine(name)


class TestRunBfs:
    def test_default_machine(self, graph):
        root = int(np.argmax(graph.out_degrees()))
        result = run_bfs(graph, root=root)
        assert np.array_equal(result.levels, bfs_levels(graph, root))
        assert result.engine == "fastbfs"

    def test_machine_kwargs(self, graph):
        result = run_bfs(graph, engine="x-stream", memory="8MB", cores=2)
        assert result.engine == "x-stream"

    def test_explicit_machine(self, graph):
        machine = Machine.commodity_server(memory="8MB")
        result = run_bfs(graph, machine=machine)
        assert result.execution_time > 0

    def test_machine_and_kwargs_conflict(self, graph):
        with pytest.raises(ConfigError):
            run_bfs(graph, machine=Machine.commodity_server(), memory="1GB")

    def test_engine_instance_passthrough(self, graph):
        engine = GraphChiEngine()
        result = run_bfs(graph, engine=engine, memory="8MB")
        assert result.engine == "graphchi"

    def test_all_engines_same_levels(self, graph):
        root = int(np.argmax(graph.out_degrees()))
        levels = [
            run_bfs(graph, engine=e, root=root, memory="8MB").levels
            for e in ENGINES
        ]
        for lv in levels[1:]:
            assert np.array_equal(lv, levels[0])

    def test_summary_smoke(self, graph):
        text = run_bfs(graph, memory="8MB").summary()
        assert "fastbfs" in text

    def test_multi_source_roots(self, graph):
        result = run_bfs(graph, roots=[0, 1], memory="8MB")
        assert result.levels[0] == 0 and result.levels[1] == 0


class TestRunQueries:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_batch_matches_single_runs(self, graph, engine):
        roots = [0, int(np.argmax(graph.out_degrees()))]
        batch = run_queries(graph, roots, engine=engine, memory="8MB")
        assert batch.num_queries == 2
        for root, q in zip(roots, batch.queries):
            single = run_bfs(graph, engine=engine, root=root, memory="8MB")
            assert np.array_equal(single.levels, q.levels)

    def test_multi_source_entry(self, graph):
        batch = run_queries(graph, [0, [0, 1]], memory="8MB")
        assert batch.queries[1].levels[1] == 0

    def test_batched_mode_matches_serial(self, graph):
        roots = [0, int(np.argmax(graph.out_degrees()))]
        serial = run_queries(graph, roots, memory="8MB")
        batched = run_queries(graph, roots, memory="8MB", mode="batched")
        assert batched.mode == "batched"
        assert batched.edges_scanned < serial.edges_scanned
        for qs, qb in zip(serial.queries, batched.queries):
            assert np.array_equal(qs.levels, qb.levels)
            assert np.array_equal(qs.parents, qb.parents)

    def test_machine_and_kwargs_conflict(self, graph):
        with pytest.raises(ConfigError):
            run_queries(
                graph, [0], machine=Machine.commodity_server(), memory="1GB"
            )

    def test_empty_roots_rejected_at_boundary(self, graph):
        """Regression: an empty batch must fail before touching the engine."""
        machine = Machine.commodity_server()
        with pytest.raises(EngineError, match="at least one root"):
            run_queries(graph, [], machine=machine)
        # the typed error fired at the API boundary: the machine is pristine
        assert machine.clock.now == 0.0
        assert len(machine.vfs) == 0

    def test_bad_root_rejected_before_staging(self, graph):
        machine = Machine.commodity_server()
        with pytest.raises(EngineError, match="out of range"):
            run_queries(graph, [0, graph.num_vertices], machine=machine)
        assert machine.clock.now == 0.0
        assert len(machine.vfs) == 0
