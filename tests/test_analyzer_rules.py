"""Rule-level tests for the whole-program analyzer (FB200-FB208).

Each FB2xx rule is exercised against a fixture mini-package under
``tests/analyzer_fixtures/`` shaped like the real tree, in three
flavors: positive (flagged), suppressed (``# noqa`` on the finding
line), and baselined.  The snapshot-completeness rule is additionally
proven live against the real ``Machine`` class by injecting a fake
un-checkpointed attribute.
"""

from pathlib import Path

from repro.tooling.analyzer import analyze_paths, analyze_sources
from repro.tooling.report import Baseline, BaselineEntry

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "analyzer_fixtures"
REPO_ROOT = HERE.parent


def run_fixture(case, baseline=None):
    return analyze_paths([str(FIXTURES / case)], baseline=baseline)


def codes(result):
    return [f.code for f in result.findings]


class TestFB200SyntaxError:
    def test_parse_failure_is_a_finding_not_a_crash(self):
        result = analyze_sources({"x/repro/bad.py": "def f(:\n"})
        assert codes(result) == ["FB200"]
        assert result.findings[0].line == 1


class TestFB201ObsNeutrality:
    def test_obs_reaching_clock_advance_flagged_with_witness(self):
        result = run_fixture("fb201")
        assert codes(result) == ["FB201"]
        finding = result.findings[0]
        assert finding.symbol == "repro.obs.watch.Watcher.record"
        assert finding.path.endswith("repro/obs/watch.py")
        assert "SimClock.charge_compute" in finding.message

    def test_noqa_on_def_line_suppresses(self):
        result = run_fixture("fb201")
        assert not any("quiet" in f.path for f in result.findings)


class TestFB202FrontendVFS:
    def test_frontend_bypassing_engine_entry_flagged(self):
        result = run_fixture("fb202")
        assert codes(result) == ["FB202"]
        finding = result.findings[0]
        assert finding.symbol == "repro.analysis.report.bad_path"
        assert "VFS.create" in finding.message

    def test_reaching_vfs_through_run_is_sanctioned(self):
        result = run_fixture("fb202")
        assert not any(f.symbol.endswith("good_path") for f in result.findings)

    def test_noqa_suppresses(self):
        result = run_fixture("fb202")
        assert not any("quiet" in f.path for f in result.findings)


class TestFB203FaultChokePoint:
    def test_rogue_on_submit_call_flagged_at_call_site(self):
        result = run_fixture("fb203")
        assert codes(result) == ["FB203"]
        finding = result.findings[0]
        assert finding.path.endswith("repro/engines/rogue.py")
        assert finding.symbol == "repro.engines.rogue.RogueEngine.poke"

    def test_device_submit_is_exempt_and_noqa_suppresses(self):
        result = run_fixture("fb203")
        assert not any("device.py" in f.path for f in result.findings)
        assert not any("quiet" in f.path for f in result.findings)


class TestFB204UnseededRNG:
    def test_raw_primitives_flagged_outside_utils_rng(self):
        result = run_fixture("fb204")
        assert codes(result) == ["FB204", "FB204"]
        details = sorted(f.message.split("(")[0] for f in result.findings)
        assert "numpy.random.default_rng" in result.findings[0].message
        assert "random.random" in result.findings[1].message
        assert details == sorted(details)

    def test_utils_rng_module_is_the_sanctioned_home(self):
        result = run_fixture("fb204")
        assert not any("utils/rng.py" in f.path for f in result.findings)

    def test_noqa_and_seeded_wrapper_are_clean(self):
        result = run_fixture("fb204")
        lines = {f.line for f in result.findings}
        # sample_suppressed (noqa) and sample_good (rng_from_seed) lines
        # must not appear among the findings.
        assert lines == {11, 16}


class TestFB205OrderSensitivity:
    def test_set_iteration_and_unsorted_listing_flagged(self):
        result = run_fixture("fb205")
        assert codes(result) == ["FB205", "FB205"]
        set_finding, listing_finding = result.findings
        assert set_finding.line == 8
        assert "hash-order" in set_finding.message
        assert listing_finding.line == 14
        assert "os.listdir" in listing_finding.message

    def test_sorted_dict_len_and_noqa_are_clean(self):
        result = run_fixture("fb205")
        assert not any("quiet" in f.path for f in result.findings)


class TestFB206SnapshotCompleteness:
    def test_escaping_attribute_flagged_at_mutation_site(self):
        result = run_fixture("fb206")
        assert codes(result) == ["FB206"]
        finding = result.findings[0]
        assert finding.symbol == "repro.storage.cachebox.CacheBox.hits"
        assert "'hits'" in finding.message

    def test_covered_attribute_not_flagged(self):
        result = run_fixture("fb206")
        assert not any(f.symbol.endswith(".entries") for f in result.findings)

    def test_noqa_on_mutation_line_suppresses(self):
        result = run_fixture("fb206")
        assert not any("quiet" in f.path for f in result.findings)

    def test_committed_fixture_baseline_absorbs_the_finding(self):
        baseline = Baseline.load(str(FIXTURES / "fb206" / "baseline.json"))
        result = run_fixture("fb206", baseline=baseline)
        assert result.findings == []
        assert [f.symbol for f in result.baselined] == [
            "repro.storage.cachebox.CacheBox.hits"
        ]
        assert result.unused_baseline == []

    def test_live_regression_fake_attribute_on_real_machine(self):
        """Acceptance proof: a new un-checkpointed Machine attribute is
        caught the moment it is introduced."""
        path = REPO_ROOT / "src" / "repro" / "storage" / "machine.py"
        source = path.read_text(encoding="utf-8")
        clean = analyze_sources({"src/repro/storage/machine.py": source})
        marker = "    def checkpoint("
        assert marker in source
        injected = source.replace(
            marker,
            "    def _grow_shadow(self) -> None:\n"
            "        self._shadow_state = 1\n"
            "\n" + marker,
            1,
        )
        broken = analyze_sources({"src/repro/storage/machine.py": injected})
        new = {f.symbol for f in broken.findings} - {
            f.symbol for f in clean.findings
        }
        assert new == {"repro.storage.machine.Machine._shadow_state"}
        assert all(f.code == "FB206" for f in broken.findings)


class TestFB207WallclockChokePoint:
    def test_wallclock_reads_flagged_outside_hostprof(self):
        result = run_fixture("fb207")
        assert codes(result) == ["FB207", "FB207"]
        messages = " ".join(f.message for f in result.findings)
        assert "time.monotonic" in messages
        assert "datetime.now" in messages or "datetime.datetime.now" in messages
        assert "HostClock" in result.findings[0].message

    def test_hostprof_module_is_the_sanctioned_home(self):
        result = run_fixture("fb207")
        assert not any("obs/hostprof.py" in f.path for f in result.findings)

    def test_sleep_noqa_and_clock_handle_are_clean(self):
        result = run_fixture("fb207")
        # Only the two bad read sites: stamp_suppressed (noqa), wait_ok
        # (time.sleep is pacing, not a read) and stamp_good (HostClock
        # handle) stay clean.
        assert {f.line for f in result.findings} == {10, 14}

    def test_real_hostprof_is_the_only_wallclock_site_in_src(self):
        """Acceptance: the shipped tree's wall-clock reads all live in
        repro/obs/hostprof.py — FB207 holds with no baseline entries."""
        result = analyze_paths([str(REPO_ROOT / "src" / "repro")])
        assert not any(f.code == "FB207" for f in result.findings)


class TestFB208ServeTypedErrors:
    def test_swallowing_handlers_flagged(self):
        result = run_fixture("fb208")
        assert codes(result) == ["FB208", "FB208"]
        by_symbol = {f.symbol: f for f in result.findings}
        assert set(by_symbol) == {"swallow_bad", "log_and_return_bad"}
        assert by_symbol["swallow_bad"].line == 11
        assert by_symbol["log_and_return_bad"].line == 18
        assert "typed" in by_symbol["swallow_bad"].message
        assert "except OSError" in by_symbol["swallow_bad"].message

    def test_raise_typed_construction_and_funnel_are_clean(self):
        result = run_fixture("fb208")
        flagged = {f.symbol for f in result.findings}
        assert "reraise_good" not in flagged
        assert "typed_construction_good" not in flagged
        assert "funnel_good" not in flagged

    def test_noqa_on_except_line_suppresses(self):
        result = run_fixture("fb208")
        assert not any(f.symbol == "suppressed" for f in result.findings)

    def test_scoped_to_the_serve_subsystem(self):
        result = run_fixture("fb208")
        assert not any("tooling" in f.path for f in result.findings)

    def test_baseline_accepts_the_positive_findings(self):
        clean = run_fixture("fb208")
        baseline = Baseline(entries=[
            BaselineEntry(
                code=f.code, path=f.norm_path, symbol=f.symbol,
                reason="fixture: intentionally grandfathered",
            )
            for f in clean.findings
        ])
        result = run_fixture("fb208", baseline=baseline)
        assert result.findings == []
        assert result.unused_baseline == []

    def test_live_serve_tree_has_no_untyped_handlers(self):
        """Acceptance: every except in the shipped ``repro/serve/`` tree
        re-raises, builds a typed error, or funnels — no baseline."""
        result = analyze_paths([str(REPO_ROOT / "src" / "repro")])
        assert not any(f.code == "FB208" for f in result.findings)


class TestMergedTree:
    def test_src_repro_is_clean_under_committed_baseline(self):
        """Acceptance gate: the shipped tree has zero non-baselined findings."""
        baseline = Baseline.load(str(REPO_ROOT / "analyzer_baseline.json"))
        result = analyze_paths(
            [str(REPO_ROOT / "src" / "repro")], baseline=baseline
        )
        assert result.findings == [], "\n".join(str(f) for f in result.findings)
        assert result.unused_baseline == []

    def test_the_baselined_cases_are_exactly_the_documented_ones(self):
        result = analyze_paths([str(REPO_ROOT / "src" / "repro")])
        assert {f.symbol for f in result.findings} == {
            "repro.storage.faults.FaultInjector._fires",
            "repro.storage.faults.FaultInjector._counts",
            "repro.storage.machine.Machine.tracer",
            "repro.storage.machine.Machine.fault_plan",
        }
        assert all(f.code == "FB206" for f in result.findings)
