"""Rolling time-series ring: window placement, aggregation, bounds.

Contracts locked down here:

* **window grid** — samples land in the window covering the injected
  clock's *now*; advancing past a window boundary opens a new slot, and
  quiet periods leave gaps (missing indices), not empty windows;
* **bounded ring** — at most ``capacity`` windows are retained, oldest
  evicted first;
* **aggregation** — request/error counts, RPS, flush totals, depth
  last/max, and p50/p95/p99 quantile summaries of queue wait and
  service time, all per graph;
* **quantiles** — ``Histogram.quantile`` interpolates within buckets,
  clamps at the top finite bound, and rejects out-of-range ``q``;
* **determinism** — everything above runs on a ``ManualHostClock``; no
  test here sleeps or reads the real clock.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.counters import Histogram
from repro.obs.hostprof import ManualHostClock
from repro.obs.timeseries import (
    DEFAULT_CAPACITY,
    DEFAULT_WINDOW_SECONDS,
    TimeSeries,
    WAIT_BUCKETS,
    quantile_summary,
)


@pytest.fixture()
def clock():
    return ManualHostClock(start=100.0)


@pytest.fixture()
def ts(clock):
    return TimeSeries(window_seconds=5.0, capacity=4, clock=clock)


# ----------------------------------------------------------------------
# Histogram.quantile
# ----------------------------------------------------------------------
class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        hist = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            hist.observe(v)
        # rank 2 of 4 lands at the upper edge of the second bucket.
        assert hist.quantile(0.5) == pytest.approx(2.0)
        assert 0.0 < hist.quantile(0.25) <= 1.0

    def test_empty_histogram_is_zero(self):
        assert Histogram((1.0,)).quantile(0.99) == 0.0

    def test_overflow_clamps_to_top_finite_bound(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(100.0)  # lands in the implicit +Inf bucket
        assert hist.quantile(0.99) == 2.0

    def test_rejects_out_of_range(self):
        hist = Histogram((1.0,))
        for q in (-0.1, 1.1):
            with pytest.raises(ValueError):
                hist.quantile(q)

    def test_summary_shape(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(0.5)
        summary = quantile_summary(hist)
        assert set(summary) == {"count", "sum", "p50", "p95", "p99"}
        assert summary["count"] == 1.0
        assert quantile_summary(None) == {
            "count": 0.0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }


# ----------------------------------------------------------------------
# window placement and the ring bound
# ----------------------------------------------------------------------
class TestWindows:
    def test_samples_land_in_current_window(self, ts, clock):
        ts.record_request("g", queue_wait=0.001, service_time=0.2)
        ts.record_request("g", queue_wait=0.002, service_time=0.3)
        snap = ts.snapshot()
        assert len(snap["windows"]) == 1
        g = snap["windows"][0]["graphs"]["g"]
        assert g["requests"] == 2
        assert g["rps"] == pytest.approx(2 / 5.0)

    def test_boundary_opens_new_window_and_gaps_stay_gaps(self, ts, clock):
        ts.record_request("g")
        clock.advance(5.0)  # next window
        ts.record_request("g")
        clock.advance(15.0)  # skip two windows entirely
        ts.record_request("g")
        snap = ts.snapshot()
        assert [w["index"] for w in snap["windows"]] == [0, 1, 4]
        assert [w["start"] for w in snap["windows"]] == [0.0, 5.0, 20.0]

    def test_ring_is_bounded(self, ts, clock):
        for _ in range(10):
            ts.record_request("g")
            clock.advance(5.0)
        assert len(ts) == 4  # capacity
        snap = ts.snapshot()
        assert [w["index"] for w in snap["windows"]] == [6, 7, 8, 9]

    def test_snapshot_windows_limit(self, ts, clock):
        for _ in range(3):
            ts.record_request("g")
            clock.advance(5.0)
        snap = ts.snapshot(windows=1)
        assert [w["index"] for w in snap["windows"]] == [2]

    def test_defaults_and_validation(self):
        ts = TimeSeries(clock=ManualHostClock())
        assert ts.window_seconds == DEFAULT_WINDOW_SECONDS
        assert ts.capacity == DEFAULT_CAPACITY
        with pytest.raises(ValueError):
            TimeSeries(window_seconds=0.0, clock=ManualHostClock())
        with pytest.raises(ValueError):
            TimeSeries(capacity=0, clock=ManualHostClock())


# ----------------------------------------------------------------------
# aggregation semantics
# ----------------------------------------------------------------------
class TestAggregation:
    def test_errors_counted_but_not_in_latency(self, ts):
        ts.record_request("g", queue_wait=0.01, service_time=0.5)
        ts.record_request("g", error=True)
        g = ts.snapshot()["windows"][0]["graphs"]["g"]
        assert g["requests"] == 2
        assert g["errors"] == 1
        assert g["queue_wait"]["count"] == 1.0
        assert g["service_time"]["count"] == 1.0

    def test_flush_accounting(self, ts):
        ts.record_flush("g", flushes=1, queries=4)
        ts.record_flush("g", flushes=0, queries=2)
        g = ts.snapshot()["windows"][0]["graphs"]["g"]
        assert g["flushes"] == 1
        assert g["flushed_queries"] == 6

    def test_depth_last_and_max(self, ts):
        for depth in (3, 7, 2):
            ts.sample_depth("g", depth)
        g = ts.snapshot()["windows"][0]["graphs"]["g"]
        assert g["queue_depth_last"] == 2
        assert g["queue_depth_max"] == 7

    def test_graphs_are_independent(self, ts):
        ts.record_request("a")
        ts.record_request("b")
        ts.record_request("b")
        graphs = ts.snapshot()["windows"][0]["graphs"]
        assert graphs["a"]["requests"] == 1
        assert graphs["b"]["requests"] == 2

    def test_quantiles_reflect_observed_waits(self, ts):
        for _ in range(100):
            ts.record_request("g", queue_wait=0.002, service_time=0.1)
        g = ts.snapshot()["windows"][0]["graphs"]["g"]
        # 2ms waits fall in the (0.001, 0.005] bucket.
        assert 0.001 < g["queue_wait"]["p50"] <= 0.005
        assert 0.001 < g["queue_wait"]["p99"] <= 0.005

    def test_wait_buckets_cover_sub_millisecond(self):
        assert WAIT_BUCKETS[0] <= 0.0005
        assert WAIT_BUCKETS == tuple(sorted(WAIT_BUCKETS))

    def test_snapshot_is_json_serializable(self, ts):
        import json

        ts.record_request("g", queue_wait=0.001, service_time=0.2)
        ts.record_flush("g", queries=1)
        ts.sample_depth("g", 1)
        json.dumps(ts.snapshot())  # must not raise

    def test_concurrent_recording_is_safe(self, ts):
        def pound():
            for _ in range(200):
                ts.record_request("g", queue_wait=0.001, service_time=0.1)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        g = ts.snapshot()["windows"][0]["graphs"]["g"]
        assert g["requests"] == 800
        assert g["queue_wait"]["count"] == 800.0
