"""Unit tests for deterministic fault injection and the recovery layers.

Covers the plan/spec/injector contracts, the stream-layer retry loop, the
stay-file integrity fallback, crash/resume through QuerySession.recover,
and the chaos harness built on all of it.
"""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root, small_fastbfs_config

from repro.algorithms.reference import bfs_levels
from repro.core.engine import FastBFSEngine
from repro.errors import (
    ConfigError,
    CrashError,
    EngineError,
    IOFaultError,
    OutOfSpaceError,
    PersistentIOError,
    TransientIOError,
)
from repro.obs.counters import CounterRegistry
from repro.obs.tracer import Tracer
from repro.sim.clock import SimClock
from repro.storage.device import Device, DeviceSpec
from repro.storage.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    submit_with_retry,
)
from repro.storage.machine import Machine
from repro.storage.streams import AsyncStreamWriter, StreamReader, StreamWriter
from repro.storage.vfs import VFS
from repro.utils.units import MB


def edges_of(n, start=0):
    from repro.graph.types import make_edges

    idx = np.arange(start, start + n, dtype=np.uint32)
    return make_edges(idx, idx)


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="gremlins")

    def test_probability_out_of_range(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="transient_error", probability=1.5)

    def test_delay_kind_needs_delay(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="latency")

    def test_torn_write_rejects_read_filter(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="torn_write", io_kind="read")

    def test_write_only_kinds_skip_reads_implicitly(self):
        spec = FaultSpec(kind="torn_write")
        assert not spec.matches("d", "read", "stay", 0)
        assert spec.matches("d", "write", "stay", 0)

    def test_crash_point_helper(self):
        plan = FaultPlan.crash_point(after_index=7, seed=3)
        assert len(plan.specs) == 1
        assert plan.specs[0].kind == "crash"
        assert plan.specs[0].max_fires == 1
        assert plan.seed == 3

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_multiplier=0.5)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.01,
                             backoff_multiplier=2.0)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(3) == pytest.approx(0.04)


class TestFaultInjector:
    def _submit_all(self, injector, count=40):
        """Submit ``count`` reads through a faulted device; return the
        indices at which a transient fault fired."""
        device = Device(DeviceSpec.hdd("d0"))
        device.injector = injector
        fired = []
        for i in range(count):
            try:
                device.submit(0.0, "read", 100, file_id=1, offset=i * 100,
                              group="edges:p0")
            except TransientIOError:
                fired.append(i)
        return fired

    def test_same_plan_same_seed_same_schedule(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient_error", probability=0.3),),
            seed=42,
        )
        a = self._submit_all(FaultInjector(plan, clock=SimClock()))
        b = self._submit_all(FaultInjector(plan, clock=SimClock()))
        assert a == b
        assert a  # the schedule actually fires at p=0.3 over 40 requests

    def test_different_seeds_differ(self):
        spec = FaultSpec(kind="transient_error", probability=0.3)
        a = self._submit_all(
            FaultInjector(FaultPlan(specs=(spec,), seed=1), clock=SimClock())
        )
        b = self._submit_all(
            FaultInjector(FaultPlan(specs=(spec,), seed=2), clock=SimClock())
        )
        assert a != b

    def test_max_fires_budget(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient_error", max_fires=2),), seed=0
        )
        fired = self._submit_all(FaultInjector(plan, clock=SimClock()))
        assert fired == [0, 1]

    def test_after_index_offsets_the_schedule(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient_error", after_index=5,
                             max_fires=1),),
            seed=0,
        )
        fired = self._submit_all(FaultInjector(plan, clock=SimClock()))
        assert fired == [5]

    def test_budgets_survive_snapshot_restore(self):
        """restore() rewinds the schedule position, never the fire budget:
        a consumed one-shot fault does not re-fire after recovery."""
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient_error", after_index=3,
                             max_fires=1),),
            seed=0,
        )
        injector = FaultInjector(plan, clock=SimClock())
        device = Device(DeviceSpec.hdd("d0"))
        device.injector = injector
        snap = injector.snapshot()
        raises = 0
        for _ in range(2):  # original run, then the replay after restore
            for i in range(8):
                try:
                    device.submit(0.0, "read", 10, file_id=1, offset=0,
                                  group="g")
                except TransientIOError:
                    raises += 1
            injector.restore(snap)
        assert raises == 1
        assert injector.total("fault_transient_error") == 1

    def test_persistent_fault_raises_typed(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="persistent_error", max_fires=1),), seed=0
        )
        device = Device(DeviceSpec.hdd("d0"))
        device.injector = FaultInjector(plan, clock=SimClock())
        with pytest.raises(PersistentIOError):
            device.submit(0.0, "write", 10, file_id=1, offset=0, group="g")

    def test_latency_fault_inflates_service_time(self):
        device = Device(DeviceSpec("d0", seek_time=0.0, read_bandwidth=MB,
                                   write_bandwidth=MB))
        clean = device.submit(0.0, "read", 1000, file_id=1, offset=0,
                              group="g")
        plan = FaultPlan(
            specs=(FaultSpec(kind="latency", delay_seconds=0.5),), seed=0
        )
        slow_dev = Device(DeviceSpec("d0", seek_time=0.0, read_bandwidth=MB,
                                     write_bandwidth=MB))
        slow_dev.injector = FaultInjector(plan, clock=SimClock())
        slow = slow_dev.submit(0.0, "read", 1000, file_id=1, offset=0,
                               group="g")
        assert slow.end - slow.start == pytest.approx(
            (clean.end - clean.start) + 0.5
        )

    def test_out_of_space_fault_uses_the_choke_point(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="out_of_space", max_fires=1),), seed=0
        )
        device = Device(DeviceSpec.hdd("d0"))
        device.injector = FaultInjector(plan, clock=SimClock())
        with pytest.raises(OutOfSpaceError) as exc_info:
            device.submit(0.0, "write", 10, file_id=1, offset=0, group="g")
        assert "'d0'" in str(exc_info.value)


class TestRetryLoop:
    def _setup(self, plan):
        clock = SimClock()
        device = Device(DeviceSpec.hdd("d0"))
        device.injector = FaultInjector(plan, clock=clock)
        vfs = VFS()
        f = vfs.create("f", device)
        f.append_records(edges_of(100))
        f.seal()
        return clock, device, f

    def test_retries_absorb_transients(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient_error", max_fires=2),), seed=0
        )
        clock, device, f = self._setup(plan)
        req = submit_with_retry(
            clock, f, kind="read", nbytes=f.nbytes, offset=0, group="g",
            retry=RetryPolicy(max_attempts=4),
        )
        assert req.nbytes == f.nbytes
        assert device.injector.total("io_retries") == 2
        assert device.injector.total("io_giveups") == 0
        assert clock.iowait_time > 0  # backoff landed in the iowait ledger

    def test_exhaustion_raises_io_fault_error(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient_error"),), seed=0  # always fails
        )
        clock, device, f = self._setup(plan)
        with pytest.raises(IOFaultError):
            submit_with_retry(
                clock, f, kind="read", nbytes=f.nbytes, offset=0, group="g",
                retry=RetryPolicy(max_attempts=3),
            )
        assert device.injector.total("io_retries") == 2
        assert device.injector.total("io_giveups") == 1

    def test_no_policy_means_single_attempt(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient_error", max_fires=1),), seed=0
        )
        clock, device, f = self._setup(plan)
        with pytest.raises(IOFaultError):
            submit_with_retry(
                clock, f, kind="read", nbytes=f.nbytes, offset=0, group="g",
                retry=None,
            )

    def test_persistent_error_passes_straight_through(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="persistent_error", max_fires=1),), seed=0
        )
        clock, device, f = self._setup(plan)
        with pytest.raises(PersistentIOError):
            submit_with_retry(
                clock, f, kind="read", nbytes=f.nbytes, offset=0, group="g",
                retry=RetryPolicy(max_attempts=5),
            )
        assert device.injector.total("io_retries") == 0

    def test_stream_reader_and_writer_take_retry_policy(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient_error", probability=0.3),),
            seed=7,
        )
        clock, device, f_unused = self._setup(plan)
        vfs = VFS()
        f = vfs.create("rw", device)
        retry = RetryPolicy(max_attempts=6)
        writer = StreamWriter(clock, f, buffer_bytes=256, retry=retry)
        for i in range(20):
            writer.append(edges_of(30, start=i * 30))
        writer.close()
        reader = StreamReader(clock, f, buffer_bytes=256, retry=retry)
        got = np.concatenate(list(reader))
        assert np.array_equal(got, np.concatenate(
            [edges_of(30, start=i * 30) for i in range(20)]
        ))
        assert device.injector.total("io_retries") > 0


class TestTornWriteIntegrity:
    def test_torn_write_detected_by_checksums(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="torn_write", max_fires=1),), seed=0
        )
        clock = SimClock()
        device = Device(DeviceSpec.hdd("d0"))
        device.injector = FaultInjector(plan, clock=clock)
        vfs = VFS()
        f = vfs.create("stay", device)
        writer = AsyncStreamWriter(clock, f, buffer_bytes=8 * 256,
                                   num_buffers=4)
        writer.append(edges_of(200))
        writer.close(drain=True)
        assert f.corruptions  # the medium really flipped a byte
        bad = writer.verify_integrity()
        assert bad  # and the checksum layer caught it

    def test_clean_writer_verifies_clean(self):
        clock = SimClock()
        device = Device(DeviceSpec.hdd("d0"))
        vfs = VFS()
        f = vfs.create("stay", device)
        writer = AsyncStreamWriter(clock, f, buffer_bytes=8 * 256,
                                   num_buffers=4)
        writer.append(edges_of(200))
        writer.close(drain=True)
        assert writer.verify_integrity() == []

    def test_torn_stay_degrades_to_previous_file(self, rmat10):
        """Every stay flush torn: swap-ins fail their checksum and the run
        degrades to the previous edge files — correct, just slower."""
        root = hub_root(rmat10)
        plan = FaultPlan(
            specs=(FaultSpec(kind="torn_write", role="stay",
                             probability=1.0),),
            seed=0,
        )
        machine = Machine([DeviceSpec.hdd("hdd0")], memory=2 * MB, cores=4,
                          fault_plan=plan)
        machine.attach_tracer(Tracer())
        result = FastBFSEngine(small_fastbfs_config()).run(
            rmat10, machine, root=root
        )
        assert np.array_equal(result.levels, bfs_levels(rmat10, root))
        assert result.extras["stay_integrity_failures"] > 0
        assert result.extras["stay_swaps"] == 0  # nothing corrupt swapped in
        mismatches = [
            s for s in machine.tracer.spans
            if s.name == "stay_cancel"
            and s.attrs.get("reason") == "checksum_mismatch"
        ]
        assert len(mismatches) == result.extras["stay_integrity_failures"]

    def test_stay_write_failure_degrades_to_previous_file(self, rmat10):
        """Stay flushes that exhaust their retries mark the writer failed;
        swap-in degrades with reason=write_failure and stays correct."""
        root = hub_root(rmat10)
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient_error", role="stay",
                             probability=1.0),),
            seed=0,
        )
        machine = Machine([DeviceSpec.hdd("hdd0")], memory=2 * MB, cores=4,
                          fault_plan=plan)
        machine.attach_tracer(Tracer())
        result = FastBFSEngine(
            small_fastbfs_config(retry=RetryPolicy(max_attempts=1))
        ).run(rmat10, machine, root=root)
        assert np.array_equal(result.levels, bfs_levels(rmat10, root))
        assert result.extras["stay_write_failures"] > 0
        assert result.extras["stay_swaps"] == 0
        failures = [
            s for s in machine.tracer.spans
            if s.name == "stay_cancel"
            and s.attrs.get("reason") == "write_failure"
        ]
        assert len(failures) == result.extras["stay_write_failures"]


class TestCrashRecovery:
    def _machine(self, plan=None):
        return Machine([DeviceSpec.hdd("hdd0")], memory=2 * MB, cores=4,
                       fault_plan=plan)

    def test_crash_and_recover_bit_identical(self, rmat10):
        root = hub_root(rmat10)
        baseline = FastBFSEngine(small_fastbfs_config()).run(
            rmat10, self._machine(), root=root
        )
        machine = self._machine(FaultPlan.crash_point(after_index=80))
        machine.attach_tracer(Tracer())
        engine = FastBFSEngine(small_fastbfs_config())
        staged = engine.stage(rmat10, machine)
        session = engine.session(staged)
        with pytest.raises(CrashError):
            session.run(root=root)
        result = session.recover()
        assert np.array_equal(result.levels, baseline.levels)
        assert result.extras["recovered"] == 1.0
        injector = machine.fault_injector
        assert injector.total("fault_crash") == 1
        assert injector.total("crash_recoveries") == 1
        names = [s.name for s in machine.tracer.spans]
        assert names.count("crash") == 1
        assert names.count("recover") == 1

    def test_recover_without_crash_is_an_error(self, rmat10):
        machine = self._machine(FaultPlan(seed=0))
        engine = FastBFSEngine(small_fastbfs_config())
        staged = engine.stage(rmat10, machine)
        session = engine.session(staged)
        with pytest.raises(EngineError):
            session.recover()

    def test_recover_needs_a_fault_injector(self, rmat10):
        """Without a fault plan no entry checkpoint is taken, so recover()
        refuses instead of restoring garbage."""
        machine = self._machine()
        engine = FastBFSEngine(small_fastbfs_config())
        staged = engine.stage(rmat10, machine)
        session = engine.session(staged)
        session._crashed = (0, None)  # simulate an externally-raised crash
        with pytest.raises(EngineError):
            session.recover()

    def test_crash_during_monolithic_run_propagates(self, rmat10):
        machine = self._machine(FaultPlan.crash_point(after_index=80))
        with pytest.raises(CrashError):
            FastBFSEngine(small_fastbfs_config()).run(
                rmat10, machine, root=hub_root(rmat10)
            )


class TestFaultObservability:
    def test_registry_samples_injector_counters(self, rmat10):
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient_error", probability=0.05),),
            seed=5,
        )
        machine = Machine([DeviceSpec.hdd("hdd0")], memory=2 * MB, cores=4,
                          fault_plan=plan)
        machine.attach_tracer(Tracer())
        FastBFSEngine(small_fastbfs_config()).run(
            rmat10, machine, root=hub_root(rmat10)
        )
        injector = machine.fault_injector
        assert injector.faults_injected > 0
        registry = CounterRegistry.from_machine(machine)
        assert registry.get("fault_transient_error_total", device="hdd0") == (
            float(injector.total("fault_transient_error"))
        )
        assert registry.total("io_retries_total") == float(
            injector.total("io_retries")
        )
        retry_spans = [
            s for s in machine.tracer.spans if s.name == "io_retry"
        ]
        assert len(retry_spans) == injector.total("io_retries")
        # Each injected transient raise becomes exactly one retry or one
        # give-up — the counters tie out.
        assert injector.total("fault_transient_error") == (
            injector.total("io_retries") + injector.total("io_giveups")
        )

    def test_run_bfs_accepts_a_fault_plan(self, rmat10):
        from repro.api import run_bfs

        plan = FaultPlan(
            specs=(FaultSpec(kind="latency", probability=0.2,
                             delay_seconds=0.01),),
            seed=1,
        )
        result = run_bfs(rmat10, engine="fastbfs",
                         config=small_fastbfs_config(),
                         memory=2 * MB, fault_plan=plan)
        assert np.array_equal(result.levels, bfs_levels(rmat10, 0))

    def test_run_bfs_rejects_fault_plan_with_explicit_machine(self, rmat10):
        from repro.api import run_bfs

        with pytest.raises(ConfigError):
            run_bfs(rmat10, machine=fresh_machine(),
                    fault_plan=FaultPlan(seed=0))


class TestChaosHarness:
    def test_smoke_sweep_is_clean(self):
        from repro.tooling.chaos import run_chaos

        report = run_chaos("smoke", seed=0, trials=8)
        assert report.ok
        assert len(report.trials) == 8
        outcomes = report.outcome_counts()
        assert outcomes.get("violation", 0) == 0
        # The sweep actually injected faults somewhere.
        assert sum(t.faults_injected for t in report.trials) > 0

    def test_sweep_is_deterministic(self):
        from repro.tooling.chaos import run_chaos

        a = run_chaos("smoke", seed=3, trials=6)
        b = run_chaos("smoke", seed=3, trials=6)
        assert [(t.outcome, t.detail, t.faults_injected, t.retries,
                 t.recoveries) for t in a.trials] == [
            (t.outcome, t.detail, t.faults_injected, t.retries, t.recoveries)
            for t in b.trials
        ]

    def test_unknown_profile_rejected(self):
        from repro.tooling.chaos import run_chaos

        with pytest.raises(ConfigError):
            run_chaos("hurricane")
