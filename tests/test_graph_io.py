"""Tests for binary edge-list save/load (format + sidecar validation)."""

import json

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.graph.io import load_graph, save_graph


class TestRoundTrip:
    def test_roundtrip(self, tmp_path):
        g = rmat_graph(scale=8, edge_factor=4, seed=1)
        path = tmp_path / "g.bin"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.num_vertices == g.num_vertices
        assert loaded.name == g.name
        assert loaded.directed == g.directed
        assert np.array_equal(loaded.edges, g.edges)

    def test_metadata_roundtrip(self, tmp_path):
        g = Graph.from_edge_pairs(3, [(0, 1)], name="meta-test")
        g.meta["scale_divisor"] = np.int64(256)
        g.meta["note"] = "hello"
        save_graph(g, tmp_path / "g.bin")
        loaded = load_graph(tmp_path / "g.bin")
        assert loaded.meta["scale_divisor"] == 256
        assert loaded.meta["note"] == "hello"

    def test_empty_graph(self, tmp_path):
        g = Graph.from_edge_pairs(5, [])
        save_graph(g, tmp_path / "e.bin")
        loaded = load_graph(tmp_path / "e.bin")
        assert loaded.num_edges == 0
        assert loaded.num_vertices == 5

    def test_file_size_is_8_bytes_per_edge(self, tmp_path):
        """The binary format matches the paper's raw edge list."""
        g = rmat_graph(scale=6, edge_factor=4, seed=1)
        path = tmp_path / "g.bin"
        save_graph(g, path)
        assert path.stat().st_size == g.num_edges * 8


class TestValidation:
    def test_missing_sidecar(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"\0" * 16)
        with pytest.raises(GraphFormatError):
            load_graph(path)

    def test_corrupt_sidecar(self, tmp_path):
        g = Graph.from_edge_pairs(3, [(0, 1)])
        path = tmp_path / "g.bin"
        save_graph(g, path)
        (tmp_path / "g.bin.json").write_text("{not json")
        with pytest.raises(GraphFormatError):
            load_graph(path)

    def test_missing_key(self, tmp_path):
        g = Graph.from_edge_pairs(3, [(0, 1)])
        path = tmp_path / "g.bin"
        save_graph(g, path)
        config = json.loads((tmp_path / "g.bin.json").read_text())
        del config["num_vertices"]
        (tmp_path / "g.bin.json").write_text(json.dumps(config))
        with pytest.raises(GraphFormatError):
            load_graph(path)

    def test_truncated_data_detected(self, tmp_path):
        g = Graph.from_edge_pairs(3, [(0, 1), (1, 2)])
        path = tmp_path / "g.bin"
        save_graph(g, path)
        path.write_bytes(path.read_bytes()[:8])  # drop one edge
        with pytest.raises(GraphFormatError):
            load_graph(path)


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        from repro.graph.io import load_edge_list_text, save_edge_list_text

        g = rmat_graph(scale=7, edge_factor=4, seed=2)
        path = tmp_path / "g.txt"
        save_edge_list_text(g, path)
        loaded = load_edge_list_text(path, num_vertices=g.num_vertices)
        assert loaded.num_vertices == g.num_vertices
        assert np.array_equal(loaded.edges, g.edges)

    def test_snap_header_parsed(self, tmp_path):
        from repro.graph.io import load_edge_list_text

        path = tmp_path / "snap.txt"
        path.write_text(
            "# Directed graph\n# Nodes: 4 Edges: 3\n"
            "# FromNodeId\tToNodeId\n0\t1\n1\t2\n2\t3\n"
        )
        g = load_edge_list_text(path)
        assert g.num_vertices == 4
        assert g.num_edges == 3

    def test_relabel_sparse_ids(self, tmp_path):
        from repro.graph.io import load_edge_list_text

        path = tmp_path / "sparse.txt"
        path.write_text("1000\t5000\n5000\t99999\n")
        g = load_edge_list_text(path, relabel=True)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.edges["src"].tolist() == [0, 1]
        assert g.edges["dst"].tolist() == [1, 2]

    def test_empty_file(self, tmp_path):
        from repro.graph.io import load_edge_list_text

        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = load_edge_list_text(path)
        assert g.num_edges == 0
        assert g.num_vertices == 1

    def test_garbage_rejected(self, tmp_path):
        from repro.graph.io import load_edge_list_text

        path = tmp_path / "bad.txt"
        path.write_text("0\tone\n")
        with pytest.raises(GraphFormatError):
            load_edge_list_text(path)

    def test_single_column_rejected(self, tmp_path):
        from repro.graph.io import load_edge_list_text

        path = tmp_path / "one.txt"
        path.write_text("1\n2\n")
        with pytest.raises(GraphFormatError):
            load_edge_list_text(path)

    def test_negative_ids_rejected(self, tmp_path):
        from repro.graph.io import load_edge_list_text

        path = tmp_path / "neg.txt"
        path.write_text("-1\t2\n")
        with pytest.raises(GraphFormatError):
            load_edge_list_text(path)

    def test_bfs_on_loaded_snap_graph(self, tmp_path):
        """End to end: SNAP text -> engine run."""
        from repro.algorithms.reference import bfs_levels
        from repro.api import run_bfs
        from repro.graph.io import load_edge_list_text, save_edge_list_text

        g = rmat_graph(scale=7, edge_factor=4, seed=3)
        path = tmp_path / "g.txt"
        save_edge_list_text(g, path)
        loaded = load_edge_list_text(path, num_vertices=g.num_vertices)
        result = run_bfs(loaded, memory="8MB", root=0)
        assert np.array_equal(result.levels, bfs_levels(g, 0))
