"""Unit tests for the runtime sanitizer checkers."""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root, small_fastbfs_config

from repro.core.config import FastBFSConfig
from repro.core.engine import FastBFSEngine
from repro.core.staystream import StayStreamManager
from repro.errors import EngineError, SanitizerError
from repro.graph.generators import rmat_graph
from repro.graph.types import make_edges
from repro.storage.device import Device, DeviceSpec
from repro.storage.machine import Machine
from repro.tooling.sanitizer import Sanitizer, Violation
from repro.utils.units import MB


def sanitized_machine(**kwargs):
    kwargs.setdefault("num_disks", 1)
    machine = fresh_machine(**kwargs)
    Sanitizer(strict=False).install(machine)
    return machine


def edges(n):
    return make_edges(np.arange(n) % 50, np.arange(n) % 50)


class TestInstallation:
    def test_machine_sanitize_flag_installs(self):
        m = Machine([DeviceSpec.hdd()], memory=2 * MB, sanitize=True)
        assert m.sanitizer is not None
        assert m.sanitizer.ok

    def test_fresh_preserves_sanitize(self):
        m = Machine([DeviceSpec.hdd()], memory=2 * MB, sanitize=True)
        m2 = m.fresh()
        assert m2.sanitizer is not None
        assert m2.sanitizer is not m.sanitizer

    def test_commodity_server_sanitize_kwarg(self):
        m = Machine.commodity_server(memory=2 * MB, sanitize=True)
        assert m.sanitizer is not None

    def test_engine_config_installs_on_plain_machine(self):
        g = rmat_graph(scale=7, edge_factor=4, seed=1)
        m = fresh_machine()
        cfg = small_fastbfs_config(sanitize=True)
        FastBFSEngine(cfg).run(g, m)
        assert m.sanitizer is not None
        assert m.sanitizer.finalized

    def test_double_install_rejected(self):
        m = fresh_machine()
        s = Sanitizer().install(m)
        with pytest.raises(SanitizerError):
            s.install(fresh_machine())


class TestVFSLeakChecker:
    def test_clean_create_delete_cycle(self):
        m = sanitized_machine()
        f = m.vfs.create("stay:p0:i0", m.disks[0])
        m.vfs.delete(f.name)
        assert m.sanitizer.finalize_run() == []

    def test_leaked_stay_file_reported_with_site(self):
        m = sanitized_machine()
        m.vfs.create("stay:p0:i0", m.disks[0])  # never deleted
        violations = m.sanitizer.finalize_run()
        assert len(violations) == 1
        v = violations[0]
        assert v.checker == "vfs-leak"
        assert "stay:p0:i0" in v.message
        assert v.site is not None and "test_tooling_sanitizer.py" in v.site

    def test_leaked_update_file_reported(self):
        m = sanitized_machine()
        m.vfs.create("updates:0:p1", m.disks[0])
        assert [v.checker for v in m.sanitizer.finalize_run()] == ["vfs-leak"]

    def test_survivor_roles_allowed(self):
        m = sanitized_machine()
        for name in ("input:g", "edges:p0", "vertices:p0", "shard:0"):
            m.vfs.create(name, m.disks[0])
        assert m.sanitizer.finalize_run() == []

    def test_replace_resolves_stay_into_survivor(self):
        m = sanitized_machine()
        old = m.vfs.create("edges:p0", m.disks[0])
        m.vfs.create("stay:p0:i0", m.disks[0])
        m.vfs.replace("stay:p0:i0", "edges:p0")
        assert old.deleted
        assert m.sanitizer.finalize_run() == []


class TestClockChecker:
    def test_normal_operation_clean(self):
        m = sanitized_machine()
        m.clock.charge_compute(0.5)
        m.clock.wait_until(2.0)
        m.clock.wait_until(1.0)  # in the past: legal no-op
        assert m.sanitizer.past_waits == 1
        assert m.sanitizer.finalize_run() == []

    def test_negative_wait_target_flagged(self):
        m = sanitized_machine()
        m.clock.wait_until(-1.0)
        assert [v.checker for v in m.sanitizer.finalize_run()] == ["clock"]

    def test_backwards_clock_flagged(self):
        m = sanitized_machine()
        m.clock.charge_compute(1.0)
        m.clock._now = 0.25  # simulate a buggy component rewinding time
        m.clock.charge_compute(0.0)
        checkers = {v.checker for v in m.sanitizer.finalize_run()}
        assert "clock" in checkers


class TestCostCoverageChecker:
    def test_unattributed_io_flagged(self):
        m = sanitized_machine()
        m.disks[0].submit(
            submit_time=0.0, kind="read", nbytes=4096, file_id=1, offset=0
        )
        violations = m.sanitizer.finalize_run()
        assert any(
            v.checker == "cost-coverage" and "unattributed" in v.message
            for v in violations
        )

    def test_uncharged_edges_read_flagged(self):
        m = sanitized_machine()
        # Stream edge bytes without ever charging a scatter cost.
        m.disks[0].submit(
            submit_time=0.0, kind="read", nbytes=4096, file_id=1,
            offset=0, group="edges:p0",
        )
        violations = m.sanitizer.finalize_run()
        assert any(
            v.checker == "cost-coverage" and "scatter" in v.message
            for v in violations
        )

    def test_charged_edges_read_clean(self):
        m = sanitized_machine()
        m.disks[0].submit(
            submit_time=0.0, kind="read", nbytes=4096, file_id=1,
            offset=0, group="edges:p0",
        )
        m.clock.charge_compute(1e-6, category="scatter")
        assert m.sanitizer.finalize_run() == []

    def test_unknown_roles_ignored(self):
        m = sanitized_machine()
        m.disks[0].submit(
            submit_time=0.0, kind="read", nbytes=4096, file_id=1,
            offset=0, group="shard:0",
        )
        assert m.sanitizer.finalize_run() == []


class TestStayStateChecker:
    def _manager(self, machine):
        cfg = FastBFSConfig(
            stay_buffer_bytes=1024, num_stay_buffers=2, cancellation_grace=0.001
        )
        mgr = StayStreamManager(machine.clock, machine.vfs, machine.disks[0], cfg)
        machine.sanitizer.watch_staystream(mgr)
        return mgr

    def test_full_swap_lifecycle_clean(self):
        m = sanitized_machine()
        mgr = self._manager(m)
        old = m.vfs.create("edges:p0", m.disks[0])
        mgr.open(0, iteration=0)
        m.clock.charge_compute(1e-9, category="trim")  # protocol: trim charge
        mgr.append(0, edges(10))
        mgr.finish_partition(0)
        m.clock.charge_compute(1.0)
        _, outcome = mgr.resolve_input(0, old)
        assert outcome == "swap"
        assert m.sanitizer.finalize_run() == []

    def test_cancel_lifecycle_clean(self):
        m = sanitized_machine()
        mgr = self._manager(m)
        old = m.vfs.create("edges:p0", m.disks[0])
        mgr.open(0, iteration=0)
        m.clock.charge_compute(1e-9, category="trim")
        mgr.append(0, edges(10**6))  # too slow to land within the grace
        mgr.finish_partition(0)
        _, outcome = mgr.resolve_input(0, old)
        assert outcome == "cancel"
        # The displaced edges file survives; no stay writer left behind.
        assert m.sanitizer.finalize_run() == []

    def test_discard_all_terminalizes_everything(self):
        m = sanitized_machine()
        mgr = self._manager(m)
        mgr.open(0, iteration=0)
        m.clock.charge_compute(1e-9, category="trim")
        mgr.append(0, edges(5))
        mgr.finish_partition(0)
        mgr.open(1, iteration=0)
        mgr.discard_all()
        assert m.sanitizer.finalize_run() == []

    def test_abandoned_writer_flagged(self):
        m = sanitized_machine()
        mgr = self._manager(m)
        mgr.open(0, iteration=0)
        mgr.append(0, edges(5))
        # Neither finished nor discarded: both a stay-state violation and a
        # VFS leak of the stay file.
        checkers = {v.checker for v in m.sanitizer.finalize_run()}
        assert checkers == {"stay-state", "vfs-leak"}

    def test_double_open_recorded_and_raises(self):
        m = sanitized_machine()
        mgr = self._manager(m)
        mgr.open(0, iteration=0)
        with pytest.raises(EngineError):
            mgr.open(0, iteration=0)
        assert any(
            v.checker == "stay-state" and "double open" in v.message
            for v in m.sanitizer.violations
        )

    def test_append_without_open_recorded_and_raises(self):
        m = sanitized_machine()
        mgr = self._manager(m)
        with pytest.raises(EngineError):
            mgr.append(2, edges(1))
        assert any(
            v.checker == "stay-state" and "without an open" in v.message
            for v in m.sanitizer.violations
        )


class TestSessionScoping:
    def test_preexisting_files_are_not_session_leaks(self):
        # A sealed staged artifact is alive before the session begins; it
        # surviving the query must not count as a leak.
        m = sanitized_machine()
        m.vfs.create("updates:in:p0", m.disks[0])
        m.sanitizer.begin_session()
        assert m.sanitizer.finalize_session() == []

    def test_transient_session_file_flagged(self):
        m = sanitized_machine()
        m.sanitizer.begin_session()
        m.vfs.create("stay:p0:i1", m.disks[0])
        out = m.sanitizer.finalize_session()
        assert len(out) == 1
        assert out[0].checker == "vfs-leak"
        assert "end of session" in out[0].message

    def test_survivor_roles_survive_the_session(self):
        m = sanitized_machine()
        m.sanitizer.begin_session()
        m.vfs.create("edges:p0", m.disks[0])
        assert m.sanitizer.finalize_session() == []

    def test_session_leak_not_double_reported_by_finalize_run(self):
        m = sanitized_machine()
        m.sanitizer.begin_session()
        m.vfs.create("stay:p0:i1", m.disks[0])
        m.sanitizer.finalize_session()
        count = len(m.sanitizer.leaks())
        m.sanitizer.finalize_run()
        assert len(m.sanitizer.leaks()) == count

    def test_deleted_session_file_clean(self):
        m = sanitized_machine()
        m.sanitizer.begin_session()
        f = m.vfs.create("stay:p0:i1", m.disks[0])
        m.vfs.delete(f.name)
        assert m.sanitizer.finalize_session() == []

    def test_sanitized_batch_run_clean(self):
        """Acceptance gate: staged files shared across a run_many batch are
        session survivors, not leaks."""
        g = rmat_graph(scale=8, edge_factor=6, seed=5)
        m = sanitized_machine()
        batch = FastBFSEngine(small_fastbfs_config()).run_many(
            g, m, roots=[0, hub_root(g)]
        )
        assert batch.num_queries == 2
        assert m.sanitizer.finalized
        assert m.sanitizer.leaks() == []
        assert m.sanitizer.violations == []


class TestStrictMode:
    def test_strict_raises_with_report(self):
        m = fresh_machine()
        Sanitizer(strict=True).install(m)
        m.vfs.create("stay:p9:i9", m.disks[0])
        with pytest.raises(SanitizerError, match="stay:p9:i9"):
            m.sanitizer.finalize_run()

    def test_strict_clean_run_does_not_raise(self):
        m = fresh_machine()
        Sanitizer(strict=True).install(m)
        assert m.sanitizer.finalize_run() == []

    def test_finalize_is_idempotent(self):
        m = sanitized_machine()
        m.vfs.create("stay:p0:i0", m.disks[0])
        first = m.sanitizer.finalize_run()
        second = m.sanitizer.finalize_run()
        assert first == second == m.sanitizer.violations


class TestReporting:
    def test_report_lists_every_violation(self):
        s = Sanitizer(strict=False)
        s._record("clock", "a")
        s._record("vfs-leak", "b", site="x.py:1 in f")
        report = s.report()
        assert "2 violation(s)" in report
        assert "[clock] a" in report
        assert "x.py:1 in f" in report

    def test_clean_report(self):
        assert "0 violations" in Sanitizer().report()

    def test_violation_str(self):
        v = Violation("clock", "msg", site="y.py:2 in g")
        assert str(v) == "[clock] msg (created at y.py:2 in g)"

    def test_by_checker_and_leaks(self):
        s = Sanitizer(strict=False)
        s._record("vfs-leak", "a")
        s._record("clock", "b")
        assert len(s.leaks()) == 1
        assert len(s.by_checker("clock")) == 1


class TestEndToEnd:
    def test_full_fastbfs_run_sanitized_clean(self):
        """Acceptance gate: a full traversal with sanitize=True has zero
        VFS leaks and zero state-machine violations."""
        g = rmat_graph(scale=9, edge_factor=8, seed=21)
        m = sanitized_machine()
        result = FastBFSEngine(small_fastbfs_config()).run(
            g, m, root=hub_root(g)
        )
        assert m.sanitizer.finalized
        assert m.sanitizer.leaks() == []
        assert m.sanitizer.by_checker("stay-state") == []
        assert m.sanitizer.violations == []
        assert result.extras["sanitizer_violations"] == 0.0

    def test_sanitized_run_matches_unsanitized(self):
        g = rmat_graph(scale=8, edge_factor=6, seed=7)
        root = hub_root(g)
        plain = FastBFSEngine(small_fastbfs_config()).run(
            g, fresh_machine(), root=root
        )
        sane = FastBFSEngine(small_fastbfs_config(sanitize=True)).run(
            g, fresh_machine(), root=root
        )
        assert np.array_equal(plain.levels, sane.levels)
        assert plain.execution_time == sane.execution_time
        assert plain.report.bytes_read == sane.report.bytes_read
