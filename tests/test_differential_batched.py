"""Differential suite for the MS-BFS batched scheduler.

Every case runs the same root list through ``run_many`` twice — serial
rewind and ``mode="batched"`` shared scans — and checks that the batched
path is *observationally identical* per query:

* levels and parents match bit-for-bit (and agree with the in-memory
  reference BFS);
* per-query iteration counts match;
* per-query update totals match (the demuxed per-pass bookkeeping);
* the batch scans strictly fewer edge records than the serial rewind
  whenever more than one query shares a batch.

The matrix reuses the graph/config/placement axes of the main
differential suite and adds the batching-specific ones: batch widths 1,
2, 64 (exactly one full mask) and 65 (spills into a second batch),
early-converging queries (isolated roots that finish in one pass while
hub queries keep scanning), duplicate roots, and multi-source slots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.reference import bfs_levels
from repro.algorithms.validation import validate_bfs_result
from repro.core.engine import FastBFSEngine
from repro.engines.xstream import XStreamEngine
from repro.graph.generators import random_graph, rmat_graph
from repro.graph.graph import Graph
from tests.helpers import fresh_machine, small_fastbfs_config

from tests.test_differential import _config_for, _graph_for, _placement_for

NUM_CASES = 12


def _roots_for(graph: Graph, i: int) -> list:
    """A deterministic root list mixing hubs, periphery and dead ends.

    Always includes at least one zero-out-degree vertex when the graph
    has one, so every case exercises an early-converging query slot.
    """
    deg = graph.out_degrees()
    order = np.argsort(-deg)
    q = (2, 3, 5, 8)[i % 4]
    roots = [int(v) for v in order[:q]]
    dead = np.flatnonzero(deg == 0)
    if len(dead):
        roots[-1] = int(dead[i % len(dead)])
    if i % 3 == 0 and len(roots) > 1:
        roots[1] = roots[0]  # duplicate root: identical slots must agree
    return roots


def _run_both(graph, cfg, num_disks, memory_kb, roots, engine_cls=FastBFSEngine):
    serial = engine_cls(cfg).run_many(
        graph,
        fresh_machine(num_disks=num_disks, memory=memory_kb * 1024),
        roots=roots,
        mode="serial",
    )
    batched = engine_cls(cfg).run_many(
        graph,
        fresh_machine(num_disks=num_disks, memory=memory_kb * 1024),
        roots=roots,
        mode="batched",
    )
    return serial, batched


def _assert_batch_matches_serial(serial, batched, roots, graph=None):
    assert serial.mode == "serial"
    assert batched.mode == "batched"
    assert batched.num_queries == serial.num_queries == len(roots)
    for q, (qs, qb) in enumerate(zip(serial.queries, batched.queries)):
        assert np.array_equal(qs.levels, qb.levels), f"query {q} levels"
        assert np.array_equal(qs.parents, qb.parents), f"query {q} parents"
        assert qs.num_iterations == qb.num_iterations, f"query {q} iterations"
        assert qs.updates_generated == qb.updates_generated, f"query {q} updates"
        assert qs.query_index == qb.query_index == q
        assert qs.extras["query_index"] == qb.extras["query_index"] == float(q)
        if graph is not None and np.isscalar(roots[q]):
            ref = bfs_levels(graph, int(roots[q]))
            assert np.array_equal(qb.levels, ref), f"query {q} vs reference"
            report = validate_bfs_result(
                graph, int(roots[q]), qb.levels, qb.parents,
                reference_levels=ref,
            )
            assert report.ok, f"query {q}: {report.errors}"


@pytest.mark.parametrize("case", range(NUM_CASES))
def test_batched_matches_serial(case):
    graph = _graph_for(case)
    cfg = _config_for(case)
    num_disks, memory_kb = _placement_for(case)
    if (cfg.rotate_streams or cfg.stay_disk) and num_disks < 2:
        num_disks = 2
    roots = _roots_for(graph, case)

    serial, batched = _run_both(graph, cfg, num_disks, memory_kb, roots)
    _assert_batch_matches_serial(serial, batched, roots, graph=graph)

    # The whole point: one shared timeline scans fewer edge records than
    # Q rewinds (Q > 1 in every case of this matrix).
    assert len(batched.batch_times) == 1
    assert batched.edges_scanned < serial.edges_scanned


@pytest.mark.parametrize("width", [1, 2, 64, 65])
def test_batch_width_boundaries(width):
    """Batch packing at the mask boundaries: 1, 2, exactly 64, and spill."""
    graph = random_graph(120, 900, seed=7)
    deg = graph.out_degrees()
    candidates = [int(v) for v in np.flatnonzero(deg > 0)]
    roots = [candidates[i % len(candidates)] for i in range(width)]

    serial, batched = _run_both(graph, small_fastbfs_config(), 1, 256, roots)
    _assert_batch_matches_serial(serial, batched, roots, graph=graph)
    assert len(batched.batch_times) == (2 if width > 64 else 1)
    assert batched.extras["num_batches"] == float(len(batched.batch_times))
    if width > 1:
        assert batched.edges_scanned < serial.edges_scanned


def test_early_converging_queries_keep_their_own_iteration_counts():
    """Dead-end roots stop at one pass; hub queries keep their full depth."""
    base = random_graph(100, 600, seed=3)
    # Tack on isolated vertices: BFS from one converges immediately.
    src, dst = base.edges["src"], base.edges["dst"]
    graph = Graph.from_arrays(base.num_vertices + 4, src, dst, name="tail")
    hub = int(np.argmax(graph.out_degrees()))
    isolated = graph.num_vertices - 1
    roots = [hub, isolated, hub, isolated]

    serial, batched = _run_both(graph, small_fastbfs_config(), 1, 256, roots)
    _assert_batch_matches_serial(serial, batched, roots, graph=graph)
    per_q = [q.num_iterations for q in batched.queries]
    assert per_q[1] == per_q[3] == 1
    assert per_q[0] == per_q[2] > 1
    # The isolated query's output is just its own root.
    lv = batched.queries[1].levels
    assert lv[isolated] == 0 and (lv >= 0).sum() == 1


def test_multi_source_slots_batch_like_serial():
    """A roots entry may itself be a root list (one multi-source query)."""
    graph = rmat_graph(scale=8, edge_factor=8, seed=21)
    deg = graph.out_degrees()
    order = [int(v) for v in np.argsort(-deg)]
    roots = [[order[0], order[5]], order[1], [order[2], order[3], order[4]]]

    serial, batched = _run_both(graph, small_fastbfs_config(), 1, 256, roots)
    _assert_batch_matches_serial(serial, batched, roots)


def test_xstream_bfs_batches_too():
    """The batched kernel is engine-agnostic: X-Stream BFS shares scans."""
    from tests.helpers import small_engine_config

    graph = random_graph(80, 500, seed=5)
    deg = graph.out_degrees()
    roots = [int(v) for v in np.argsort(-deg)[:3]]

    serial = XStreamEngine(small_engine_config()).run_many(
        graph,
        fresh_machine(num_disks=1, memory=256 * 1024),
        roots=roots,
        mode="serial",
    )
    batched = XStreamEngine(small_engine_config()).run_many(
        graph,
        fresh_machine(num_disks=1, memory=256 * 1024),
        roots=roots,
        mode="batched",
    )
    _assert_batch_matches_serial(serial, batched, roots, graph=graph)
    assert batched.edges_scanned < serial.edges_scanned


def test_unbatchable_algorithm_falls_back_to_serial():
    """WCC has no batched kernel: mode='batched' silently runs serially."""
    from repro.algorithms.streaming import WCCAlgorithm

    graph = random_graph(80, 500, seed=5).symmetrized()
    roots = [0, 1, 2]

    batch = FastBFSEngine(small_fastbfs_config()).run_many(
        graph,
        fresh_machine(num_disks=1, memory=256 * 1024),
        roots=roots,
        mode="batched",
        algorithm=WCCAlgorithm(),
    )
    assert batch.mode == "serial"
    assert batch.extras["batched_fallback"] == 1.0

    reference = FastBFSEngine(small_fastbfs_config()).run_many(
        graph,
        fresh_machine(num_disks=1, memory=256 * 1024),
        roots=roots,
        mode="serial",
        algorithm=WCCAlgorithm(),
    )
    for qs, qb in zip(reference.queries, batch.queries):
        assert np.array_equal(qs.output["label"], qb.output["label"])
        assert qs.report.execution_time == qb.report.execution_time


def test_serial_mode_unchanged_by_the_refactor():
    """mode='serial' is the default and still rewinds per query."""
    graph = random_graph(90, 500, seed=9)
    deg = graph.out_degrees()
    roots = [int(v) for v in np.argsort(-deg)[:3]]

    default = FastBFSEngine(small_fastbfs_config()).run_many(
        graph, fresh_machine(num_disks=1, memory=256 * 1024), roots=roots
    )
    explicit = FastBFSEngine(small_fastbfs_config()).run_many(
        graph,
        fresh_machine(num_disks=1, memory=256 * 1024),
        roots=roots,
        mode="serial",
    )
    assert default.mode == explicit.mode == "serial"
    for qd, qe in zip(default.queries, explicit.queries):
        assert np.array_equal(qd.levels, qe.levels)
        assert qd.report.execution_time == qe.report.execution_time
    assert default.total_time == explicit.total_time


def test_bad_mode_rejected():
    from repro.errors import ConfigError

    graph = random_graph(40, 200, seed=1)
    with pytest.raises(ConfigError):
        FastBFSEngine(small_fastbfs_config()).run_many(
            graph, fresh_machine(), roots=[0], mode="parallel"
        )
