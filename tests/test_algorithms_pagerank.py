"""Tests for PageRank on the streaming engines."""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root, small_fastbfs_config

from repro.algorithms.pagerank import PageRankAlgorithm, reference_pagerank
from repro.core.engine import FastBFSEngine
from repro.engines.xstream import XStreamEngine
from repro.errors import ConfigError, EngineError
from repro.graph.generators import path_graph, random_graph, rmat_graph
from repro.graph.graph import Graph

ROUNDS = 8


def run_pagerank(graph, engine_cls=XStreamEngine, rounds=ROUNDS, partitions=3):
    algo = PageRankAlgorithm(graph.out_degrees())
    engine = engine_cls(
        small_fastbfs_config(num_partitions=partitions, max_iterations=rounds)
    )
    return engine.run(graph, fresh_machine(), algorithm=algo, root=0)


class TestConstruction:
    def test_bad_damping(self):
        with pytest.raises(EngineError):
            PageRankAlgorithm(np.ones(3), damping=1.0)

    def test_negative_degrees(self):
        with pytest.raises(EngineError):
            PageRankAlgorithm(np.array([-1.0, 2.0]))

    def test_degree_size_mismatch(self):
        algo = PageRankAlgorithm(np.ones(3))
        with pytest.raises(EngineError):
            algo.init_state(5, None)

    def test_max_iterations_validation(self):
        with pytest.raises(ConfigError):
            small_fastbfs_config(max_iterations=0)


class TestCorrectness:
    def test_matches_dense_oracle(self):
        g = rmat_graph(scale=8, edge_factor=8, seed=13)
        result = run_pagerank(g)
        expected = reference_pagerank(g, ROUNDS)
        assert np.allclose(result.output["rank"], expected, rtol=1e-4,
                           atol=1e-7)

    def test_fastbfs_engine_identical(self):
        """PageRank on FastBFS = graceful fallback, same numbers."""
        g = rmat_graph(scale=8, edge_factor=8, seed=13)
        xs = run_pagerank(g, XStreamEngine)
        fb = run_pagerank(g, FastBFSEngine)
        assert np.allclose(xs.output["rank"], fb.output["rank"], rtol=1e-5)
        assert fb.extras.get("stay_files_written", 0.0) == 0.0

    def test_partition_count_invariance(self):
        g = random_graph(300, 2400, seed=4)
        a = run_pagerank(g, partitions=1)
        b = run_pagerank(g, partitions=7)
        assert np.allclose(a.output["rank"], b.output["rank"], rtol=1e-4)

    def test_runs_exactly_max_iterations(self):
        g = rmat_graph(scale=7, edge_factor=4, seed=2)
        result = run_pagerank(g, rounds=5)
        # Pass 0 .. pass 5: 5 scatter rounds + the final gather-only pass.
        assert result.num_iterations == 6
        scatters = [it for it in result.iterations if it.updates_generated > 0]
        assert len(scatters) == 5

    def test_ranks_sum_below_one(self):
        """Without dangling redistribution the total mass leaks but stays
        positive and bounded."""
        g = rmat_graph(scale=8, edge_factor=8, seed=3)
        rank = run_pagerank(g).output["rank"]
        assert 0.0 < rank.sum() <= 1.0 + 1e-3
        assert (rank > 0).all()

    def test_hub_ranks_highest_on_star(self):
        g = Graph.from_edge_pairs(
            5, [(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)]
        )
        # The 0<->1 cycle oscillates early; run to (near) convergence.
        rank = run_pagerank(g, rounds=30, partitions=2).output["rank"]
        assert rank.argmax() == 0

    def test_networkx_ranking_agreement(self):
        import networkx as nx

        g = rmat_graph(scale=8, edge_factor=8, seed=21).deduplicated(
            drop_self_loops=True
        )
        rank = run_pagerank(g, rounds=25).output["rank"]
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(g.num_vertices))
        nxg.add_edges_from(zip(g.edges["src"].tolist(), g.edges["dst"].tolist()))
        nx_rank = nx.pagerank(nxg, alpha=0.85)
        ours_top = set(np.argsort(rank)[-10:].tolist())
        theirs_top = set(
            sorted(nx_rank, key=nx_rank.get, reverse=True)[:10]
        )
        # Different dangling handling => compare rankings, not values.
        assert len(ours_top & theirs_top) >= 7

    def test_more_rounds_converge(self):
        g = rmat_graph(scale=7, edge_factor=8, seed=9)
        r10 = run_pagerank(g, rounds=10).output["rank"]
        r11 = run_pagerank(g, rounds=11).output["rank"]
        r30 = run_pagerank(g, rounds=30).output["rank"]
        r31 = run_pagerank(g, rounds=31).output["rank"]
        assert np.abs(r31 - r30).max() < np.abs(r11 - r10).max() + 1e-7


class TestEngineIntegrationDetails:
    def test_dense_updates_every_round(self):
        g = path_graph(40)
        result = run_pagerank(g, rounds=3, partitions=2)
        scatters = [it.updates_generated for it in result.iterations]
        assert scatters[0] == g.num_edges
        assert scatters[1] == g.num_edges

    def test_bfs_unaffected_by_max_iterations_default(self, rmat10):
        from repro.algorithms.reference import bfs_levels

        result = FastBFSEngine(small_fastbfs_config()).run(
            rmat10, fresh_machine(), root=hub_root(rmat10)
        )
        assert np.array_equal(
            result.levels, bfs_levels(rmat10, hub_root(rmat10))
        )

    def test_max_iterations_caps_bfs_early(self):
        g = path_graph(50)
        result = FastBFSEngine(
            small_fastbfs_config(max_iterations=5, num_partitions=2)
        ).run(g, fresh_machine(), root=0)
        assert result.levels.max() == 5  # truncated traversal
        assert (result.levels[6:] == -1).all()
