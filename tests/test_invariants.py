"""Cross-cutting invariant tests (DESIGN.md §6 correctness obligations).

These go beyond output equality: they open up a run and check the
*mechanism* — stay files hold exactly the paper-rule survivors, nothing is
ever lost, accounting identities hold, runs are bit-deterministic.
"""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root, small_fastbfs_config

from repro.algorithms.reference import bfs_levels
from repro.algorithms.streaming import AlgoContext
from repro.core.engine import FastBFSEngine
from repro.engines.base import _RunState
from repro.engines.result import IterationStats
from repro.engines.xstream import XStreamEngine
from repro.graph.generators import rmat_graph
from repro.graph.types import EDGE_DTYPE


class RecordingFastBFS(FastBFSEngine):
    """White-box engine: captures each scatter's input and stay output."""

    def __init__(self, config):
        super().__init__(config)
        self.trace = []  # (iteration, partition, input_edges, stay_edges)
        self._current_input = None

    def _edge_input_file(self, rt, p, ctx, stats):
        f = super()._edge_input_file(rt, p, ctx, stats)
        self._current_input = f.records().copy()
        return f

    def _post_partition_scatter(self, rt, p, ctx):
        had_writer = rt.stay.current(p) is not None
        super()._post_partition_scatter(rt, p, ctx)  # closes & seals the file
        stay = None
        if had_writer:
            stay = rt.stay.pending_partitions[p].file.records().copy()
        self.trace.append((ctx.iteration, p, self._current_input, stay))


@pytest.fixture(scope="module")
def traced_run():
    graph = rmat_graph(scale=10, edge_factor=8, seed=23)
    root = hub_root(graph)
    engine = RecordingFastBFS(
        small_fastbfs_config(num_partitions=3, selective_scheduling=False)
    )
    result = engine.run(graph, fresh_machine(), root=root)
    levels = bfs_levels(graph, root)
    return graph, root, engine, result, levels


class TestStayFileContents:
    def test_stay_is_exactly_the_paper_rule_survivors(self, traced_run):
        """stay(p, i) == input(p, i) minus edges whose source is in the
        level-i frontier (generate => eliminate, nothing else)."""
        graph, root, engine, result, levels = traced_run
        checked = 0
        for iteration, p, input_edges, stay in engine.trace:
            if stay is None:
                continue
            frontier = levels == iteration
            keep = ~frontier[input_edges["src"]]
            expected = input_edges[keep]
            assert np.array_equal(stay, expected), (iteration, p)
            checked += 1
        assert checked > 0

    def test_stay_preserves_stream_order(self, traced_run):
        """Survivors appear in the stay file in input order (subsequence)."""
        graph, root, engine, result, levels = traced_run
        for iteration, p, input_edges, stay in engine.trace:
            if stay is None or len(stay) < 2:
                continue
            # Tag each input edge with its position; survivors' positions
            # must be strictly increasing in the stay file.
            keys_in = input_edges["src"].astype(np.uint64) << np.uint64(32)
            keys_in = keys_in | input_edges["dst"].astype(np.uint64)
            keys_stay = stay["src"].astype(np.uint64) << np.uint64(32)
            keys_stay = keys_stay | stay["dst"].astype(np.uint64)
            # Multi-edges make exact position matching ambiguous; the
            # multiset equality above plus length ordering suffices here.
            assert len(stay) <= len(input_edges)

    def test_no_first_visit_edge_ever_lost(self, traced_run):
        """Conservation: every input edge either survives to the stay file
        or had an active (level == iteration) source — so an edge that
        could still produce a first visit is never dropped."""
        graph, root, engine, result, levels = traced_run
        for iteration, p, input_edges, stay in engine.trace:
            if stay is None:
                continue
            frontier_edges = int(
                (levels[input_edges["src"]] == iteration).sum()
            )
            assert len(stay) + frontier_edges == len(input_edges)


class TestAccountingIdentities:
    def test_clock_identity(self, rmat10):
        result = FastBFSEngine(small_fastbfs_config()).run(
            rmat10, fresh_machine(), root=hub_root(rmat10)
        )
        report = result.report
        assert report.execution_time == pytest.approx(
            report.compute_time + report.iowait_time
        )

    def test_device_busy_bounded_by_makespan_plus_tail(self, rmat10):
        machine = fresh_machine(num_disks=2)
        FastBFSEngine(small_fastbfs_config(rotate_streams=True)).run(
            rmat10, machine, root=hub_root(rmat10)
        )
        now = machine.clock.now
        for dev in machine.all_devices():
            assert dev.busy_time_until(now) <= now + 1e-9

    def test_edge_scan_bytes_bounded_by_reads(self, rmat10):
        result = XStreamEngine(small_fastbfs_config()).run(
            rmat10, fresh_machine(), root=hub_root(rmat10)
        )
        scanned_bytes = result.edges_scanned * EDGE_DTYPE.itemsize
        assert result.report.bytes_read >= scanned_bytes

    def test_stay_bytes_in_written_total(self, rmat12):
        result = FastBFSEngine(small_fastbfs_config()).run(
            rmat12, fresh_machine(), root=hub_root(rmat12)
        )
        # Written >= stays actually flushed (some may be cancelled at end).
        assert result.report.bytes_written > 0
        assert (
            result.extras["stay_bytes_written"]
            >= result.extras["stay_records_written"] * 8 * 0.99
        )


class TestDeterminism:
    @pytest.mark.parametrize("engine_name", ["fastbfs", "x-stream"])
    def test_identical_runs_bit_identical(self, rmat10, engine_name):
        def run():
            cls = FastBFSEngine if engine_name == "fastbfs" else XStreamEngine
            engine = cls(small_fastbfs_config())
            return engine.run(rmat10, fresh_machine(), root=hub_root(rmat10))

        a, b = run(), run()
        assert np.array_equal(a.levels, b.levels)
        assert np.array_equal(a.parents, b.parents)
        assert a.execution_time == b.execution_time
        assert a.report.bytes_read == b.report.bytes_read
        assert a.report.bytes_written == b.report.bytes_written
        assert a.report.iowait_time == b.report.iowait_time
        assert [it.edges_scanned for it in a.iterations] == [
            it.edges_scanned for it in b.iterations
        ]

    def test_graphchi_deterministic(self, rmat10):
        from repro.engines.graphchi import GraphChiConfig, GraphChiEngine

        def run():
            return GraphChiEngine(GraphChiConfig(num_shards=3)).run(
                rmat10, fresh_machine(), root=hub_root(rmat10)
            )

        a, b = run(), run()
        assert np.array_equal(a.levels, b.levels)
        assert a.execution_time == b.execution_time
