"""Tests for the Graph500 protocol library."""

import numpy as np
import pytest

from tests.helpers import fresh_machine, small_fastbfs_config

from repro.algorithms.graph500 import (
    Graph500Result,
    Graph500Run,
    run_graph500,
    sample_roots,
)
from repro.core.engine import FastBFSEngine
from repro.errors import EngineError, ValidationError
from repro.graph.generators import rmat_graph, star_graph
from repro.graph.graph import Graph


class TestSampleRoots:
    def test_roots_have_out_edges(self, rmat10):
        roots = sample_roots(rmat10, 16, seed=1)
        degrees = rmat10.out_degrees()
        assert (degrees[roots] > 0).all()

    def test_distinct(self, rmat10):
        roots = sample_roots(rmat10, 32, seed=2)
        assert len(np.unique(roots)) == len(roots)

    def test_deterministic(self, rmat10):
        a = sample_roots(rmat10, 8, seed=5)
        b = sample_roots(rmat10, 8, seed=5)
        assert np.array_equal(a, b)

    def test_clamped_to_candidates(self):
        g = star_graph(3, out=True)  # only the hub has out-edges
        assert len(sample_roots(g, 10)) == 1

    def test_no_candidates_raises(self):
        g = Graph.from_edge_pairs(3, [])
        with pytest.raises(EngineError):
            sample_roots(g, 4)

    def test_bad_count(self, rmat10):
        with pytest.raises(EngineError):
            sample_roots(rmat10, 0)


class TestRunProtocol:
    def test_protocol_produces_validated_runs(self, rmat10):
        result = run_graph500(
            rmat10,
            engine_factory=lambda: FastBFSEngine(small_fastbfs_config()),
            machine_factory=fresh_machine,
            num_roots=4,
            seed=3,
        )
        assert len(result.runs) == 4
        for run in result.runs:
            assert isinstance(run, Graph500Run)
            assert run.teps > 0
            assert run.visited >= 1
            assert run.execution_time > 0

    def test_teps_statistics(self, rmat10):
        result = run_graph500(
            rmat10,
            engine_factory=lambda: FastBFSEngine(small_fastbfs_config()),
            machine_factory=fresh_machine,
            num_roots=3,
        )
        assert result.min_teps <= result.harmonic_mean_teps <= result.max_teps
        assert "harmonic mean" in result.summary()

    def test_empty_result(self):
        result = Graph500Result()
        assert result.harmonic_mean_teps == 0.0
        assert result.min_teps == 0.0

    def test_validation_catches_broken_engine(self, rmat10):
        class BrokenEngine(FastBFSEngine):
            def run(self, graph, machine, **kwargs):
                result = super().run(graph, machine, **kwargs)
                result.output["level"][:] = 0  # corrupt
                return result

        with pytest.raises(ValidationError):
            run_graph500(
                rmat10,
                engine_factory=lambda: BrokenEngine(small_fastbfs_config()),
                machine_factory=fresh_machine,
                num_roots=1,
            )

    def test_validate_false_skips_checks(self, rmat10):
        result = run_graph500(
            rmat10,
            engine_factory=lambda: FastBFSEngine(small_fastbfs_config()),
            machine_factory=fresh_machine,
            num_roots=1,
            validate=False,
        )
        assert len(result.runs) == 1
