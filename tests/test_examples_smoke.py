"""Smoke tests: every example script runs to completion.

Runs each ``examples/*.py`` in-process (imported as a module, ``main()``
called) at its built-in scale.  The slowest examples are gated behind
``REPRO_RUN_SLOW_EXAMPLES=1`` so the default test pass stays fast.
"""

import importlib.util
import os
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST = [
    "quickstart.py",
    "algorithm_extensions.py",
    "profiling.py",
    "fault_injection.py",
]
SLOW = [
    "social_network_analysis.py",
    "multi_disk_pipeline.py",
    "graph500_run.py",
    "trimming_tuning.py",
    "diameter_estimation.py",
]


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path)]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST)
def test_fast_examples(name, capsys):
    out = run_example(name, capsys)
    assert out.strip()
    assert "Error" not in out


@pytest.mark.parametrize("name", SLOW)
@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW_EXAMPLES"),
    reason="set REPRO_RUN_SLOW_EXAMPLES=1 to run the slow example smokes",
)
def test_slow_examples(name, capsys):
    out = run_example(name, capsys)
    assert out.strip()


def test_every_example_is_listed():
    """No example can be added without being smoke-tested."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST) | set(SLOW)
