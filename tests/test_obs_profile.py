"""Tests for the trace-analysis layer (repro.obs.profile).

Golden contracts locked down here:

* **breakdown completeness** — per-query stage totals (stages + ``other``
  + ``overhead``) sum exactly to the query span's duration;
* **stay accounting** — flush/cancel span counts match the engine's own
  :class:`StayStats` counters (``stay_swaps``, ``stay_cancellations``,
  ``stay_end_of_run_discards``), and overlap time is bounded by both the
  flush time and the scatter time;
* **no-trim runs** — with ``trim_enabled=False`` the profile shows zero
  stay lanes;
* **I/O attribution** — the joined registry reconciles bit-for-bit with
  the run's :class:`IOReport`;
* **source polymorphism** — profiling a JSONL file equals profiling the
  live tracer it was written from.
"""

from __future__ import annotations

import pytest

from repro.api import profile_trace as api_profile_trace
from repro.api import run_bfs
from repro.core.engine import FastBFSEngine
from repro.graph.generators import random_graph, rmat_graph
from repro.obs import (
    CounterRegistry,
    Span,
    Tracer,
    machine_counters,
    write_spans_jsonl,
)
from repro.obs.profile import (
    ProfileError,
    StayAccounting,
    TraceProfile,
    load_spans,
    profile_trace,
)
from tests.helpers import fresh_machine, hub_root, small_fastbfs_config


@pytest.fixture(scope="module")
def traced_run():
    """One trimmed FastBFS run with tracer, counters and report."""
    graph = rmat_graph(scale=10, edge_factor=8, seed=7)
    machine = fresh_machine()
    tracer = Tracer()
    machine.attach_tracer(tracer)
    result = FastBFSEngine(small_fastbfs_config()).run(
        graph, machine, root=hub_root(graph)
    )
    registry = machine_counters(machine, result)
    return result, machine, tracer, registry


@pytest.fixture(scope="module")
def profile(traced_run):
    result, _, tracer, registry = traced_run
    return profile_trace(tracer, registry=registry, report=result.report)


# ----------------------------------------------------------------------
# hand-built golden trace (exact numbers)
# ----------------------------------------------------------------------
def golden_spans():
    """A tiny trace with known timings.

    query [0, 10]:
      iteration 0 [0, 6]: scatter [0, 3], gather [3, 4], shuffle [4, 5.5]
      iteration 1 [6, 9]: scatter [6, 7]
      stay_flush [1, 4]   (2 s under scatter: [1,3] of scatter [0,3])
      stay_cancel [7.5, 8] (mid-run)
    """
    return [
        Span(1, None, "query", 0.0, 10.0,
             attrs={"engine": "fastbfs", "algorithm": "bfs", "graph": "g"}),
        Span(2, 1, "iteration", 0.0, 6.0,
             attrs={"iteration": 0, "frontier": 3, "edges_scanned": 100}),
        Span(3, 2, "scatter", 0.0, 3.0, attrs={"partition": 0}),
        Span(4, 2, "gather", 3.0, 4.0, attrs={"partition": 0}),
        Span(5, 2, "shuffle", 4.0, 5.5, attrs={"iteration": 0}),
        Span(6, 1, "iteration", 6.0, 9.0,
             attrs={"iteration": 1, "frontier": 7, "edges_scanned": 40}),
        Span(7, 6, "scatter", 6.0, 7.0, attrs={"partition": 0}),
        Span(8, 1, "stay_flush", 1.0, 4.0,
             attrs={"partition": 1, "iteration": 0, "records": 10,
                    "bytes": 80}),
        Span(9, 1, "stay_cancel", 7.5, 8.0,
             attrs={"partition": 2, "iteration": 1, "end_of_run": False}),
    ]


class TestGoldenTrace:
    def test_iteration_breakdowns(self):
        prof = TraceProfile(golden_spans())
        (q,) = prof.queries
        it0, it1 = q.iterations
        assert it0.breakdown() == {
            "scatter": 3.0, "gather": 1.0, "shuffle": 1.5, "other": 0.5
        }
        assert it1.breakdown() == {"scatter": 1.0, "other": 2.0}
        assert it0.frontier == 3 and it0.edges_scanned == 100

    def test_stage_totals_sum_to_query_duration(self):
        prof = TraceProfile(golden_spans())
        (q,) = prof.queries
        totals = q.stage_totals()
        assert totals["overhead"] == pytest.approx(1.0)  # 10 - 6 - 3
        assert sum(totals.values()) == pytest.approx(q.duration)

    def test_critical_path_ranks_scatter_first(self):
        (q,) = TraceProfile(golden_spans()).queries
        assert q.critical_path()[0][0] == "scatter"

    def test_stay_overlap_exact(self):
        (q,) = TraceProfile(golden_spans()).queries
        st = q.stay
        assert st.flushes == 1 and st.cancellations == 1
        assert st.end_of_run_discards == 0
        assert st.flush_time == pytest.approx(3.0)
        assert st.hidden_time == pytest.approx(2.0)  # [1,3] under scatter
        assert st.exposed_time == pytest.approx(1.0)
        assert st.hidden_fraction == pytest.approx(2.0 / 3.0)
        assert st.records == 10 and st.bytes == 80

    def test_lane_utilization(self):
        (q,) = TraceProfile(golden_spans()).queries
        util = q.lane_utilization()
        assert util["iteration"] == pytest.approx(0.9)  # 9 of 10 s
        assert util["scatter"] == pytest.approx(0.4)  # 3 + 1 of 10 s
        assert util["stay_flush"] == pytest.approx(0.3)

    def test_attrs_surface(self):
        (q,) = TraceProfile(golden_spans()).queries
        assert (q.engine, q.algorithm, q.graph) == ("fastbfs", "bfs", "g")


# ----------------------------------------------------------------------
# real traced runs
# ----------------------------------------------------------------------
class TestRealRun:
    def test_breakdown_sums_to_query_duration(self, profile):
        for q in profile.queries:
            assert sum(q.stage_totals().values()) == pytest.approx(
                q.duration, rel=1e-9, abs=1e-9
            )
            total_iter = sum(it.duration for it in q.iterations)
            assert q.overhead == pytest.approx(q.duration - total_iter)

    def test_stay_spans_match_engine_counters(self, traced_run, profile):
        result = traced_run[0]
        (q,) = profile.queries
        assert q.stay.flushes == result.extras["stay_swaps"]
        assert q.stay.cancellations == result.extras["stay_cancellations"]
        assert (
            q.stay.end_of_run_discards
            == result.extras["stay_end_of_run_discards"]
        )

    def test_overlap_bounded_by_flush_and_scatter_time(self, profile):
        (q,) = profile.queries
        scatter_total = q.stage_totals().get("scatter", 0.0)
        assert 0.0 <= q.stay.hidden_time <= q.stay.flush_time + 1e-12
        assert q.stay.hidden_time <= scatter_total + 1e-12

    def test_iterations_ordered_and_complete(self, traced_run, profile):
        result = traced_run[0]
        (q,) = profile.queries
        assert [it.iteration for it in q.iterations] == list(
            range(result.num_iterations)
        )

    def test_io_attribution_reconciles_with_report(self, traced_run, profile):
        result = traced_run[0]
        assert profile.reconcile() == []
        devices = profile.io_attribution()
        by_name = {d["device"]: d for d in devices}
        for dr in result.report.devices:
            assert by_name[dr.name]["read"] == float(dr.bytes_read)
            assert by_name[dr.name]["write"] == float(dr.bytes_written)
            got_roles = by_name[dr.name]["by_role"]
            assert {k: float(v) for k, v in dr.bytes_by_role.items()} == got_roles

    def test_report_text_sections(self, profile):
        text = profile.report_text(width=100)
        assert "critical path" in text
        assert "stay stream:" in text
        assert "hidden under scatter" in text
        assert "lane utilization" in text
        assert "I/O attribution" in text
        assert "reconciliation: OK" in text

    def test_registry_rebuilt_from_report_when_missing(self, traced_run):
        result, _, tracer, _ = traced_run
        prof = profile_trace(tracer, report=result.report)
        assert prof.reconcile() == []


class TestNoTrimRun:
    def test_no_trim_shows_zero_stay_lanes(self):
        graph = random_graph(500, 4000, seed=11)
        machine = fresh_machine()
        tracer = Tracer()
        machine.attach_tracer(tracer)
        FastBFSEngine(small_fastbfs_config(trim_enabled=False)).run(
            graph, machine, root=hub_root(graph)
        )
        (q,) = profile_trace(tracer).queries
        assert q.stay == StayAccounting()
        util = q.lane_utilization()
        assert "stay_flush" not in util and "stay_cancel" not in util
        assert "stay stream:" not in profile_trace(tracer).report_text()


# ----------------------------------------------------------------------
# source polymorphism + error paths
# ----------------------------------------------------------------------
class TestSources:
    def test_jsonl_file_equals_live_tracer(self, traced_run, tmp_path):
        _, _, tracer, _ = traced_run
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(tracer, str(path))
        from_file = profile_trace(str(path))
        from_live = profile_trace(tracer)
        assert len(from_file.queries) == len(from_live.queries)
        for a, b in zip(from_file.queries, from_live.queries):
            assert a.stage_totals() == b.stage_totals()
            assert a.stay == b.stay

    def test_machine_source(self, traced_run):
        _, machine, tracer, _ = traced_run
        assert len(load_spans(machine)) == len(tracer.spans)

    def test_machine_without_tracer_raises(self):
        with pytest.raises(ProfileError):
            load_spans(fresh_machine())

    def test_empty_trace_raises(self):
        with pytest.raises(ProfileError):
            TraceProfile([])

    def test_trace_without_query_spans_raises(self):
        with pytest.raises(ProfileError):
            TraceProfile([Span(1, None, "stage", 0.0, 1.0)])

    def test_reconcile_without_report_raises(self, traced_run):
        _, _, tracer, _ = traced_run
        with pytest.raises(ProfileError):
            profile_trace(tracer).reconcile()


class TestApiFrontDoor:
    def test_api_profile_trace_on_run_bfs_export(self, tmp_path):
        graph = random_graph(400, 3000, seed=5)
        path = tmp_path / "t.jsonl"
        result = run_bfs(graph, "fastbfs", trace_path=str(path))
        prof = api_profile_trace(
            str(path), registry=result.metrics, report=result.report
        )
        assert prof.reconcile() == []
        assert len(prof.queries) == 1
        assert prof.queries[0].iterations

    def test_cli_profile_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        graph_path = tmp_path / "g.bin"
        from repro.graph.generators import rmat_graph
        from repro.graph.io import save_graph

        save_graph(rmat_graph(scale=8, edge_factor=8, seed=3),
                   str(graph_path))
        trace_path = tmp_path / "t.jsonl"
        assert main(["run", "--graph", str(graph_path),
                     "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["profile", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "query #0" in out and "critical path" in out

    def test_cli_profile_requires_some_input(self, capsys):
        from repro.cli import main

        assert main(["profile"]) == 2
