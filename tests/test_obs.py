"""Observability subsystem tests (repro.obs).

Four contracts are locked down here:

* the **golden JSONL schema** — every trace line carries exactly
  ``SPAN_SCHEMA`` and round-trips through the parser;
* **span nesting invariants** — children lie inside their parents in
  simulated time, and iteration spans cover their scatter/gather/shuffle
  children;
* **no-op-tracer equivalence** — a traced run is bit-for-bit identical
  (levels, simulated timings, per-device byte totals) to an untraced one;
* **Prometheus round-trip** — ``parse_prometheus(to_prometheus(reg))``
  reproduces the registry exactly, including escaped labels and floats.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import run_bfs, run_queries
from repro.core.engine import FastBFSEngine
from repro.engines.xstream import XStreamEngine
from repro.graph.generators import random_graph
from repro.obs import (
    NULL_TRACER,
    SPAN_SCHEMA,
    CounterRegistry,
    Histogram,
    NullTracer,
    Span,
    TraceError,
    Tracer,
    machine_counters,
    parse_prometheus,
    parse_spans_jsonl,
    read_spans_jsonl,
    spans_to_jsonl,
    to_prometheus,
    write_prometheus,
    write_spans_jsonl,
)
from repro.sim.clock import SimClock
from tests.helpers import fresh_machine, hub_root, small_fastbfs_config


def traced_run(graph, config=None, num_disks=2, engine_cls=FastBFSEngine):
    """One traced out-of-core run; returns (result, machine, tracer)."""
    machine = fresh_machine(num_disks=num_disks)
    tracer = Tracer()
    machine.attach_tracer(tracer)
    cfg = config if config is not None else small_fastbfs_config()
    result = engine_cls(cfg).run(graph, machine, root=hub_root(graph))
    return result, machine, tracer


@pytest.fixture(scope="module")
def traced():
    graph = random_graph(600, 5000, seed=21)
    return traced_run(graph)


# ----------------------------------------------------------------------
# Tracer unit behaviour
# ----------------------------------------------------------------------
class TestTracer:
    def make(self):
        clock = SimClock()
        return clock, Tracer().bind_clock(clock)

    def test_nested_spans_record_parent_and_times(self):
        clock, tracer = self.make()
        with tracer.span("outer") as outer:
            clock.charge_compute(1.0)
            with tracer.span("inner", k=1) as inner:
                clock.charge_compute(0.5)
        assert outer.span_id == 1 and inner.parent_id == 1
        assert outer.start == 0.0 and inner.start == 1.0
        assert inner.end == 1.5 and outer.end == 1.5
        assert inner.attrs == {"k": 1}
        assert tracer.depth == 0

    def test_unbound_tracer_raises(self):
        with pytest.raises(TraceError):
            Tracer().span("x")

    def test_out_of_order_close_raises(self):
        _, tracer = self.make()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__(), inner.__enter__()
        with pytest.raises(TraceError):
            outer.__exit__(None, None, None)

    def test_emit_rejects_negative_duration(self):
        _, tracer = self.make()
        with pytest.raises(TraceError):
            tracer.emit("bad", start=2.0, end=1.0)

    def test_emit_records_completed_span_under_explicit_parent(self):
        clock, tracer = self.make()
        with tracer.span("query"):
            anchor = tracer.current_id
            clock.charge_compute(3.0)
        sp = tracer.emit("stay_flush", start=0.5, end=2.5, parent_id=anchor, p=3)
        assert sp.parent_id == anchor and sp.finished
        assert tracer.children_of(anchor) == [sp]

    def test_null_tracer_is_a_shared_noop(self):
        null = NullTracer()
        assert not null.enabled and not NULL_TRACER.enabled
        ctx = null.span("anything", k=1)
        with ctx as sp:
            assert sp.set(a=2) is sp
        assert null.emit("x", 0.0, 1.0) is None
        assert null.current_id is None
        assert len(null) == 0
        assert null.span("a") is NULL_TRACER.span("b")  # no per-span alloc


# ----------------------------------------------------------------------
# Golden JSONL schema
# ----------------------------------------------------------------------
class TestJsonlGoldenSchema:
    def test_every_line_carries_exactly_the_schema(self, traced, tmp_path):
        _, _, tracer = traced
        path = tmp_path / "trace.jsonl"
        count = write_spans_jsonl(tracer, str(path))
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(tracer.spans) > 0
        for line in lines:
            obj = json.loads(line)
            assert set(obj) == set(SPAN_SCHEMA)
            assert isinstance(obj["span_id"], int)
            assert obj["parent_id"] is None or isinstance(obj["parent_id"], int)
            assert isinstance(obj["name"], str)
            assert isinstance(obj["attrs"], dict)
            assert float(obj["end"]) >= float(obj["start"]) >= 0.0

    def test_round_trip_preserves_every_span(self, traced, tmp_path):
        _, _, tracer = traced
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(tracer, str(path))
        back = read_spans_jsonl(str(path))
        assert [s.to_dict() for s in back] == [s.to_dict() for s in tracer.spans]

    def test_parse_rejects_missing_keys(self):
        line = json.dumps({"span_id": 1, "name": "x"})
        with pytest.raises(Exception):
            parse_spans_jsonl(line + "\n")

    def test_spans_to_jsonl_accepts_plain_span_lists(self):
        spans = [Span(span_id=1, parent_id=None, name="a", start=0.0, end=1.0)]
        assert parse_spans_jsonl(spans_to_jsonl(spans))[0].to_dict() == spans[0].to_dict()


# ----------------------------------------------------------------------
# Span nesting invariants
# ----------------------------------------------------------------------
class TestSpanNesting:
    def test_all_spans_finished(self, traced):
        _, _, tracer = traced
        assert all(s.finished for s in tracer.spans)

    def test_children_lie_inside_their_parents(self, traced):
        _, _, tracer = traced
        by_id = {s.span_id: s for s in tracer.spans}
        for s in tracer.spans:
            if s.parent_id is None:
                continue
            parent = by_id[s.parent_id]
            assert parent.span_id < s.span_id
            assert parent.start <= s.start, (parent.name, s.name)
            assert s.end <= parent.end, (parent.name, s.name)

    def test_expected_taxonomy_present(self, traced):
        _, _, tracer = traced
        names = {s.name for s in tracer.spans}
        assert {"stage", "query", "iteration", "scatter", "gather",
                "shuffle"} <= names

    def test_iteration_spans_cover_scatter_and_gather(self, traced):
        _, _, tracer = traced
        by_id = {s.span_id: s for s in tracer.spans}
        phase_spans = [s for s in tracer.spans
                       if s.name in ("scatter", "gather", "shuffle")]
        assert phase_spans
        for s in phase_spans:
            parent = by_id[s.parent_id]
            assert parent.name == "iteration"
            assert parent.start <= s.start and s.end <= parent.end

    def test_iterations_nest_in_the_query_span(self, traced):
        _, _, tracer = traced
        (query,) = tracer.find("query")
        for it in tracer.find("iteration"):
            assert it.parent_id == query.span_id
        assert query.attrs["iterations"] == len(tracer.find("iteration"))

    def test_stay_spans_anchor_to_the_query_and_match_stats(self):
        graph = random_graph(500, 4000, seed=5)
        result, _, tracer = traced_run(
            graph, small_fastbfs_config(trim_start_iteration=0,
                                        cancellation_grace=0.002),
        )
        (query,) = tracer.find("query")
        flushes = tracer.find("stay_flush")
        cancels = tracer.find("stay_cancel")
        assert len(flushes) == int(result.extras["stay_swaps"])
        assert len(cancels) == (
            int(result.extras["stay_cancellations"])
            + int(result.extras["stay_end_of_run_discards"])
        )
        for s in flushes + cancels:
            assert s.parent_id == query.span_id
            assert query.start <= s.start and s.end <= query.end

    def test_batch_records_one_query_span_per_root(self):
        graph = random_graph(300, 2000, seed=8)
        machine = fresh_machine(num_disks=1)
        tracer = Tracer()
        machine.attach_tracer(tracer)
        FastBFSEngine(small_fastbfs_config()).run_many(
            graph, machine, roots=[0, 7, 19]
        )
        assert len(tracer.find("query")) == 3
        assert len(tracer.find("stage")) == 1


class TestBatchedSpanNesting:
    """Batched mode: one query span per batch with query_slot markers.

    The nesting invariants are *extended* for MS-BFS, not relaxed: every
    iteration span still nests in a query span, and each batch's span
    additionally carries ``batch``/``batch_size`` attributes plus one
    zero-width ``query_slot`` child per packed query.
    """

    @pytest.fixture(scope="class")
    def batched(self):
        graph = random_graph(300, 2000, seed=8)
        machine = fresh_machine(num_disks=1)
        tracer = Tracer()
        machine.attach_tracer(tracer)
        batch = FastBFSEngine(small_fastbfs_config()).run_many(
            graph, machine, roots=[0, 7, 19], mode="batched"
        )
        assert batch.mode == "batched"
        return batch, machine, tracer

    def test_one_query_span_per_batch_with_batch_attrs(self, batched):
        batch, _, tracer = batched
        queries = tracer.find("query")
        assert len(queries) == 1  # 3 roots pack into one 64-wide batch
        (span,) = queries
        assert span.attrs["batch"] == 0
        assert span.attrs["batch_size"] == 3
        assert span.attrs["iterations"] == len(tracer.find("iteration"))

    def test_iterations_nest_in_the_batch_query_span(self, batched):
        _, _, tracer = batched
        (query,) = tracer.find("query")
        iterations = tracer.find("iteration")
        assert iterations
        for it in iterations:
            assert it.parent_id == query.span_id
            assert query.start <= it.start and it.end <= query.end

    def test_one_query_slot_marker_per_packed_query(self, batched):
        batch, _, tracer = batched
        (query,) = tracer.find("query")
        slots = tracer.find("query_slot")
        assert len(slots) == 3
        for q, slot in enumerate(sorted(slots, key=lambda s: s.attrs["query_slot"])):
            assert slot.parent_id == query.span_id
            assert slot.start == slot.end  # zero-width marker
            assert query.start <= slot.start <= query.end
            assert slot.attrs["batch"] == 0
            assert slot.attrs["query_slot"] == q
            assert slot.attrs["iterations"] == batch.queries[q].num_iterations

    def test_children_lie_inside_their_parents(self, batched):
        _, _, tracer = batched
        by_id = {s.span_id: s for s in tracer.spans}
        for s in tracer.spans:
            if s.parent_id is None:
                continue
            parent = by_id[s.parent_id]
            assert parent.start <= s.start and s.end <= parent.end

    def test_counters_reconcile_with_the_report_in_batched_mode(self, batched):
        batch, machine, _ = batched
        registry = CounterRegistry.from_machine(machine)
        errors = registry.reconcile(machine.report())
        assert errors == []
        # Every query of the batch shares the batch's delta report, and a
        # report-derived registry reconciles with it bit-for-bit.
        for q in batch.queries:
            assert CounterRegistry.from_report(q.report).reconcile(q.report) == []

    def test_batched_tracing_is_timing_neutral(self):
        graph = random_graph(300, 2000, seed=8)

        plain_machine = fresh_machine(num_disks=1)
        plain = FastBFSEngine(small_fastbfs_config()).run_many(
            graph, plain_machine, roots=[0, 7, 19], mode="batched"
        )
        traced_machine = fresh_machine(num_disks=1)
        traced_machine.attach_tracer(Tracer())
        traced = FastBFSEngine(small_fastbfs_config()).run_many(
            graph, traced_machine, roots=[0, 7, 19], mode="batched"
        )
        assert plain.total_time == traced.total_time
        for qp, qt in zip(plain.queries, traced.queries):
            assert np.array_equal(qp.levels, qt.levels)
            assert qp.report.execution_time == qt.report.execution_time


# ----------------------------------------------------------------------
# No-op-tracer equivalence (tracing is free in simulated time)
# ----------------------------------------------------------------------
class TestNoopEquivalence:
    @pytest.mark.parametrize("engine_cls", [FastBFSEngine, XStreamEngine])
    def test_traced_equals_untraced_bit_for_bit(self, engine_cls):
        graph = random_graph(700, 6000, seed=33)
        cfg = (small_fastbfs_config() if engine_cls is FastBFSEngine
               else small_fastbfs_config())
        root = hub_root(graph)

        plain_machine = fresh_machine(num_disks=2)
        plain = engine_cls(cfg).run(graph, plain_machine, root=root)

        traced_machine = fresh_machine(num_disks=2)
        tracer = Tracer()
        traced_machine.attach_tracer(tracer)
        traced = engine_cls(cfg).run(graph, traced_machine, root=root)

        assert len(tracer.spans) > 0
        assert np.array_equal(plain.levels, traced.levels)
        assert plain.report.execution_time == traced.report.execution_time
        assert plain.report.compute_time == traced.report.compute_time
        assert plain.report.iowait_time == traced.report.iowait_time
        for d_plain, d_traced in zip(plain.report.devices,
                                     traced.report.devices):
            assert d_plain.bytes_read == d_traced.bytes_read
            assert d_plain.bytes_written == d_traced.bytes_written
            assert d_plain.seek_count == d_traced.seek_count
            assert d_plain.bytes_by_role == d_traced.bytes_by_role

    def test_untraced_machine_defaults_to_the_shared_null_tracer(self):
        machine = fresh_machine()
        assert machine.tracer is NULL_TRACER


# ----------------------------------------------------------------------
# Prometheus snapshot round-trip
# ----------------------------------------------------------------------
class TestPrometheusRoundTrip:
    def test_real_run_round_trips_exactly(self, traced, tmp_path):
        result, machine, _ = traced
        registry = machine_counters(machine, result)
        assert len(registry) > 0
        assert parse_prometheus(to_prometheus(registry)) == registry

    def test_write_read_file(self, traced, tmp_path):
        _, machine, _ = traced
        registry = machine_counters(machine)
        path = tmp_path / "metrics.prom"
        assert write_prometheus(registry, str(path)) == len(registry)
        assert parse_prometheus(path.read_text()) == registry

    def test_labels_with_escapes_round_trip(self):
        reg = CounterRegistry()
        reg.inc("weird_total", 1.5, path='a"b\\c', note="line\nbreak")
        reg.set("plain_gauge", 7.0)
        assert parse_prometheus(to_prometheus(reg)) == reg

    def test_awkward_floats_round_trip(self):
        reg = CounterRegistry()
        reg.set("tiny", 0.1 + 0.2)                 # 0.30000000000000004
        reg.set("huge_total", 2.0**53 + 2.0)
        reg.set("negative", -3.75)
        assert parse_prometheus(to_prometheus(reg)) == reg

    def test_type_headers(self):
        reg = CounterRegistry()
        reg.inc("x_total", 2, device="d0")
        reg.set("y_resident", 4.0)
        text = to_prometheus(reg)
        assert "# TYPE x_total counter" in text
        assert "# TYPE y_resident gauge" in text
        assert 'x_total{device="d0"} 2' in text  # integral values print as ints


# ----------------------------------------------------------------------
# Histograms (span-duration distributions) and their Prometheus form
# ----------------------------------------------------------------------
class TestHistograms:
    def test_observe_uses_le_bucketing(self):
        h = Histogram((1.0, 10.0))
        for v in (0.5, 1.0, 2.0, 100.0):
            h.observe(v)
        # le semantics: 1.0 lands in the first bucket, 100.0 overflows.
        assert h.counts == [2.0, 1.0, 1.0]
        assert h.count == 4.0 and h.sum == 103.5
        assert h.cumulative() == [(1.0, 2.0), (10.0, 3.0), (float("inf"), 4.0)]

    def test_bucket_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_registry_observe_fixes_buckets(self):
        reg = CounterRegistry()
        reg.observe("h", 0.5, buckets=(1.0, 2.0), stage="scatter")
        with pytest.raises(ValueError):
            reg.observe("h", 0.5, buckets=(1.0, 3.0), stage="scatter")
        assert reg.histogram("h", stage="scatter").count == 1.0
        assert len(reg) == 1

    def test_ingest_spans_builds_per_stage_series(self, traced):
        _, _, tracer = traced
        reg = CounterRegistry().ingest_spans(tracer)
        names = {sp.name for sp in tracer.spans}
        for name in names:
            hist = reg.histogram("span_duration_seconds", stage=name)
            assert hist is not None
            assert hist.count == sum(
                1 for sp in tracer.spans if sp.name == name
            )
        total = sum(h.count for _, _, h in reg.histograms())
        assert total == len(tracer.spans)

    def test_prometheus_round_trips_histograms_exactly(self, traced):
        _, _, tracer = traced
        reg = CounterRegistry().ingest_spans(tracer)
        reg.inc("device_bytes_total", 42.0, device="hdd0", kind="read",
                role="edges")
        assert parse_prometheus(to_prometheus(reg)) == reg

    def test_prometheus_histogram_exposition_format(self):
        reg = CounterRegistry()
        reg.observe("lat_seconds", 0.5, buckets=(1.0, 10.0), stage="scatter")
        reg.observe("lat_seconds", 100.0, buckets=(1.0, 10.0), stage="scatter")
        text = to_prometheus(reg)
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="1",stage="scatter"} 1' in text
        assert 'lat_seconds_bucket{le="10",stage="scatter"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf",stage="scatter"} 2' in text
        assert 'lat_seconds_sum{stage="scatter"} 100.5' in text
        assert 'lat_seconds_count{stage="scatter"} 2' in text

    def test_quantile_summary_lines_are_emitted_and_parse_clean(self):
        reg = CounterRegistry()
        for v in (0.5, 0.5, 0.5, 100.0):
            reg.observe("lat_seconds", v, buckets=(1.0, 10.0), stage="scatter")
        text = to_prometheus(reg)
        # Informational p50/p95/p99 lines ride along with each histogram…
        assert 'lat_seconds{quantile="0.5",stage="scatter"}' in text
        assert 'lat_seconds{quantile="0.95",stage="scatter"}' in text
        assert 'lat_seconds{quantile="0.99",stage="scatter"}' in text
        # …and the parser skips them, so the round-trip stays exact.
        assert parse_prometheus(text) == reg

    def test_parse_rejects_bucket_without_le(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{stage="x"} 1\n'
        )
        with pytest.raises(Exception):
            parse_prometheus(text)

    def test_run_bfs_metrics_include_span_histograms(self, tmp_path):
        graph = random_graph(250, 1500, seed=9)
        result = run_bfs(
            graph, "fastbfs",
            trace_path=str(tmp_path / "t.jsonl"),
            metrics_path=str(tmp_path / "m.prom"),
        )
        hist = result.metrics.histogram("span_duration_seconds", stage="query")
        assert hist is not None and hist.count >= 1
        back = parse_prometheus((tmp_path / "m.prom").read_text())
        assert back == result.metrics


# ----------------------------------------------------------------------
# Front-door wiring (api.run_bfs / run_queries)
# ----------------------------------------------------------------------
class TestApiSurface:
    def test_run_bfs_exports_and_attaches(self, tmp_path):
        graph = random_graph(300, 2000, seed=2)
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.prom"
        result = run_bfs(graph, "fastbfs", trace_path=str(trace),
                         metrics_path=str(metrics))
        assert result.metrics is not None
        assert result.metrics.reconcile(result.report) == []
        assert len(read_spans_jsonl(str(trace))) > 0
        assert parse_prometheus(metrics.read_text()) == result.metrics

    def test_run_queries_attaches_per_query_registries(self, tmp_path):
        graph = random_graph(300, 2400, seed=4)
        batch = run_queries(graph, roots=[1, 5], engine="fastbfs",
                            trace_path=str(tmp_path / "b.jsonl"))
        assert batch.metrics is not None
        for q in batch.queries:
            assert q.metrics is not None
            assert q.metrics.reconcile(q.report) == []

    def test_run_queries_batched_mode_exports_and_reconciles(self, tmp_path):
        graph = random_graph(300, 2400, seed=4)
        trace = tmp_path / "batched.jsonl"
        batch = run_queries(graph, roots=[1, 5], engine="fastbfs",
                            mode="batched", trace_path=str(trace))
        assert batch.mode == "batched"
        assert batch.metrics is not None
        for q in batch.queries:
            assert q.metrics is not None
            assert q.metrics.reconcile(q.report) == []
        names = {s.name for s in read_spans_jsonl(str(trace))}
        assert {"stage", "query", "query_slot", "iteration"} <= names

    def test_no_export_requested_leaves_metrics_unset(self):
        graph = random_graph(200, 1200, seed=6)
        machine = fresh_machine()
        result = FastBFSEngine(small_fastbfs_config()).run(
            graph, machine, root=0
        )
        assert result.metrics is None
