"""Staged-graph artifact + query-session architecture tests.

The contract under test: ``run()`` is literally ``stage()`` plus one
monolithic session (bit-for-bit identical to the historical pipeline),
and ``run_many()`` stages once, rewinding the machine between query
sessions via ``Machine.checkpoint()/restore()`` so every query is
deterministic and pays zero staging I/O.
"""

import numpy as np
import pytest

from tests.helpers import (
    fresh_machine,
    hub_root,
    small_engine_config,
    small_fastbfs_config,
)

from repro.algorithms.streaming import BFSAlgorithm
from repro.core.engine import FastBFSEngine
from repro.engines.session import QuerySession, StagedGraph
from repro.engines.xstream import XStreamEngine
from repro.errors import EngineError, StorageError
from repro.graph.generators import rmat_graph
from repro.utils.units import MB


def graph(scale=8, seed=3):
    return rmat_graph(scale=scale, edge_factor=6, seed=seed)


def make_engine(name):
    if name == "fastbfs":
        return FastBFSEngine(small_fastbfs_config())
    return XStreamEngine(small_engine_config())


ENGINES = ("fastbfs", "x-stream")


# ----------------------------------------------------------------------
# Machine.checkpoint()/restore()
# ----------------------------------------------------------------------
class TestMachineCheckpoint:
    def test_restore_rewinds_clock_and_vfs(self):
        m = fresh_machine()
        m.vfs.create("edges:p0", m.disks[0])
        m.clock.charge_compute(1.0, "scatter")
        cp = m.checkpoint()
        t0 = m.clock.now
        m.vfs.create("stay:p0:i1", m.disks[0])
        m.clock.charge_compute(2.0, "gather")
        m.restore(cp)
        assert m.clock.now == t0
        assert m.vfs.exists("edges:p0")
        assert not m.vfs.exists("stay:p0:i1")

    def test_restore_resets_report(self):
        m = fresh_machine()
        cp = m.checkpoint()
        before = m.report()
        f = m.vfs.create("edges:p0", m.disks[0])
        req = m.disks[0].submit(m.clock.now, "write", 4096, f.file_id, 0)
        m.clock.wait_until(req.end)
        m.restore(cp)
        after = m.report()
        assert after.bytes_total == before.bytes_total
        assert after.execution_time == before.execution_time

    def test_checkpoint_is_reusable(self):
        m = fresh_machine()
        cp = m.checkpoint()
        for _ in range(3):
            m.vfs.create("stay:p0:i1", m.disks[0])
            m.restore(cp)
        assert not m.vfs.exists("stay:p0:i1")


# ----------------------------------------------------------------------
# stage() + session == run()
# ----------------------------------------------------------------------
class TestStagedEqualsMonolithic:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_levels_and_iterations_match(self, engine_name):
        g = graph()
        root = hub_root(g)
        mono = make_engine(engine_name).run(g, fresh_machine(), root=root)

        eng = make_engine(engine_name)
        m = fresh_machine()
        staged = eng.stage(g, m)
        split = eng.session(staged).run(root=root)

        assert np.array_equal(mono.levels, split.levels)
        assert np.array_equal(mono.parents, split.parents)
        assert mono.num_iterations == split.num_iterations
        assert mono.edges_scanned == split.edges_scanned

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_staging_plus_query_io_matches_monolithic(self, engine_name):
        g = graph()
        root = hub_root(g)
        mono = make_engine(engine_name).run(g, fresh_machine(), root=root)

        eng = make_engine(engine_name)
        m = fresh_machine()
        staged = eng.stage(g, m)
        split = eng.session(staged).run(root=root)

        stage_r, query_r = staged.staging_report, split.report
        assert stage_r.bytes_read + query_r.bytes_read == mono.report.bytes_read
        assert (
            stage_r.bytes_written + query_r.bytes_written
            == mono.report.bytes_written
        )
        assert stage_r.execution_time + query_r.execution_time == pytest.approx(
            mono.execution_time
        )

    def test_staged_artifact_shape(self):
        g = graph()
        eng = make_engine("fastbfs")
        m = fresh_machine()
        staged = eng.stage(g, m)
        assert isinstance(staged, StagedGraph)
        assert staged.num_partitions == len(staged.edge_files)
        # Staged edge files are sealed: appends must be rejected.
        with pytest.raises(StorageError, match="sealed"):
            staged.edge_files[0].append_records(np.zeros(1, dtype=np.uint8))
        protected = staged.protected_names()
        assert staged.input_file.name in protected
        for f in staged.edge_files + staged.vertex_files:
            assert f.name in protected
        assert staged.compatible_with(BFSAlgorithm())


# ----------------------------------------------------------------------
# Determinism: two sessions on one StagedGraph
# ----------------------------------------------------------------------
class TestSessionDeterminism:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_repeated_query_is_identical(self, engine_name):
        g = graph()
        root = hub_root(g)
        eng = make_engine(engine_name)
        m = fresh_machine()
        staged = eng.stage(g, m)
        cp = m.checkpoint()

        first = eng.session(staged).run(root=root)
        m.restore(cp)
        second = eng.session(staged).run(root=root)

        assert np.array_equal(first.levels, second.levels)
        assert first.execution_time == second.execution_time
        assert first.report.bytes_read == second.report.bytes_read
        assert first.report.bytes_written == second.report.bytes_written

    def test_query_leaves_artifact_intact(self):
        g = graph()
        eng = make_engine("fastbfs")
        m = fresh_machine()
        staged = eng.stage(g, m)
        cp = m.checkpoint()
        eng.session(staged).run(root=hub_root(g))
        # Protected sessions must not displace or delete staged files,
        # even though FastBFS trims (swaps stay files) during the query.
        for f in [staged.input_file] + staged.edge_files + staged.vertex_files:
            assert m.vfs.exists(f.name)
        m.restore(cp)
        third = eng.session(staged).run(root=hub_root(g))
        assert third.num_iterations > 0


# ----------------------------------------------------------------------
# Session misuse
# ----------------------------------------------------------------------
class TestSessionContract:
    def test_session_is_single_use(self):
        g = graph()
        eng = make_engine("fastbfs")
        staged = eng.stage(g, fresh_machine())
        session = eng.session(staged)
        session.run(root=0)
        with pytest.raises(EngineError, match="single-use"):
            session.run(root=0)

    def test_incompatible_record_bytes_rejected(self):
        class WideBFS(BFSAlgorithm):
            disk_record_bytes = 16

        g = graph()
        eng = make_engine("fastbfs")
        staged = eng.stage(g, fresh_machine())
        with pytest.raises(EngineError, match="re-stage"):
            QuerySession(eng, staged, algorithm=WideBFS())

    def test_run_rejects_used_machine(self):
        g = graph()
        m = fresh_machine()
        make_engine("fastbfs").run(g, m, root=0)
        with pytest.raises(EngineError, match="fresh"):
            make_engine("fastbfs").run(g, m, root=0)

    def test_run_many_rejects_empty_roots(self):
        with pytest.raises(EngineError, match="at least one"):
            make_engine("fastbfs").run_many(graph(), fresh_machine(), roots=[])


# ----------------------------------------------------------------------
# run_many batches
# ----------------------------------------------------------------------
class TestRunMany:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_queries_match_fresh_monolithic_runs(self, engine_name):
        g = graph()
        roots = [0, hub_root(g)]
        batch = make_engine(engine_name).run_many(g, fresh_machine(), roots=roots)
        assert batch.num_queries == len(roots)
        for root, q in zip(roots, batch.queries):
            mono = make_engine(engine_name).run(g, fresh_machine(), root=root)
            assert np.array_equal(mono.levels, q.levels)
            # The rewound query replays exactly the monolithic post-staging
            # phase, so staging + query time reassembles the monolithic time.
            assert batch.staging_time + q.execution_time == pytest.approx(
                mono.execution_time
            )

    def test_staging_paid_once(self):
        g = graph()
        batch = make_engine("fastbfs").run_many(
            g, fresh_machine(), roots=[0, 1, 2, 3]
        )
        single = make_engine("fastbfs")
        staged = single.stage(g, fresh_machine())
        assert batch.staging_report.bytes_total == (
            staged.staging_report.bytes_total
        )
        assert batch.total_time == pytest.approx(
            batch.staging_time + sum(batch.query_times)
        )
        assert batch.amortized_time == pytest.approx(
            batch.total_time / batch.num_queries
        )

    def test_multi_source_entry(self):
        g = graph()
        batch = make_engine("fastbfs").run_many(
            g, fresh_machine(), roots=[0, [0, 1]]
        )
        multi = batch.queries[1]
        assert multi.levels[0] == 0 and multi.levels[1] == 0
        mono = make_engine("fastbfs").run(g, fresh_machine(), roots=[0, 1])
        assert np.array_equal(mono.levels, multi.levels)

    def test_batch_summary_renders(self):
        g = graph(scale=7)
        batch = make_engine("fastbfs").run_many(g, fresh_machine(), roots=[0, 1])
        text = batch.summary()
        assert "staging" in text
        assert "query 0" in text and "query 1" in text

    def test_in_memory_mode_batches_too(self):
        g = graph(scale=7)
        eng = FastBFSEngine(small_fastbfs_config(allow_in_memory=True))
        m = fresh_machine(memory=64 * MB)
        batch = eng.run_many(g, m, roots=[0, 1])
        assert batch.num_queries == 2
        mono = FastBFSEngine(small_fastbfs_config(allow_in_memory=True)).run(
            g, fresh_machine(memory=64 * MB), root=1
        )
        assert np.array_equal(mono.levels, batch.queries[1].levels)
