"""Dual-clock host profiler: the neutrality contract and the clock API.

The load-bearing guarantee of :mod:`repro.obs.hostprof`: binding a host
clock to a tracer changes *nothing* about the simulated world.  Locked
down here:

* **clock API** — ``HostClock`` reads the monotonic clock;
  ``ManualHostClock`` is a deterministic stand-in for tests (advance
  only, never backwards);
* **span stamping** — bound tracers stamp ``host_start``/``host_end``
  on every ``span()``; unbound tracers never do; retroactive ``emit()``
  markers stay unstamped; stamps survive the JSONL round-trip without
  perturbing the exact-schema contract for single-clock traces;
* **neutrality** — the same run with and without a bound host clock
  produces bit-identical levels/parents, an identical ``IOReport``,
  identical simulated span timings, and a counter registry that still
  reconciles exactly;
* **attribution** — ``profile_trace(...).host()`` stage host seconds
  sum exactly to the query spans' host durations, and the ``--host``
  report section renders them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import profile_trace, run_bfs
from repro.core.engine import FastBFSEngine
from repro.graph.generators import rmat_graph
from repro.obs.exporters import parse_spans_jsonl, spans_to_jsonl
from repro.obs.hostprof import (
    HOST_CLOCK,
    HostClock,
    ManualHostClock,
    host_timed_spans,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from tests.helpers import fresh_machine, hub_root, small_fastbfs_config


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=10, edge_factor=8, seed=7)


def run_pair(graph, host: bool):
    """One FastBFS run, host-clocked or not, on a fresh machine."""
    machine = fresh_machine()
    tracer = Tracer()
    if host:
        tracer.bind_host_clock(HOST_CLOCK)
    machine.attach_tracer(tracer)
    result = FastBFSEngine(small_fastbfs_config()).run(
        graph, machine, root=hub_root(graph)
    )
    return result, machine, tracer


# ----------------------------------------------------------------------
# the clocks
# ----------------------------------------------------------------------
class TestClocks:
    def test_host_clock_is_monotonic(self):
        clock = HostClock()
        a, b = clock.now(), clock.now()
        assert isinstance(a, float)
        assert b >= a
        assert HOST_CLOCK.now() >= 0.0

    def test_manual_clock_advances_deterministically(self):
        clock = ManualHostClock(start=10.0)
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_manual_clock_rejects_going_backwards(self):
        clock = ManualHostClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_manual_clock_is_a_host_clock(self):
        # Anything taking a HostClock handle accepts the manual one.
        assert isinstance(ManualHostClock(), HostClock)


# ----------------------------------------------------------------------
# span stamping
# ----------------------------------------------------------------------
class TestStamping:
    def test_bound_tracer_stamps_every_span(self):
        clock = ManualHostClock()
        tracer = Tracer().bind_clock(_SimStub()).bind_host_clock(clock)
        assert tracer.host_enabled
        with tracer.span("query"):
            clock.advance(1.0)
            with tracer.span("iteration"):
                clock.advance(0.5)
        (query, iteration) = tracer.spans
        assert query.host_timed and iteration.host_timed
        assert query.host_duration == pytest.approx(1.5)
        assert iteration.host_duration == pytest.approx(0.5)

    def test_unbound_tracer_never_stamps(self):
        tracer = Tracer().bind_clock(_SimStub())
        assert not tracer.host_enabled
        with tracer.span("query"):
            pass
        (span,) = tracer.spans
        assert not span.host_timed
        assert span.host_duration == 0.0
        assert "host_start" not in span.to_dict()

    def test_emit_markers_stay_unstamped(self):
        # emit() records retroactive simulated intervals (flush spans);
        # a host stamp taken at emit time would be a lie.
        tracer = Tracer().bind_clock(_SimStub()).bind_host_clock(ManualHostClock())
        tracer.emit("stay_flush", 1.0, 2.0)
        (span,) = tracer.spans
        assert not span.host_timed

    def test_null_tracer_accepts_binding(self):
        assert NULL_TRACER.bind_host_clock(HOST_CLOCK) is NULL_TRACER

    def test_host_stamps_round_trip_through_jsonl(self):
        clock = ManualHostClock()
        tracer = Tracer().bind_clock(_SimStub()).bind_host_clock(clock)
        with tracer.span("query"):
            clock.advance(3.0)
        (back,) = parse_spans_jsonl(spans_to_jsonl(tracer))
        assert back.host_timed
        assert back.host_duration == pytest.approx(3.0)

    def test_host_timed_spans_filter(self):
        clock = ManualHostClock()
        tracer = Tracer().bind_clock(_SimStub()).bind_host_clock(clock)
        with tracer.span("query"):
            pass
        tracer.emit("stay_flush", 0.0, 1.0)
        timed = list(host_timed_spans(tracer.spans))
        assert [sp.name for sp in timed] == ["query"]


class _SimStub:
    """Minimal simulated-clock stand-in for direct tracer tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start


# ----------------------------------------------------------------------
# neutrality: host clock on vs off is invisible to the simulation
# ----------------------------------------------------------------------
class TestNeutrality:
    @pytest.fixture(scope="class")
    def pair(self, graph):
        plain = run_pair(graph, host=False)
        hosted = run_pair(graph, host=True)
        return plain, hosted

    def test_levels_and_parents_bit_identical(self, pair):
        (plain, _, _), (hosted, _, _) = pair
        assert np.array_equal(plain.levels, hosted.levels)
        assert np.array_equal(plain.parents, hosted.parents)

    def test_io_report_identical(self, pair):
        (plain, _, _), (hosted, _, _) = pair
        a, b = plain.report, hosted.report
        assert a.execution_time == b.execution_time
        assert a.bytes_read == b.bytes_read
        assert a.bytes_written == b.bytes_written
        assert a.bytes_total == b.bytes_total
        assert a.iowait_ratio == b.iowait_ratio

    def test_simulated_span_timeline_identical(self, pair):
        (_, _, plain_tracer), (_, _, hosted_tracer) = pair
        plain_view = [
            (sp.name, sp.start, sp.end, sorted(sp.attrs.items()))
            for sp in plain_tracer.spans
        ]
        hosted_view = [
            (sp.name, sp.start, sp.end, sorted(sp.attrs.items()))
            for sp in hosted_tracer.spans
        ]
        assert plain_view == hosted_view

    def test_counters_still_reconcile(self, pair):
        from repro.obs.counters import machine_counters

        (_, _, _), (hosted, machine, _) = pair
        registry = machine_counters(machine, hosted)
        assert registry.reconcile(hosted.report) == []

    def test_api_front_door_is_neutral(self, graph):
        base = run_bfs(graph, "fastbfs", memory="2MB")
        hosted = run_bfs(graph, "fastbfs", memory="2MB", host_profile=True)
        assert np.array_equal(base.levels, hosted.levels)
        assert base.execution_time == hosted.execution_time


# ----------------------------------------------------------------------
# attribution: where did the host seconds go?
# ----------------------------------------------------------------------
class TestAttribution:
    @pytest.fixture(scope="class")
    def hosted_profile(self, graph):
        _, _, tracer = run_pair(graph, host=True)
        return profile_trace(tracer)

    def test_host_breakdown_shape(self, hosted_profile):
        data = hosted_profile.host()
        assert data["host_seconds"] > 0.0
        assert data["sim_seconds"] > 0.0
        assert data["host_seconds_per_sim_second"] == pytest.approx(
            data["host_seconds"] / data["sim_seconds"]
        )
        assert data["edges_scanned"] > 0
        assert data["edges_scanned_per_host_second"] > 0.0
        assert "scatter" in data["stages"]

    def test_stage_host_seconds_sum_exactly(self, hosted_profile):
        # By construction: other = iteration - stages, overhead = query -
        # iterations, so the stage table partitions the query host time.
        data = hosted_profile.host()
        total = sum(e["host_seconds"] for e in data["stages"].values())
        assert total == pytest.approx(data["host_seconds"], rel=1e-9)

    def test_query_host_stage_totals_partition_host_duration(
        self, hosted_profile
    ):
        for q in hosted_profile.queries:
            totals = q.host_stage_totals()
            assert sum(totals.values()) == pytest.approx(
                q.host_duration, rel=1e-9
            )

    def test_single_clock_trace_has_empty_host_view(self, graph):
        _, _, tracer = run_pair(graph, host=False)
        prof = profile_trace(tracer)
        assert prof.host() == {}
        assert not prof.host_timed
        assert "no host stamps" in prof.report_text(host=True)

    def test_report_text_host_section(self, hosted_profile):
        text = hosted_profile.report_text(host=True)
        assert "host profile (dual-clock):" in text
        assert "host s/sim s" in text
        # Host section is opt-in: the default report stays unchanged.
        assert "host profile" not in hosted_profile.report_text()
