"""Tests for the executable shape claims.

Runs the full scoreboard at a small scale: every qualitative claim from
the paper's evaluation must hold even on the fast test configuration
(magnitudes are checked at full scale by the benchmarks).
"""

import pytest

from repro.analysis.harness import ExperimentRunner
from repro.analysis.shapes import ShapeResult, check_all, scoreboard


@pytest.fixture(scope="module")
def results():
    # Divisor 1024 is the smallest scale where every claim is meaningful
    # (below it, fixed per-buffer compute overheads distort iowait ratios).
    return check_all(ExperimentRunner(divisor=1024), datasets=["rmat25"])


def test_every_claim_has_result(results):
    assert len(results) >= 10
    figures = {r.figure for r in results}
    assert {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} <= figures


def test_all_claims_pass_at_small_scale(results):
    failing = [r for r in results if not r.passed]
    assert not failing, scoreboard(failing)


def test_evidence_recorded(results):
    for r in results:
        assert isinstance(r, ShapeResult)
        assert r.evidence


def test_scoreboard_renders(results):
    text = scoreboard(results)
    assert "PASS" in text
    assert "fig9" in text
