"""Unit tests for the scatter/gather algorithm kernels."""

import numpy as np
import pytest

from repro.algorithms.streaming import (
    AlgoContext,
    BFSAlgorithm,
    UnitSSSPAlgorithm,
    WCCAlgorithm,
)
from repro.errors import EngineError
from repro.graph.types import NO_PARENT, UNVISITED


class TestBFSInit:
    def test_init_state(self):
        algo = BFSAlgorithm()
        state = algo.init_state(5, [2])
        assert state["level"].tolist() == [-1, -1, 0, -1, -1]
        assert state["active"].tolist() == [0, 0, 1, 0, 0]
        assert state["parent"][2] == NO_PARENT

    def test_multiple_roots(self):
        state = BFSAlgorithm().init_state(4, [0, 3])
        assert state["active"].sum() == 2

    def test_root_out_of_range(self):
        with pytest.raises(EngineError):
            BFSAlgorithm().init_state(3, [3])

    def test_no_roots(self):
        with pytest.raises(EngineError):
            BFSAlgorithm().init_state(3, [])

    def test_trimming_supported(self):
        assert BFSAlgorithm.supports_trimming is True


class TestBFSScatter:
    def test_only_active_sources_generate(self):
        algo = BFSAlgorithm()
        state = algo.init_state(4, [1])
        src_local = np.array([0, 1, 1, 2])
        src_global = np.array([0, 1, 1, 2], dtype=np.uint32)
        dst_global = np.array([9, 5, 6, 7], dtype=np.uint32)
        updates, eliminate = algo.scatter(
            AlgoContext(0), state, src_local, src_global, dst_global
        )
        assert updates["dst"].tolist() == [5, 6]
        assert updates["payload"].tolist() == [1, 1]  # parent = source
        assert eliminate.tolist() == [False, True, True, False]

    def test_generate_implies_eliminate(self):
        """Paper §II-C1: an edge that generates an update is dead."""
        algo = BFSAlgorithm()
        state = algo.init_state(8, [0])
        src_local = np.arange(8)
        src_global = src_local.astype(np.uint32)
        dst_global = ((src_local + 1) % 8).astype(np.uint32)
        updates, eliminate = algo.scatter(
            AlgoContext(0), state, src_local, src_global, dst_global
        )
        assert int(eliminate.sum()) == len(updates)

    def test_extended_eliminate_drops_visited_sources(self):
        algo = BFSAlgorithm()
        state = algo.init_state(4, [0])
        state["level"][1] = 3  # visited earlier, not active
        src_local = np.array([0, 1, 2])
        base = np.array([True, False, False])
        extended = algo.extended_eliminate(state, src_local, base)
        assert extended.tolist() == [True, True, False]


class TestBFSGather:
    def test_first_update_wins(self):
        algo = BFSAlgorithm()
        state = algo.init_state(4, [0])
        state["active"][:] = 0
        dst_local = np.array([2, 2, 3])
        payload = np.array([7, 8, 9], dtype=np.uint32)
        activated = algo.gather(AlgoContext(1), state, dst_local, payload)
        assert activated == 2
        assert state["level"][2] == 2  # iteration + 1
        assert state["parent"][2] == 7  # stream order: first wins
        assert state["parent"][3] == 9
        assert state["active"][2] == 1

    def test_visited_vertices_ignored(self):
        algo = BFSAlgorithm()
        state = algo.init_state(3, [0])
        activated = algo.gather(
            AlgoContext(4), state, np.array([0]), np.array([2], dtype=np.uint32)
        )
        assert activated == 0
        assert state["level"][0] == 0  # unchanged
        assert state["parent"][0] == NO_PARENT

    def test_empty_updates(self):
        algo = BFSAlgorithm()
        state = algo.init_state(3, [0])
        assert algo.gather(
            AlgoContext(0), state, np.array([], dtype=np.int64),
            np.array([], dtype=np.uint32),
        ) == 0

    def test_result_copies(self):
        algo = BFSAlgorithm()
        state = algo.init_state(3, [0])
        out = algo.result(state)
        out["level"][0] = 99
        assert state["level"][0] == 0


class TestUnitSSSP:
    def test_result_key_is_distance(self):
        algo = UnitSSSPAlgorithm()
        state = algo.init_state(3, [0])
        out = algo.result(state)
        assert "distance" in out and "level" not in out

    def test_same_traversal_as_bfs(self):
        assert UnitSSSPAlgorithm.supports_trimming is True


class TestWCC:
    def test_init_all_active_own_label(self):
        algo = WCCAlgorithm()
        state = algo.init_state(4)
        assert state["label"].tolist() == [0, 1, 2, 3]
        assert state["active"].all()

    def test_no_trimming(self):
        assert WCCAlgorithm.supports_trimming is False

    def test_scatter_broadcasts_labels(self):
        algo = WCCAlgorithm()
        state = algo.init_state(3)
        updates, eliminate = algo.scatter(
            AlgoContext(0),
            state,
            np.array([0, 2]),
            np.array([0, 2], dtype=np.uint32),
            np.array([1, 1], dtype=np.uint32),
        )
        assert eliminate is None
        assert updates["payload"].tolist() == [0, 2]

    def test_gather_takes_min(self):
        algo = WCCAlgorithm()
        state = algo.init_state(4)
        state["active"][:] = 0
        activated = algo.gather(
            AlgoContext(0),
            state,
            np.array([3, 3, 2]),
            np.array([1, 0, 5], dtype=np.uint32),
        )
        assert state["label"][3] == 0
        assert state["label"][2] == 2  # 5 is not an improvement
        assert activated == 1
        assert state["active"][3] == 1
        assert state["active"][2] == 0

    def test_gather_duplicate_improvements_counted_once(self):
        algo = WCCAlgorithm()
        state = algo.init_state(3)
        state["active"][:] = 0
        activated = algo.gather(
            AlgoContext(0),
            state,
            np.array([2, 2]),
            np.array([0, 1], dtype=np.uint32),
        )
        assert activated == 1
        assert state["label"][2] == 0
