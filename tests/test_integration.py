"""Cross-engine integration tests: all engines agree with the reference.

These are the DESIGN.md correctness obligations: every engine's BFS levels
equal the in-memory CSR reference on directed/undirected graphs, any
partition count, any buffer size, trimming on or off, including
hypothesis-generated random graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import (
    fresh_machine,
    hub_root,
    small_engine_config,
    small_fastbfs_config,
)

from repro.algorithms.reference import bfs_levels
from repro.algorithms.validation import validate_bfs_result
from repro.core.engine import FastBFSEngine
from repro.engines.graphchi import GraphChiConfig, GraphChiEngine
from repro.engines.xstream import XStreamEngine
from repro.graph.generators import (
    attach_whiskers,
    grid_graph,
    powerlaw_graph,
    random_graph,
    rmat_graph,
    star_graph,
)
from repro.graph.graph import Graph


def all_engines():
    return [
        ("fastbfs", FastBFSEngine(small_fastbfs_config())),
        ("fastbfs-no-trim", FastBFSEngine(small_fastbfs_config(trim_enabled=False))),
        ("x-stream", XStreamEngine(small_engine_config())),
        ("graphchi", GraphChiEngine(GraphChiConfig(num_shards=3))),
    ]


GRAPHS = {
    "rmat": lambda: rmat_graph(scale=9, edge_factor=8, seed=21),
    "rmat-sym": lambda: rmat_graph(scale=8, edge_factor=4, seed=3).symmetrized(),
    "powerlaw": lambda: powerlaw_graph(800, 8000, out_exponent=2.0, seed=4),
    "grid": lambda: grid_graph(16, 16),
    "star-in": lambda: star_graph(64, out=False),
    "whiskered": lambda: attach_whiskers(
        rmat_graph(scale=8, edge_factor=8, seed=5), 12, 3, 6, seed=6
    ),
    "self-loops": lambda: Graph.from_edge_pairs(
        5, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (3, 4)]
    ),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("engine_name", [e[0] for e in all_engines()])
def test_engine_graph_matrix(graph_name, engine_name):
    graph = GRAPHS[graph_name]()
    engine = dict(all_engines())[engine_name]
    root = hub_root(graph)
    ref = bfs_levels(graph, root)
    num_disks = 2 if "2disk" in engine_name else 1
    result = engine.run(graph, fresh_machine(num_disks=num_disks), root=root)
    assert np.array_equal(result.levels, ref), (
        f"{engine_name} wrong on {graph_name}"
    )
    report = validate_bfs_result(graph, root, result.levels, result.parents, ref)
    assert report.ok, report.errors


@given(
    n=st.integers(min_value=2, max_value=120),
    m_factor=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10**6),
    partitions=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_property_fastbfs_equals_reference(n, m_factor, seed, partitions):
    graph = random_graph(n, m_factor * n, seed=seed)
    root = seed % n
    ref = bfs_levels(graph, root)
    engine = FastBFSEngine(small_fastbfs_config(num_partitions=partitions))
    result = engine.run(graph, fresh_machine(), root=root)
    assert np.array_equal(result.levels, ref)


@given(
    n=st.integers(min_value=2, max_value=80),
    seed=st.integers(min_value=0, max_value=10**6),
    shards=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=15, deadline=None)
def test_property_graphchi_equals_reference(n, seed, shards):
    graph = random_graph(n, 3 * n, seed=seed)
    root = seed % n
    ref = bfs_levels(graph, root)
    engine = GraphChiEngine(GraphChiConfig(num_shards=shards))
    result = engine.run(graph, fresh_machine(), root=root)
    assert np.array_equal(result.levels, ref)


def test_all_engines_agree_pairwise(rmat12):
    root = hub_root(rmat12)
    results = {}
    for name, engine in all_engines():
        results[name] = engine.run(rmat12, fresh_machine(), root=root).levels
    baseline = results.pop("x-stream")
    for name, levels in results.items():
        assert np.array_equal(levels, baseline), name


@pytest.mark.parametrize("graph_name", ["rmat", "whiskered", "grid"])
def test_full_traversal_under_sanitizer(graph_name):
    """A full FastBFS traversal with sanitize=True: correct answer, zero VFS
    leaks, zero stay-writer state-machine violations (strict mode would have
    raised on any)."""
    graph = GRAPHS[graph_name]()
    root = hub_root(graph)
    machine = fresh_machine()
    engine = FastBFSEngine(small_fastbfs_config(sanitize=True))
    result = engine.run(graph, machine, root=root)
    assert np.array_equal(result.levels, bfs_levels(graph, root))
    sanitizer = machine.sanitizer
    assert sanitizer is not None and sanitizer.finalized
    assert sanitizer.leaks() == []
    assert sanitizer.by_checker("stay-state") == []
    assert sanitizer.violations == []
    assert result.extras["sanitizer_violations"] == 0.0


@pytest.mark.parametrize(
    "engine_name", ["fastbfs", "fastbfs-no-trim", "x-stream"]
)
def test_engines_sanitize_clean_on_sanitized_machine(engine_name):
    """Every edge-centric engine obeys the simulation protocol end to end."""
    graph = GRAPHS["rmat"]()
    engine = dict(all_engines())[engine_name]
    machine = fresh_machine()
    from repro.tooling.sanitizer import Sanitizer

    Sanitizer(strict=True).install(machine)
    result = engine.run(graph, machine, root=hub_root(graph))
    assert machine.sanitizer.violations == []
    assert result.extras["sanitizer_violations"] == 0.0


def test_sanitizer_clean_with_rotating_two_disk_config():
    """The Fig. 10 two-disk rotation also keeps the stay protocol clean."""
    graph = GRAPHS["rmat"]()
    machine = fresh_machine(num_disks=2)
    engine = FastBFSEngine(
        small_fastbfs_config(sanitize=True, rotate_streams=True)
    )
    result = engine.run(graph, machine, root=hub_root(graph))
    assert np.array_equal(
        result.levels, bfs_levels(graph, hub_root(graph))
    )
    assert machine.sanitizer.violations == []


def test_trimming_only_reduces_io_never_changes_answer(rmat12):
    """DESIGN.md invariant: trimming is an I/O optimization, nothing more."""
    root = hub_root(rmat12)
    on = FastBFSEngine(small_fastbfs_config()).run(
        rmat12, fresh_machine(), root=root
    )
    off = FastBFSEngine(small_fastbfs_config(trim_enabled=False)).run(
        rmat12, fresh_machine(), root=root
    )
    assert np.array_equal(on.levels, off.levels)
    assert np.array_equal(on.parents, off.parents)
    assert on.report.bytes_read < off.report.bytes_read
    assert on.num_iterations == off.num_iterations
