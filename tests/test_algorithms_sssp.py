"""Tests for weighted SSSP (streaming Bellman-Ford) and its oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import fresh_machine, hub_root, small_fastbfs_config

from repro.algorithms.reference import bfs_levels
from repro.algorithms.sssp import (
    UNREACHED,
    WeightedSSSPAlgorithm,
    hash_weights,
    reference_sssp,
    unit_weights,
)
from repro.core.engine import FastBFSEngine
from repro.engines.xstream import XStreamEngine
from repro.errors import EngineError
from repro.graph.generators import path_graph, random_graph, rmat_graph
from repro.graph.graph import Graph


class TestWeightFunctions:
    def test_hash_weights_deterministic_and_in_range(self):
        fn = hash_weights(max_weight=8)
        src = np.arange(1000, dtype=np.uint32)
        dst = (src * 7 + 3).astype(np.uint32)
        w1, w2 = fn(src, dst), fn(src, dst)
        assert np.array_equal(w1, w2)
        assert w1.min() >= 1 and w1.max() <= 8
        assert len(np.unique(w1)) > 1  # actually varies

    def test_unit_weights(self):
        fn = unit_weights()
        assert (fn(np.arange(5, dtype=np.uint32),
                   np.arange(5, dtype=np.uint32)) == 1).all()

    def test_bad_max_weight(self):
        with pytest.raises(EngineError):
            hash_weights(0)


class TestReferenceSSSP:
    def test_weighted_path(self):
        g = Graph.from_edge_pairs(4, [(0, 1), (1, 2), (2, 3), (0, 3)])

        def fn(src, dst):
            # 0->3 direct costs 10; the 3-hop path costs 3.
            w = np.ones(len(src), dtype=np.uint32)
            w[(src == 0) & (dst == 3)] = 10
            return w

        dist = reference_sssp(g, 0, fn)
        assert dist.tolist() == [0, 1, 2, 3]

    def test_unreachable(self):
        g = Graph.from_edge_pairs(3, [(0, 1)])
        dist = reference_sssp(g, 0, unit_weights())
        assert dist[2] == UNREACHED

    def test_unit_weights_equal_bfs(self):
        g = rmat_graph(scale=8, edge_factor=8, seed=3)
        root = hub_root(g)
        dist = reference_sssp(g, root, unit_weights()).astype(np.int64)
        dist[dist == int(UNREACHED)] = -1
        assert np.array_equal(dist, bfs_levels(g, root))

    def test_bad_root(self):
        with pytest.raises(EngineError):
            reference_sssp(path_graph(3), 9)


class TestEngineSSSP:
    @pytest.mark.parametrize("engine_cls", [FastBFSEngine, XStreamEngine])
    def test_matches_reference(self, engine_cls):
        g = rmat_graph(scale=9, edge_factor=8, seed=5)
        root = hub_root(g)
        algo = WeightedSSSPAlgorithm(hash_weights(6))
        engine = engine_cls(small_fastbfs_config())
        result = engine.run(g, fresh_machine(), algorithm=algo, root=root)
        expected = reference_sssp(g, root, hash_weights(6))
        assert np.array_equal(result.output["distance"], expected)

    def test_no_trimming_happens(self):
        g = rmat_graph(scale=8, edge_factor=8, seed=1)
        engine = FastBFSEngine(small_fastbfs_config())
        result = engine.run(
            g, fresh_machine(), algorithm=WeightedSSSPAlgorithm(),
            root=hub_root(g),
        )
        assert result.extras["stay_files_written"] == 0.0

    def test_shorter_paths_replace_longer(self):
        """Label-correcting: a vertex improves after first being settled."""
        g = Graph.from_edge_pairs(4, [(0, 3), (0, 1), (1, 2), (2, 3)])

        def fn(src, dst):
            w = np.ones(len(src), dtype=np.uint32)
            w[(src == 0) & (dst == 3)] = 9
            return w

        result = FastBFSEngine(small_fastbfs_config(num_partitions=2)).run(
            g, fresh_machine(), algorithm=WeightedSSSPAlgorithm(fn), root=0
        )
        assert result.output["distance"][3] == 3

    @given(
        n=st.integers(min_value=2, max_value=50),
        seed=st.integers(min_value=0, max_value=10**6),
        max_w=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_matches_reference(self, n, seed, max_w):
        g = random_graph(n, 4 * n, seed=seed)
        root = seed % n
        fn = hash_weights(max_w)
        engine = XStreamEngine(small_fastbfs_config(num_partitions=3))
        result = engine.run(
            g, fresh_machine(), algorithm=WeightedSSSPAlgorithm(fn), root=root
        )
        assert np.array_equal(
            result.output["distance"], reference_sssp(g, root, fn)
        )

    def test_scipy_cross_check(self):
        import scipy.sparse as sp
        import scipy.sparse.csgraph as csgraph

        g = rmat_graph(scale=8, edge_factor=6, seed=11).deduplicated()
        root = hub_root(g)
        fn = hash_weights(5)
        w = fn(g.edges["src"], g.edges["dst"]).astype(np.float64)
        matrix = sp.coo_matrix(
            (w, (g.edges["src"], g.edges["dst"])),
            shape=(g.num_vertices, g.num_vertices),
        ).tocsr()
        expected = csgraph.dijkstra(matrix, indices=root)
        result = FastBFSEngine(small_fastbfs_config()).run(
            g, fresh_machine(), algorithm=WeightedSSSPAlgorithm(fn), root=root
        )
        got = result.output["distance"].astype(np.float64)
        got[got == float(UNREACHED)] = np.inf
        assert np.allclose(got, expected)
