"""Tests for machine-readable result export."""

import csv
import json

import pytest

from tests.helpers import fresh_machine, hub_root, small_fastbfs_config

from repro.analysis.export import (
    iteration_records,
    result_to_record,
    write_csv,
    write_json,
)
from repro.core.engine import FastBFSEngine
from repro.errors import ConfigError
from repro.graph.generators import rmat_graph


@pytest.fixture(scope="module")
def result():
    graph = rmat_graph(scale=9, edge_factor=8, seed=31)
    return FastBFSEngine(small_fastbfs_config()).run(
        graph, fresh_machine(), root=hub_root(graph)
    )


class TestRecords:
    def test_flat_record_fields(self, result):
        record = result_to_record(result, dataset="rmat9", disk_kind="hdd")
        assert record["engine"] == "fastbfs"
        assert record["dataset"] == "rmat9"
        assert record["execution_time_s"] == result.execution_time
        assert record["bytes_read"] == result.report.bytes_read
        assert "extra_stay_swaps" in record

    def test_record_json_safe(self, result):
        record = result_to_record(result)
        json.dumps(record, default=float)  # must not raise

    def test_iteration_records(self, result):
        rows = iteration_records(result, dataset="rmat9")
        assert len(rows) == result.num_iterations
        assert rows[0]["iteration"] == 0
        assert sum(r["edges_scanned"] for r in rows) == result.edges_scanned

    def test_time_identity(self, result):
        record = result_to_record(result)
        assert record["compute_time_s"] + record["iowait_time_s"] == (
            pytest.approx(record["execution_time_s"])
        )


class TestWriters:
    def test_json_roundtrip(self, result, tmp_path):
        path = tmp_path / "out.json"
        write_json([result_to_record(result, dataset="a")], path)
        loaded = json.loads(path.read_text())
        assert len(loaded) == 1
        assert loaded[0]["dataset"] == "a"

    def test_csv_union_of_keys(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv([{"a": 1, "b": 2}, {"a": 3, "c": 4}], path)
        rows = list(csv.DictReader(path.open()))
        assert rows[0]["a"] == "1"
        assert rows[1]["c"] == "4"
        assert rows[0]["c"] == ""  # missing cell empty

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            write_csv([], tmp_path / "empty.csv")

    def test_csv_of_real_results(self, result, tmp_path):
        path = tmp_path / "runs.csv"
        write_csv(
            [result_to_record(result, dataset="rmat9")]
            + [dict(r) for r in iteration_records(result, dataset="rmat9")][:0],
            path,
        )
        rows = list(csv.DictReader(path.open()))
        assert rows[0]["engine"] == "fastbfs"
