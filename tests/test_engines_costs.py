"""Unit tests for the CPU cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engines.costs import CostModel
from repro.errors import ConfigError
from repro.sim.clock import SimClock


class TestValidation:
    def test_defaults_valid(self):
        CostModel()

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(scatter_per_edge=-1e-9)


class TestEffectiveParallelism:
    @pytest.mark.parametrize(
        "threads,cores,expected",
        [(1, 4, 1), (4, 4, 4), (8, 4, 4), (2, 1, 1), (3, 8, 3)],
    )
    def test_min_of_threads_and_cores(self, threads, cores, expected):
        assert CostModel().effective_parallelism(threads, cores) == expected


class TestBufferTime:
    def test_zero_items_free(self):
        assert CostModel().buffer_time(1e-8, 0, 4, 4) == 0.0

    def test_scales_with_items(self):
        cm = CostModel()
        t1 = cm.buffer_time(1e-8, 1000, 1, 4)
        t2 = cm.buffer_time(1e-8, 2000, 1, 4)
        assert t2 > t1

    def test_parallelism_divides_work(self):
        cm = CostModel(thread_sync_per_buffer=0.0, buffer_overhead=0.0)
        t1 = cm.buffer_time(1e-6, 1000, 1, 4)
        t4 = cm.buffer_time(1e-6, 1000, 4, 4)
        assert t4 == pytest.approx(t1 / 4)

    def test_single_thread_pays_no_sync(self):
        cm = CostModel(thread_sync_per_buffer=1.0, buffer_overhead=0.0)
        assert cm.buffer_time(0.0, 10, 1, 4) == 0.0

    def test_oversubscription_adds_sync(self):
        cm = CostModel()
        t4 = cm.buffer_time(1e-8, 100, 4, 4)
        t8 = cm.buffer_time(1e-8, 100, 8, 4)
        assert t8 > t4  # same parallelism, more sync

    @given(
        per_item=st.floats(min_value=0, max_value=1e-6),
        count=st.integers(min_value=0, max_value=10**6),
        threads=st.integers(min_value=1, max_value=16),
        cores=st.integers(min_value=1, max_value=16),
    )
    def test_never_negative(self, per_item, count, threads, cores):
        assert CostModel().buffer_time(per_item, count, threads, cores) >= 0.0


class TestCharging:
    def test_charge_advances_clock(self):
        clock = SimClock()
        cm = CostModel()
        dt = cm.charge(clock, "scatter", 1e-8, 1000, 4, 4)
        assert clock.now == pytest.approx(dt)
        assert clock.compute_breakdown()["scatter"] == pytest.approx(dt)

    def test_zero_count_no_charge(self):
        clock = SimClock()
        CostModel().charge(clock, "scatter", 1e-8, 0, 4, 4)
        assert clock.now == 0.0

    def test_charge_phase_single_thread_free(self):
        clock = SimClock()
        assert CostModel().charge_phase(clock, 1) == 0.0
        assert clock.now == 0.0

    def test_charge_phase_scales_with_threads(self):
        clock = SimClock()
        cm = CostModel()
        d4 = cm.charge_phase(clock, 4)
        d8 = cm.charge_phase(clock, 8)
        assert d8 == pytest.approx(2 * d4)
        assert clock.compute_breakdown()["thread-sync"] == pytest.approx(d4 + d8)
