"""Importable test helpers (fixtures stay in conftest.py)."""

from __future__ import annotations

import numpy as np

from repro.core.config import FastBFSConfig
from repro.engines.base import EngineConfig
from repro.storage.device import DeviceSpec
from repro.storage.machine import Machine
from repro.utils.units import KB, MB


def fresh_machine(num_disks: int = 1, memory: int = 2 * MB, cores: int = 4,
                  disk_kind: str = "hdd") -> Machine:
    """A small out-of-core test machine."""
    if disk_kind == "hdd":
        specs = [DeviceSpec.hdd(f"hdd{i}") for i in range(num_disks)]
    else:
        specs = [DeviceSpec.ssd(f"ssd{i}") for i in range(num_disks)]
    return Machine(specs, memory=memory, cores=cores)


def small_engine_config(**overrides) -> EngineConfig:
    """Out-of-core config with tiny buffers so streaming paths are exercised."""
    base = dict(
        edge_buffer_bytes=2 * KB,
        update_buffer_bytes=1 * KB,
        num_partitions=4,
        allow_in_memory=False,
    )
    base.update(overrides)
    return EngineConfig(**base)


def small_fastbfs_config(**overrides) -> FastBFSConfig:
    base = dict(
        edge_buffer_bytes=2 * KB,
        update_buffer_bytes=1 * KB,
        stay_buffer_bytes=1 * KB,
        num_partitions=4,
        allow_in_memory=False,
    )
    base.update(overrides)
    return FastBFSConfig(**base)


def hub_root(graph) -> int:
    return int(np.argmax(graph.out_degrees()))
