"""End-to-end tests for the graph query service (repro.serve).

Boots the real HTTP server in-process on an ephemeral port and drives it
with ``http.client``: golden response schemas for every endpoint
(including error bodies), shutdown-drains-queue semantics, the
concurrency-equivalence acceptance criterion (concurrent served BFS is
bit-identical to serial ``api.run_queries`` and ``/metrics`` reconciles
exactly with the per-request IOReports), and a deterministic
admission-control fuzz over the offer/flush primitives.
"""

from __future__ import annotations

import http.client
import json
import random
import threading

import pytest

from repro.api import run_queries
from repro.errors import ConfigError, QueueFullError, UnknownGraphError
from repro.graph.generators import rmat_graph, star_graph
from repro.obs.exporters import parse_prometheus
from repro.serve import (
    AdmissionController,
    ArtifactRegistry,
    GraphService,
    parse_graph_spec,
)
from repro.storage.machine import IOReport, merge_reports

TINY_SPEC = "tiny@rmat:scale=8,edge_factor=8,seed=7"


def request(service, method, path, payload=None, raw_body=None, timeout=120,
            retries=0):
    """One HTTP request; returns (status, headers dict, decoded body).

    ``retries`` re-attempts transient connection-level failures (reset /
    refused under connect bursts) — never HTTP error responses.
    """
    body = raw_body if raw_body is not None else (
        json.dumps(payload) if payload is not None else None
    )
    for attempt in range(retries + 1):
        conn = http.client.HTTPConnection(
            "127.0.0.1", service.port, timeout=timeout
        )
        try:
            conn.request(method, path, body=body)
            resp = conn.getresponse()
            data = resp.read()
            headers = dict(resp.getheaders())
            break
        except (ConnectionError, http.client.HTTPException):
            if attempt == retries:
                raise
        finally:
            conn.close()
    if headers.get("Content-Type", "").startswith("application/json"):
        return resp.status, headers, json.loads(data)
    return resp.status, headers, data.decode("utf-8")


@pytest.fixture(scope="module")
def service():
    svc = GraphService(port=0, warmup=(TINY_SPEC,)).start()
    yield svc
    svc.shutdown()


QUERY_KEYS = {
    "graph", "algorithm", "engine", "request_id", "root",
    "flush", "result", "report", "report_id", "timing",
}


class TestEndpointSchemas:
    def test_healthz(self, service):
        status, headers, body = request(service, "GET", "/healthz")
        assert status == 200
        assert set(body) == {"status", "graphs", "requests_served"}
        assert body["status"] == "ok"
        assert "tiny" in body["graphs"]
        assert headers["X-Request-Id"].startswith("req-")

    def test_graphs_listing(self, service):
        status, _, body = request(service, "GET", "/graphs")
        assert status == 200
        assert body == {"graphs": sorted(service.registry.names())}

    def test_stats_schema(self, service):
        status, _, body = request(service, "GET", "/graphs/tiny/stats")
        assert status == 200
        assert set(body) >= {
            "name", "graph", "engine", "partitions", "in_memory",
            "staging_report", "queries_served", "flushes", "admission",
            "fault_plan", "health",
        }
        assert body["graph"]["num_vertices"] == 256
        assert body["fault_plan"] is None  # no faults in this fixture
        assert body["health"]["state"] == "healthy"
        report = IOReport.from_dict(body["staging_report"])
        assert report.bytes_total > 0
        assert set(body["admission"]) == {
            "queue_depth", "capacity", "accepted", "rejected",
            "flushes", "flush_retries", "serial_fallbacks",
            "deadline_expired", "held", "closed",
        }

    def test_bfs_response_schema(self, service):
        status, headers, body = request(
            service, "POST", "/graphs/tiny/bfs", payload={"root": 3}
        )
        assert status == 200
        assert set(body) == QUERY_KEYS
        assert body["algorithm"] == "bfs" and body["root"] == 3
        assert body["flush"]["mode"] == "batched"
        assert 1 <= body["flush"]["size"] <= 64
        assert body["report_id"] == body["flush"]["id"]
        result = body["result"]
        assert len(result["levels"]) == 256
        assert len(result["parents"]) == 256
        assert result["levels"][3] == 0
        # every response carries request id, queue wait and the
        # simulated-time breakdown
        for header in (
            "X-Request-Id", "X-Queue-Wait-Seconds",
            "X-Sim-Execution-Seconds", "X-Sim-Compute-Seconds",
            "X-Sim-Iowait-Seconds", "X-Flush-Id", "X-Flush-Size",
        ):
            assert header in headers, header
        assert float(headers["X-Sim-Execution-Seconds"]) == pytest.approx(
            body["timing"]["sim_execution_seconds"]
        )

    def test_bfs_multi_source(self, service):
        status, _, body = request(
            service, "POST", "/graphs/tiny/bfs", payload={"roots": [1, 2]}
        )
        assert status == 200
        assert body["result"]["levels"][1] == 0
        assert body["result"]["levels"][2] == 0

    def test_sssp_response_schema(self, service):
        status, _, body = request(
            service, "POST", "/graphs/tiny/sssp",
            payload={"root": 3, "max_weight": 4},
        )
        assert status == 200
        assert set(body) == QUERY_KEYS
        assert body["algorithm"] == "sssp" and body["flush"] is None
        result = body["result"]
        assert set(result) == {"distances", "unreached_value", "num_iterations"}
        assert len(result["distances"]) == 256
        assert result["distances"][3] == 0

    def test_pagerank_response_schema(self, service):
        status, _, body = request(
            service, "POST", "/graphs/tiny/pagerank", payload={"rounds": 2}
        )
        assert status == 200
        assert set(body) == QUERY_KEYS
        assert body["algorithm"] == "pagerank"
        ranks = body["result"]["ranks"]
        assert len(ranks) == 256
        # rank mass stays in (0, 1]: dangling vertices leak some of it
        assert 0.5 < sum(ranks) <= 1.0 + 1e-6

    def test_register_endpoint(self, service):
        status, _, body = request(
            service, "POST", "/graphs/extra",
            payload={"spec": "star:num_leaves=32"},
        )
        assert status == 201
        assert body["name"] == "extra"
        assert body["graph"]["num_vertices"] == 33
        status, _, body = request(
            service, "POST", "/graphs/extra/bfs", payload={"root": 0}
        )
        assert status == 200
        assert body["result"]["levels"][0] == 0

    def test_metrics_endpoint(self, service):
        status, headers, text = request(service, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        registry = parse_prometheus(text)
        assert registry.total("device_bytes_total") > 0
        assert registry.total("serve_requests_total") > 0


class TestErrorBodies:
    def test_unknown_graph(self, service):
        status, _, body = request(
            service, "POST", "/graphs/nope/bfs", payload={"root": 0}
        )
        assert status == 404
        assert body["error"]["type"] == "unknown_graph"
        assert "nope" in body["error"]["message"]
        assert body["request_id"].startswith("req-")

    def test_bad_root(self, service):
        for payload in ({"root": 9999}, {"root": -1}, {"root": "x"},
                        {"roots": []}, {}):
            status, _, body = request(
                service, "POST", "/graphs/tiny/bfs", payload=payload
            )
            assert status == 400, payload
            assert body["error"]["type"] == "bad_root", payload

    def test_malformed_json(self, service):
        status, _, body = request(
            service, "POST", "/graphs/tiny/bfs", raw_body=b"{not json"
        )
        assert status == 400
        assert body["error"]["type"] == "bad_request"
        assert "malformed JSON" in body["error"]["message"]

    def test_unknown_route(self, service):
        status, _, body = request(service, "GET", "/nope")
        assert status == 404
        assert body["error"]["type"] == "not_found"

    def test_get_on_query_endpoint(self, service):
        status, _, body = request(service, "GET", "/graphs/tiny/bfs")
        assert status == 405
        assert body["error"]["type"] == "method_not_allowed"

    def test_bad_pagerank_params(self, service):
        status, _, body = request(
            service, "POST", "/graphs/tiny/pagerank", payload={"rounds": 0}
        )
        assert status == 400
        assert body["error"]["type"] == "bad_request"

    def test_bad_register_spec(self, service):
        status, _, body = request(
            service, "POST", "/graphs/bad", payload={"spec": "nope:z=1"}
        )
        assert status == 400
        assert body["error"]["type"] == "bad_request"


class TestShutdownDrain:
    def test_shutdown_fulfills_queued_tickets(self):
        svc = GraphService(port=0, warmup=(TINY_SPEC,)).start()
        entry = svc.registry.get("tiny")
        controller = svc.controller(entry)
        controller.hold()  # tickets accumulate, nobody can flush
        n = 5
        results = [None] * n

        def fire(i):
            results[i] = request(
                svc, "POST", "/graphs/tiny/bfs", payload={"root": i},
                retries=2,
            )

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        deadline = 200
        while controller.depth < n and deadline:
            threading.Event().wait(0.05)
            deadline -= 1
        assert controller.depth == n
        svc.shutdown()  # drain=True: every queued ticket must be answered
        for t in threads:
            t.join(timeout=30)
        for i, (status, _, body) in enumerate(results):
            assert status == 200
            assert body["result"]["levels"][i] == 0
        # the whole backlog went out as one coalesced flush
        flush_ids = {body["flush"]["id"] for _, _, body in results}
        assert len(flush_ids) == 1
        with pytest.raises(OSError):
            request(svc, "GET", "/healthz", timeout=2)


class TestConcurrencyEquivalence:
    def test_concurrent_bfs_matches_serial_and_metrics_reconcile(self):
        spec = "g@rmat:scale=9,edge_factor=8,seed=17"
        svc = GraphService(port=0, warmup=(spec,)).start()
        try:
            roots = [(7 * i) % 500 for i in range(16)]
            results = [None] * len(roots)

            def fire(i):
                results[i] = request(
                    svc, "POST", "/graphs/g/bfs",
                    payload={"root": roots[i]}, retries=2,
                )

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(len(roots))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            assert all(r is not None and r[0] == 200 for r in results)

            # (1) bit-identical to the serial batch front door
            graph = rmat_graph(scale=9, edge_factor=8, seed=17)
            serial = run_queries(graph, roots)
            for i, (_, _, body) in enumerate(results):
                assert serial.queries[i].levels.tolist() == (
                    body["result"]["levels"]
                )
                assert serial.queries[i].parents.tolist() == (
                    body["result"]["parents"]
                )

            # (2) flushes coalesce and never exceed the batch width
            sizes_by_flush = {}
            for _, _, body in results:
                sizes_by_flush[body["flush"]["id"]] = body["flush"]["size"]
            assert all(1 <= s <= 64 for s in sizes_by_flush.values())
            assert sum(sizes_by_flush.values()) == len(roots)

            # (3) /metrics reconciles exactly with the per-request
            # IOReports: queries of one flush share that flush's delta
            # report (dedup by report_id), plus the staging report.
            _, _, metrics_text = request(svc, "GET", "/metrics")
            registry = parse_prometheus(metrics_text)
            _, _, stats = request(svc, "GET", "/graphs/g/stats")
            unique = {}
            for _, _, body in results:
                unique[body["report_id"]] = body["report"]
            merged = merge_reports(
                [IOReport.from_dict(stats["staging_report"])]
                + [IOReport.from_dict(d) for d in unique.values()]
            )
            assert registry.reconcile(merged) == []
        finally:
            svc.shutdown()


class TestAdmissionFuzz:
    def test_seeded_bursts_deterministic(self):
        registry = ArtifactRegistry(max_graphs=2)
        entry = registry.register("star", star_graph(63))
        capacity, width = 8, 4
        controller = AdmissionController(
            entry, capacity=capacity, batch_width=width
        )
        rng = random.Random(1234)
        model_queue = []  # mirrors the controller's FIFO: request ids
        tickets = {}
        flushed = []  # (flush_id, [request ids]) in flush order
        next_id = 0
        for step in range(80):
            if rng.random() < 0.7:
                rid = f"t-{next_id:04d}"
                next_id += 1
                root = rng.randrange(64)
                if len(model_queue) < capacity:
                    ticket = controller.offer(rid, root)
                    tickets[rid] = (ticket, root)
                    model_queue.append(rid)
                else:
                    # deterministic rejection with a deterministic hint
                    with pytest.raises(QueueFullError) as exc:
                        controller.offer(rid, root)
                    expected = max(1, -(-len(model_queue) // width))
                    assert exc.value.retry_after == float(expected)
            else:
                record = controller.flush()
                if not model_queue:
                    assert record is None
                else:
                    expected = model_queue[: width]
                    del model_queue[: len(expected)]
                    assert record is not None
                    assert record.size == len(expected) <= 64
                    got = [t.request_id for t in record.tickets]
                    assert got == expected  # strict FIFO, no dup/loss
                    flushed.append((record.flush_id, got))
        drained = controller.drain_pending()
        assert drained == len(model_queue)

        # no lost or duplicated responses: every accepted ticket was
        # fulfilled exactly once with its own root's traversal
        for rid, (ticket, root) in tickets.items():
            assert ticket.done.is_set(), rid
            assert ticket.error is None
            assert ticket.result.levels[root] == 0
        counters = controller.counters()
        assert counters["accepted"] == len(tickets)
        assert counters["queue_depth"] == 0
        assert all(size <= 64 for _, ids in flushed for size in [len(ids)])

    def test_same_seed_same_decisions(self):
        """The accept/reject trace is a pure function of the op sequence."""
        def run_trace():
            registry = ArtifactRegistry(max_graphs=1)
            entry = registry.register("star", star_graph(31))
            controller = AdmissionController(
                entry, capacity=5, batch_width=3
            )
            rng = random.Random(99)
            trace = []
            for i in range(50):
                if rng.random() < 0.75:
                    try:
                        controller.offer(f"r{i}", rng.randrange(32))
                        trace.append("accept")
                    except QueueFullError as exc:
                        trace.append(f"reject:{exc.retry_after:g}")
                else:
                    record = controller.flush()
                    trace.append(f"flush:{0 if record is None else record.size}")
            controller.drain_pending()
            return trace

        assert run_trace() == run_trace()


class TestRegistry:
    def test_parse_specs(self):
        name, graph = parse_graph_spec("rmat:scale=8,edge_factor=8,seed=7")
        assert graph.num_vertices == 256
        alias, _ = parse_graph_spec("mine@star:num_leaves=10")
        assert alias == "mine"
        with pytest.raises(ConfigError):
            parse_graph_spec("nope_dataset")
        with pytest.raises(ConfigError):
            parse_graph_spec("rmat:bad=1")
        with pytest.raises(ConfigError):
            parse_graph_spec("rmat:scale")

    def test_lru_eviction(self):
        registry = ArtifactRegistry(max_graphs=2)
        registry.register("a", star_graph(8))
        registry.register("b", star_graph(9))
        registry.get("a")  # a is now most recently used
        registry.register("c", star_graph(10))
        assert registry.names() == ["a", "c"]
        assert registry.evictions == ["b"]
        with pytest.raises(UnknownGraphError):
            registry.get("b")

    def test_graphchi_not_servable(self):
        with pytest.raises(ConfigError):
            ArtifactRegistry(engine="graphchi")


class TestReportMergeRoundTrip:
    def test_to_from_dict_exact(self):
        registry = ArtifactRegistry(max_graphs=1)
        entry = registry.register("g", star_graph(16))
        report = entry.staged.staging_report
        clone = IOReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert clone.bytes_total == report.bytes_total
        assert clone.devices[0].bytes_by_role == (
            report.devices[0].bytes_by_role
        )

    def test_merge_reports_is_sum(self):
        registry = ArtifactRegistry(max_graphs=1)
        entry = registry.register("g", star_graph(16))
        report = entry.staged.staging_report
        double = merge_reports([report, report])
        assert double.bytes_total == 2 * report.bytes_total
        assert double.execution_time == pytest.approx(
            2 * report.execution_time
        )
        assert double.devices[0].seek_count == 2 * report.devices[0].seek_count
