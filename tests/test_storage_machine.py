"""Tests for the Machine model and IOReport."""

import pytest

from repro.errors import ConfigError
from repro.storage.device import DeviceSpec
from repro.storage.machine import IOReport, Machine
from repro.utils.units import GB, MB


class TestMachineConstruction:
    def test_commodity_server_defaults(self):
        m = Machine.commodity_server()
        assert m.memory_bytes == 4 * GB
        assert m.cores == 4
        assert m.num_disks == 1
        assert m.disks[0].spec.kind == "hdd"
        assert m.ram.spec.kind == "ram"

    def test_ssd_server(self):
        m = Machine.commodity_server(disk_kind="ssd", num_disks=2)
        assert m.num_disks == 2
        assert all(d.spec.kind == "ssd" for d in m.disks)

    def test_bad_disk_kind(self):
        with pytest.raises(ConfigError):
            Machine.commodity_server(disk_kind="tape")

    def test_memory_string(self):
        m = Machine([DeviceSpec.hdd()], memory="256MB")
        assert m.memory_bytes == 256 * MB

    def test_no_disks_rejected(self):
        with pytest.raises(ConfigError):
            Machine([], memory=MB)

    def test_zero_memory_rejected(self):
        with pytest.raises(ConfigError):
            Machine([DeviceSpec.hdd()], memory=0)

    def test_bad_cores_rejected(self):
        with pytest.raises(ConfigError):
            Machine([DeviceSpec.hdd()], memory=MB, cores=0)

    def test_duplicate_device_names_rejected(self):
        with pytest.raises(ConfigError):
            Machine([DeviceSpec.hdd("a"), DeviceSpec.hdd("a")], memory=MB)

    def test_fresh_copies_hardware(self):
        m = Machine.commodity_server(memory="1GB", cores=2, num_disks=2)
        m.clock.charge_compute(5.0)
        m.vfs.create("x", m.disks[0])
        f = m.fresh()
        assert f.clock.now == 0.0
        assert len(f.vfs) == 0
        assert f.memory_bytes == m.memory_bytes
        assert f.cores == 2
        assert f.num_disks == 2


class TestDiskAccess:
    def test_disk_clamps_to_last(self):
        m = Machine.commodity_server(num_disks=1)
        assert m.disk(0) is m.disks[0]
        assert m.disk(1) is m.disks[0]  # single-disk machine accepts index 1

    def test_disk_negative_rejected(self):
        m = Machine.commodity_server()
        with pytest.raises(ConfigError):
            m.disk(-1)

    def test_all_devices_includes_ram(self):
        m = Machine.commodity_server(num_disks=2)
        devices = m.all_devices()
        assert len(devices) == 3
        assert devices[-1] is m.ram


class TestIOReport:
    def test_empty_report(self):
        report = Machine.commodity_server().report()
        assert report.execution_time == 0.0
        assert report.bytes_read == 0
        assert report.iowait_ratio == 0.0

    def test_ram_excluded_from_input_bytes(self):
        m = Machine.commodity_server()
        m.ram.submit(0.0, "read", 1000, file_id=1, offset=0)
        m.disks[0].submit(0.0, "read", 500, file_id=2, offset=0)
        report = m.report()
        assert report.bytes_read == 500  # the paper's "input data amount"
        ram_report = [d for d in report.devices if d.kind == "ram"][0]
        assert ram_report.bytes_read == 1000

    def test_totals(self):
        m = Machine.commodity_server(num_disks=2)
        m.disks[0].submit(0.0, "read", 100, file_id=1, offset=0)
        m.disks[1].submit(0.0, "write", 50, file_id=2, offset=0)
        report = m.report()
        assert report.bytes_read == 100
        assert report.bytes_written == 50
        assert report.bytes_total == 150

    def test_iowait_ratio(self):
        m = Machine.commodity_server()
        m.clock.charge_compute(1.0)
        m.clock.wait_until(2.0)
        assert m.report().iowait_ratio == pytest.approx(0.5)

    def test_summary_renders(self):
        m = Machine.commodity_server()
        m.disks[0].submit(0.0, "read", 12345, file_id=1, offset=0)
        m.clock.wait_until(1.0)
        text = m.report().summary()
        assert "iowait" in text
        assert "hdd0" in text
