"""Tests for the FastBFS engine: correctness, trimming, scheduling, disks."""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root, small_fastbfs_config

from repro.algorithms.reference import bfs_levels
from repro.algorithms.streaming import UnitSSSPAlgorithm, WCCAlgorithm
from repro.algorithms.validation import validate_bfs_result
from repro.core.config import FastBFSConfig
from repro.core.engine import FastBFSEngine
from repro.engines.base import EngineConfig
from repro.engines.xstream import XStreamEngine
from repro.errors import ConfigError
from repro.graph.generators import grid_graph, path_graph, rmat_graph


class TestConfig:
    def test_defaults_valid(self):
        FastBFSConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(stay_buffer_bytes=0),
            dict(num_stay_buffers=0),
            dict(trim_start_iteration=-1),
            dict(trim_trigger_fraction=1.0),
            dict(trim_trigger_fraction=-0.1),
            dict(cancellation_grace=-1),
            dict(stay_disk=-1),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FastBFSConfig(**kwargs)

    def test_two_disk_factory(self):
        cfg = FastBFSConfig.two_disk(threads=2)
        assert cfg.rotate_streams is True
        assert cfg.threads == 2

    def test_engine_upgrades_plain_config(self):
        engine = FastBFSEngine(EngineConfig(threads=2))
        assert isinstance(engine.config, FastBFSConfig)
        assert engine.config.threads == 2


class TestCorrectness:
    @pytest.mark.parametrize("partitions", [1, 2, 5, 8])
    def test_matches_reference_across_partitions(self, rmat10, partitions):
        root = hub_root(rmat10)
        ref = bfs_levels(rmat10, root)
        engine = FastBFSEngine(small_fastbfs_config(num_partitions=partitions))
        result = engine.run(rmat10, fresh_machine(), root=root)
        assert np.array_equal(result.levels, ref)
        validate_bfs_result(rmat10, root, result.levels, result.parents,
                            ref).raise_if_failed()

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(trim_enabled=False),
            dict(selective_scheduling=False),
            dict(trim_enabled=False, selective_scheduling=False),
            dict(extended_trim=True),
            dict(trim_start_iteration=3),
            dict(trim_trigger_fraction=0.2),
            dict(num_stay_buffers=1),
            dict(cancellation_grace=0.0),
            dict(num_edge_buffers=4),
        ],
    )
    def test_feature_matrix_same_levels(self, rmat10, overrides):
        root = hub_root(rmat10)
        ref = bfs_levels(rmat10, root)
        engine = FastBFSEngine(small_fastbfs_config(**overrides))
        result = engine.run(rmat10, fresh_machine(), root=root)
        assert np.array_equal(result.levels, ref), overrides

    def test_grid_high_diameter(self, grid):
        ref = bfs_levels(grid, 0)
        result = FastBFSEngine(small_fastbfs_config()).run(
            grid, fresh_machine(), root=0
        )
        assert np.array_equal(result.levels, ref)

    def test_path_extreme_diameter(self, path):
        result = FastBFSEngine(small_fastbfs_config(num_partitions=3)).run(
            path, fresh_machine(), root=0
        )
        assert result.levels.tolist() == list(range(64))

    def test_two_disk_same_levels(self, rmat10):
        root = hub_root(rmat10)
        ref = bfs_levels(rmat10, root)
        engine = FastBFSEngine(
            small_fastbfs_config(rotate_streams=True)
        )
        result = engine.run(rmat10, fresh_machine(num_disks=2), root=root)
        assert np.array_equal(result.levels, ref)

    def test_unit_sssp(self, rmat10):
        root = hub_root(rmat10)
        ref = bfs_levels(rmat10, root)
        result = FastBFSEngine(small_fastbfs_config()).run(
            rmat10, fresh_machine(), algorithm=UnitSSSPAlgorithm(), root=root
        )
        assert np.array_equal(result.output["distance"], ref)


class TestTrimming:
    def test_stay_files_shrink_scanned_edges(self, rmat10):
        root = hub_root(rmat10)
        result = FastBFSEngine(
            small_fastbfs_config(selective_scheduling=False)
        ).run(rmat10, fresh_machine(), root=root)
        scanned = [it.edges_scanned for it in result.iterations]
        assert scanned[0] == rmat10.num_edges
        # After swaps take effect the scan volume decreases.
        assert min(scanned[1:]) < rmat10.num_edges
        assert result.extras["stay_swaps"] > 0

    def test_trimmed_scans_less_than_untrimmed(self, rmat10):
        root = hub_root(rmat10)
        trimmed = FastBFSEngine(small_fastbfs_config()).run(
            rmat10, fresh_machine(), root=root
        )
        untrimmed = FastBFSEngine(
            small_fastbfs_config(trim_enabled=False)
        ).run(rmat10, fresh_machine(), root=root)
        assert trimmed.edges_scanned < untrimmed.edges_scanned
        assert trimmed.report.bytes_read < untrimmed.report.bytes_read

    def test_eliminated_edges_equal_updates_without_extended(self, rmat10):
        """Paper rule: eliminate exactly the update-generating edges."""
        result = FastBFSEngine(small_fastbfs_config()).run(
            rmat10, fresh_machine(), root=hub_root(rmat10)
        )
        for it in result.iterations:
            if it.stay_records_written or it.edges_eliminated:
                assert it.edges_eliminated <= it.updates_generated or \
                    it.updates_generated == 0

    def test_extended_trim_eliminates_more(self, rmat10):
        root = hub_root(rmat10)
        base = FastBFSEngine(
            small_fastbfs_config(selective_scheduling=False)
        ).run(rmat10, fresh_machine(), root=root)
        ext = FastBFSEngine(
            small_fastbfs_config(selective_scheduling=False, extended_trim=True)
        ).run(rmat10, fresh_machine(), root=root)
        assert ext.edges_scanned <= base.edges_scanned

    def test_trim_start_iteration_delays(self, rmat10):
        result = FastBFSEngine(
            small_fastbfs_config(trim_start_iteration=2, selective_scheduling=False)
        ).run(rmat10, fresh_machine(), root=hub_root(rmat10))
        assert result.iterations[0].stay_records_written == 0
        assert result.iterations[1].stay_records_written == 0
        assert result.iterations[1].edges_scanned == rmat10.num_edges

    def test_trigger_fraction_skips_slow_convergence(self, grid):
        """On a grid the frontier is tiny; a 10% trigger never fires."""
        result = FastBFSEngine(
            small_fastbfs_config(trim_trigger_fraction=0.10)
        ).run(grid, fresh_machine(), root=0)
        assert result.extras["stay_files_written"] == 0.0

    def test_trigger_fraction_fires_on_rmat(self, rmat10):
        result = FastBFSEngine(
            small_fastbfs_config(trim_trigger_fraction=0.10)
        ).run(rmat10, fresh_machine(), root=hub_root(rmat10))
        assert result.extras["stay_files_written"] > 0

    def test_no_trimming_for_wcc(self):
        """Label-correcting algorithms fall back to plain streaming."""
        g = rmat_graph(scale=7, edge_factor=4, seed=2).symmetrized()
        result = FastBFSEngine(small_fastbfs_config(num_partitions=3)).run(
            g, fresh_machine(), algorithm=WCCAlgorithm(), root=0
        )
        assert result.extras["stay_files_written"] == 0.0

    def test_stay_bytes_accounted(self, rmat10):
        result = FastBFSEngine(small_fastbfs_config()).run(
            rmat10, fresh_machine(), root=hub_root(rmat10)
        )
        assert result.extras["stay_bytes_written"] == pytest.approx(
            result.extras["stay_records_written"] * 8
        )


class TestSelectiveScheduling:
    def test_partitions_skipped_in_tail(self, path):
        """On a path only the frontier's partition has work each pass."""
        result = FastBFSEngine(
            small_fastbfs_config(num_partitions=4, trim_enabled=False)
        ).run(path, fresh_machine(), root=0)
        skipped = sum(it.partitions_skipped for it in result.iterations)
        processed = sum(it.partitions_processed for it in result.iterations)
        assert skipped > processed  # most partitions idle most of the time

    def test_disabled_processes_everything(self, path):
        result = FastBFSEngine(
            small_fastbfs_config(num_partitions=4, selective_scheduling=False)
        ).run(path, fresh_machine(), root=0)
        assert all(it.partitions_skipped == 0 for it in result.iterations)

    def test_selective_reads_less(self, path):
        on = FastBFSEngine(
            small_fastbfs_config(num_partitions=4, trim_enabled=False)
        ).run(path, fresh_machine(), root=0)
        off = FastBFSEngine(
            small_fastbfs_config(num_partitions=4, trim_enabled=False,
                                 selective_scheduling=False)
        ).run(path, fresh_machine(), root=0)
        assert on.report.bytes_read < off.report.bytes_read


class TestPerformanceShape:
    def test_fastbfs_beats_xstream_on_converging_graph(self, rmat12):
        root = hub_root(rmat12)
        fb = FastBFSEngine(small_fastbfs_config(num_partitions=2)).run(
            rmat12, fresh_machine(), root=root
        )
        xs = XStreamEngine(
            small_fastbfs_config(num_partitions=2)
        )
        xs = XStreamEngine(
            EngineConfig(edge_buffer_bytes=2048, update_buffer_bytes=1024,
                         num_partitions=2, allow_in_memory=False)
        ).run(rmat12, fresh_machine(), root=root)
        assert fb.report.bytes_read < xs.report.bytes_read
        assert np.array_equal(fb.levels, xs.levels)

    def test_two_disks_faster_than_one(self, rmat12):
        root = hub_root(rmat12)
        one = FastBFSEngine(small_fastbfs_config(num_partitions=2)).run(
            rmat12, fresh_machine(num_disks=1), root=root
        )
        two = FastBFSEngine(
            small_fastbfs_config(num_partitions=2, rotate_streams=True)
        ).run(rmat12, fresh_machine(num_disks=2), root=root)
        assert two.execution_time < one.execution_time

    def test_rotation_on_single_disk_harmless(self, rmat10):
        root = hub_root(rmat10)
        ref = bfs_levels(rmat10, root)
        result = FastBFSEngine(
            small_fastbfs_config(rotate_streams=True)
        ).run(rmat10, fresh_machine(num_disks=1), root=root)
        assert np.array_equal(result.levels, ref)


class TestCleanup:
    def test_no_stay_files_left_behind(self, rmat10):
        machine = fresh_machine()
        FastBFSEngine(small_fastbfs_config()).run(
            rmat10, machine, root=hub_root(rmat10)
        )
        stays = [n for n in machine.vfs.names() if n.startswith("stay:")]
        assert stays == []

    def test_end_of_run_discards_counted(self, rmat10):
        result = FastBFSEngine(small_fastbfs_config()).run(
            rmat10, fresh_machine(), root=hub_root(rmat10)
        )
        assert result.extras["stay_end_of_run_discards"] >= 0
