"""Tests for the block-device timing model (seek + bandwidth)."""

import pytest

from repro.errors import OutOfSpaceError, StorageError
from repro.storage.device import Device, DeviceSpec
from repro.utils.units import MB


class TestDeviceSpec:
    def test_hdd_preset(self):
        spec = DeviceSpec.hdd()
        assert spec.kind == "hdd"
        assert spec.seek_time > 1e-3  # milliseconds, a real spindle

    def test_ssd_preset_seeks_far_less(self):
        assert DeviceSpec.ssd().seek_time < DeviceSpec.hdd().seek_time / 10

    def test_ram_preset_no_seek(self):
        spec = DeviceSpec.ram()
        assert spec.seek_time == 0.0
        assert spec.kind == "ram"

    def test_invalid_bandwidth(self):
        with pytest.raises(StorageError):
            DeviceSpec("x", seek_time=0.0, read_bandwidth=0, write_bandwidth=1)

    def test_invalid_seek(self):
        with pytest.raises(StorageError):
            DeviceSpec("x", seek_time=-1.0, read_bandwidth=1, write_bandwidth=1)

    def test_renamed(self):
        spec = DeviceSpec.hdd().renamed("disk7")
        assert spec.name == "disk7"
        assert spec.seek_time == DeviceSpec.hdd().seek_time


class TestDeviceTiming:
    def _device(self, seek=0.01, bw=100 * MB):
        return Device(
            DeviceSpec("d", seek_time=seek, read_bandwidth=bw, write_bandwidth=bw)
        )

    def test_first_access_seeks(self):
        dev = self._device()
        req = dev.submit(0.0, "read", 100 * MB, file_id=1, offset=0)
        assert req.end == pytest.approx(0.01 + 1.0)
        assert dev.seek_count == 1

    def test_sequential_continuation_no_seek(self):
        dev = self._device()
        dev.submit(0.0, "read", 50 * MB, file_id=1, offset=0)
        dev.submit(0.0, "read", 50 * MB, file_id=1, offset=50 * MB)
        assert dev.seek_count == 1  # only the first access seeked

    def test_file_switch_seeks(self):
        dev = self._device()
        dev.submit(0.0, "read", MB, file_id=1, offset=0)
        dev.submit(0.0, "read", MB, file_id=2, offset=0)
        assert dev.seek_count == 2

    def test_offset_jump_seeks(self):
        dev = self._device()
        dev.submit(0.0, "read", MB, file_id=1, offset=0)
        dev.submit(0.0, "read", MB, file_id=1, offset=10 * MB)
        assert dev.seek_count == 2

    def test_interleaved_streams_thrash(self):
        """Alternating two sequential streams seeks on every request."""
        dev = self._device()
        for i in range(4):
            dev.submit(0.0, "read", MB, file_id=1, offset=i * MB)
            dev.submit(0.0, "write", MB, file_id=2, offset=i * MB)
        assert dev.seek_count == 8

    def test_ram_never_seeks(self):
        dev = Device(DeviceSpec.ram())
        dev.submit(0.0, "read", MB, file_id=1, offset=0)
        dev.submit(0.0, "read", MB, file_id=9, offset=123)
        assert dev.seek_count == 0

    def test_read_write_bandwidths_differ(self):
        dev = Device(
            DeviceSpec("d", seek_time=0.0, read_bandwidth=100 * MB,
                       write_bandwidth=50 * MB)
        )
        r = dev.submit(0.0, "read", 100 * MB, file_id=1, offset=0)
        w = dev.submit(r.end, "write", 100 * MB, file_id=1, offset=0)
        assert r.end - r.start == pytest.approx(1.0)
        assert w.end - w.start == pytest.approx(2.0)

    def test_byte_accounting_passthrough(self):
        dev = self._device()
        dev.submit(0.0, "read", 100, file_id=1, offset=0)
        dev.submit(0.0, "write", 200, file_id=1, offset=100)
        assert dev.bytes_read == 100
        assert dev.bytes_written == 200

    def test_busy_time(self):
        dev = self._device(seek=0.0)
        dev.submit(0.0, "read", 100 * MB, file_id=1, offset=0)
        assert dev.busy_time_until(0.5) == pytest.approx(0.5)
        assert dev.busy_time_until(2.0) == pytest.approx(1.0)


class TestDeviceCapacity:
    def _device(self, capacity=None):
        return Device(
            DeviceSpec("d0", seek_time=0.0, read_bandwidth=MB,
                       write_bandwidth=MB, capacity=capacity)
        )

    def test_unbounded_by_default(self):
        dev = self._device()
        assert dev.available_bytes is None
        dev.reserve(10**12)  # never raises without a capacity
        assert dev.used_bytes == 10**12

    def test_reserve_and_release(self):
        dev = self._device(capacity=1000)
        dev.reserve(400)
        assert dev.used_bytes == 400
        assert dev.available_bytes == 600
        dev.release(150)
        assert dev.used_bytes == 250
        dev.release(10**6)  # clamped, never negative
        assert dev.used_bytes == 0

    def test_out_of_space_message_names_device_and_sizes(self):
        """The single choke point reports device, requested and available."""
        dev = self._device(capacity=100)
        dev.reserve(40)
        with pytest.raises(OutOfSpaceError) as exc_info:
            dev.reserve(200)
        msg = str(exc_info.value)
        assert "'d0'" in msg
        assert "200 bytes" in msg  # requested
        assert "60 bytes" in msg  # available
        assert dev.used_bytes == 40  # failed reserve charges nothing

    def test_out_of_space_is_a_storage_error(self):
        dev = self._device(capacity=1)
        with pytest.raises(StorageError):
            dev.reserve(2)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(StorageError):
            DeviceSpec("d", seek_time=0.0, read_bandwidth=1,
                       write_bandwidth=1, capacity=0)

    def test_used_bytes_survive_snapshot_restore(self):
        dev = self._device(capacity=1000)
        dev.reserve(300)
        snap = dev.snapshot()
        dev.reserve(500)
        dev.restore(snap)
        assert dev.used_bytes == 300
        assert dev.available_bytes == 700
