"""Tests for vertex-interval partitioning (paper §II-B invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.graph.partition import VertexPartitioning, plan_partition_count
from repro.utils.units import MB


class TestPartitioning:
    def test_ranges_cover_disjointly(self):
        part = VertexPartitioning(100, 7)
        seen = []
        for p in part:
            lo, hi = part.range_of(p)
            seen.extend(range(lo, hi))
        assert seen == list(range(100))

    def test_balanced_sizes(self):
        part = VertexPartitioning(100, 7)
        sizes = [part.size_of(p) for p in part]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100

    def test_single_partition(self):
        part = VertexPartitioning(10, 1)
        assert part.range_of(0) == (0, 10)

    def test_count_clamped_to_vertices(self):
        part = VertexPartitioning(3, 10)
        assert part.count == 3

    def test_partition_of_matches_ranges(self):
        part = VertexPartitioning(50, 4)
        ids = np.arange(50)
        owners = part.partition_of(ids)
        for p in part:
            lo, hi = part.range_of(p)
            assert (owners[lo:hi] == p).all()

    def test_partition_of_boundaries(self):
        part = VertexPartitioning(10, 2)
        assert part.partition_of(np.array([0])).tolist() == [0]
        assert part.partition_of(np.array([4])).tolist() == [0]
        assert part.partition_of(np.array([5])).tolist() == [1]
        assert part.partition_of(np.array([9])).tolist() == [1]

    def test_bad_args(self):
        with pytest.raises(PartitionError):
            VertexPartitioning(0, 1)
        with pytest.raises(PartitionError):
            VertexPartitioning(10, 0)
        with pytest.raises(PartitionError):
            VertexPartitioning(10, 2).range_of(2)

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_disjoint_cover(self, n, count):
        part = VertexPartitioning(n, count)
        boundaries = part.boundaries
        assert boundaries[0] == 0
        assert boundaries[-1] == n
        assert (np.diff(boundaries) >= 1).all()


class TestSplitByPartition:
    def test_groups_updates_by_owner(self):
        part = VertexPartitioning(100, 4)
        rng = np.random.default_rng(1)
        dst = rng.integers(0, 100, 1000)
        payload = rng.integers(0, 100, 1000).astype(np.uint32)
        total = 0
        for p, (dst_p, payload_p) in part.split_by_partition(dst, payload):
            lo, hi = part.range_of(p)
            assert ((dst_p >= lo) & (dst_p < hi)).all()
            assert len(dst_p) == len(payload_p)
            total += len(dst_p)
        assert total == 1000

    def test_stable_within_partition(self):
        """Update order within a partition must follow stream order (the
        first update to reach a vertex claims it)."""
        part = VertexPartitioning(10, 2)
        dst = np.array([1, 6, 2, 1, 7, 0])
        tag = np.arange(6)
        groups = dict(part.split_by_partition(dst, tag))
        assert groups[0][1].tolist() == [0, 2, 3, 5]  # original order kept
        assert groups[1][1].tolist() == [1, 4]

    def test_empty_partitions_skipped(self):
        part = VertexPartitioning(100, 10)
        dst = np.array([5, 5, 5])
        groups = list(part.split_by_partition(dst))
        assert len(groups) == 1
        assert groups[0][0] == 0

    def test_empty_input(self):
        part = VertexPartitioning(10, 2)
        assert list(part.split_by_partition(np.array([], dtype=np.int64))) == []


class TestPlanPartitionCount:
    def test_fits_in_budget(self):
        # 1M vertices * 8B = 8MB of vertex state; 25% of 16MB = 4MB budget.
        count = plan_partition_count(10**6, 8, 16 * MB, 0.25)
        assert count == 2

    def test_minimum_one(self):
        assert plan_partition_count(10, 8, 16 * MB) == 1

    def test_scales_inversely_with_memory(self):
        big = plan_partition_count(10**6, 8, 32 * MB, 0.25)
        small = plan_partition_count(10**6, 8, 8 * MB, 0.25)
        assert small > big

    def test_rejects_infeasible(self):
        with pytest.raises(PartitionError):
            plan_partition_count(10**9, 8, 1024, 0.25, max_partitions=100)

    def test_rejects_bad_budget(self):
        with pytest.raises(PartitionError):
            plan_partition_count(10, 8, 0)
        with pytest.raises(PartitionError):
            plan_partition_count(10, 8, MB, vertex_memory_fraction=0.0)
