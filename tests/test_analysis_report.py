"""Tests for the programmatic reproduction report + CLI subcommand."""

import pytest

from repro.analysis.harness import ExperimentRunner
from repro.analysis.report import ALL_FIGURES, build_report
from repro.cli import main
from repro.errors import ConfigError

DIV = 4096


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(divisor=DIV)


class TestBuildReport:
    def test_full_report_renders(self, runner):
        report = build_report(runner, datasets=["rmat25"])
        assert report.startswith("# FastBFS reproduction report")
        for marker in ("Fig. 1", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                       "Fig. 8", "Fig. 9", "Fig. 10", "Table I", "Table II"):
            assert marker in report, marker
        assert f"scale divisor: {DIV}" in report

    def test_subset(self, runner):
        report = build_report(runner, figures=["fig4"], datasets=["rmat25"])
        assert "Fig. 4" in report
        assert "Fig. 9" not in report

    def test_unknown_figure(self, runner):
        with pytest.raises(ConfigError):
            build_report(runner, figures=["fig99"])

    def test_speedup_rows_include_paper_ranges(self, runner):
        report = build_report(runner, figures=["fig4"], datasets=["rmat25"])
        assert "1.6-2.1x" in report
        assert "2.4-3.9x" in report


class TestCliReproduce:
    def test_stdout(self, capsys):
        assert main([
            "reproduce", "--figures", "table1", "--divisor", str(DIV),
        ]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_file_output(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main([
            "reproduce", "--figures", "fig1", "--datasets", "rmat25",
            "--divisor", str(DIV), "--output", str(out_file),
        ]) == 0
        assert "Fig. 1" in out_file.read_text()
        assert "wrote report" in capsys.readouterr().out
