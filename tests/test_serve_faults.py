"""Resilient-serving tests: faults, recovery, breaker, deadlines, drain.

Boots real :class:`~repro.serve.app.GraphService` instances whose
registered machines carry :class:`~repro.storage.faults.FaultPlan`s, and
asserts the serving resilience contract end to end over HTTP:

* success-after-retry responses are bit-identical to fault-free runs;
* exhausted flushes surface as typed 503s (never hangs, never drops);
* the per-graph circuit breaker walks healthy → degraded → quarantined
  deterministically and quarantined requests never touch the machine;
* per-request deadlines expire as typed 504s at dequeue and post-flush;
* client disconnects mid-response are counted, not crashed on;
* ``drain_pending`` / ``shutdown(drain=True)`` fulfil every queued
  ticket with a typed error even when every flush faults.

The out-of-core configuration mirrors the chaos harness: faults fire on
simulated *device* I/O, so graphs must not be served from memory
(``allow_in_memory=False``).
"""

from __future__ import annotations

import json
import socket
import struct
import threading

import pytest

from repro.core.config import FastBFSConfig
from repro.errors import (
    DeadlineExceededError,
    FlushFailedError,
    GraphQuarantinedError,
)
from repro.graph.generators import rmat_graph
from repro.obs.exporters import parse_prometheus
from repro.obs.hostprof import ManualHostClock
from repro.serve import AdmissionController, BreakerPolicy, GraphService
from repro.storage.device import DeviceSpec
from repro.storage.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.storage.machine import IOReport, Machine, merge_reports
from repro.utils.units import KB, MB

from tests.test_serve import request

GRAPH = rmat_graph(scale=8, edge_factor=8, seed=7)

#: Same shape the chaos harness serves under: tiny buffers, two disks,
#: out-of-core always, I/O-level retries on.
CONFIG = FastBFSConfig(
    edge_buffer_bytes=2 * KB,
    update_buffer_bytes=1 * KB,
    stay_buffer_bytes=1 * KB,
    num_partitions=4,
    allow_in_memory=False,
    rotate_streams=True,
    retry=RetryPolicy(max_attempts=4),
)

CRASH_PLAN = FaultPlan(
    specs=(
        FaultSpec(kind="crash", role="vertices", probability=1.0, max_fires=1),
    ),
    seed=11,
)

BROKEN_PLAN = FaultPlan(
    specs=(FaultSpec(kind="persistent_error", probability=1.0),),
    seed=11,
)


def make_service(fault_plan=None, **kwargs):
    return GraphService(
        port=0,
        engine="fastbfs",
        config=CONFIG,
        machine_factory=lambda: Machine(
            [DeviceSpec.hdd("hdd0"), DeviceSpec.hdd("hdd1")],
            memory=2 * MB,
            cores=4,
        ),
        fault_plan=fault_plan,
        **kwargs,
    ).start()


def wait_until(predicate, attempts=2000, interval=0.005):
    gate = threading.Event()
    for _ in range(attempts):
        if predicate():
            return True
        gate.wait(interval)
    return predicate()


class TestFaultWiring:
    def test_registry_attaches_plan_after_clean_staging(self):
        svc = make_service(fault_plan=CRASH_PLAN)
        try:
            entry = svc.register("g", GRAPH)
            assert entry.fault_plan is CRASH_PLAN
            injector = entry.machine.fault_injector
            assert injector is not None
            # Staging ran before the plan was attached: nothing fired yet.
            assert injector.faults_injected == 0
            status, _, stats = request(svc, "GET", "/graphs/g/stats")
            assert status == 200
            assert stats["fault_plan"] == {"specs": 1, "seed": 11}
            assert stats["health"]["state"] == "healthy"
        finally:
            svc.shutdown()


class TestRecoveryBitIdentity:
    def test_crash_recovery_is_bit_identical_over_http(self):
        clean = make_service()
        try:
            clean.register("g", GRAPH)
            status, _, want = request(
                clean, "POST", "/graphs/g/bfs", payload={"root": 3}
            )
            assert status == 200
        finally:
            clean.shutdown()

        svc = make_service(fault_plan=CRASH_PLAN)
        try:
            entry = svc.register("g", GRAPH)
            status, _, body = request(
                svc, "POST", "/graphs/g/bfs", payload={"root": 3}
            )
            assert status == 200
            assert body["flush"]["mode"] == "batched"
            assert body["result"] == want["result"]
            injector = entry.machine.fault_injector
            assert injector.total("fault_crash") == 1
            assert injector.total("crash_recoveries") == 1
            assert entry.health.state == "healthy"
            # /metrics still reconciles exactly: the crash fired, the
            # session recovered, and the flush report is the single
            # source of device truth.
            _, _, metrics_text = request(svc, "GET", "/metrics")
            registry = parse_prometheus(metrics_text)
            merged = merge_reports(
                [entry.staged.staging_report, IOReport.from_dict(body["report"])]
            )
            assert registry.reconcile(merged) == []
            assert registry.total("fault_crash_total", graph="g") == 1.0
            assert registry.total("crash_recoveries_total", graph="g") == 1.0
        finally:
            svc.shutdown()


class TestBreakerOverHTTP:
    def test_unrecoverable_flushes_degrade_then_quarantine(self):
        clock = ManualHostClock()
        svc = make_service(fault_plan=BROKEN_PLAN, clock=clock)
        try:
            entry = svc.register("g", GRAPH)
            # Failures 1..3: typed 503 flush_failed (batched retries and
            # the serial fallback both exhausted), breaker marching on.
            for i, want_state in enumerate(
                ("degraded", "degraded", "quarantined")
            ):
                status, headers, body = request(
                    svc, "POST", "/graphs/g/bfs", payload={"root": 3}
                )
                assert status == 503, body
                assert body["error"]["type"] == "flush_failed"
                assert "Retry-After" in headers
                assert entry.health.state == want_state
            # Quarantined: rejected up front, machine untouched.
            counts_before = entry.machine.fault_injector.counts_snapshot()
            status, headers, body = request(
                svc, "POST", "/graphs/g/bfs", payload={"root": 3}
            )
            assert status == 503
            assert body["error"]["type"] == "graph_quarantined"
            assert float(headers["Retry-After"]) > 0
            assert entry.machine.fault_injector.counts_snapshot() == counts_before
            # Readiness surfaces per graph without touching the machine.
            status, _, health = request(svc, "GET", "/healthz")
            assert health["graphs"]["g"] == {
                "state": "quarantined", "ready": False,
            }
            # Cooldown elapses on the host clock -> probation half-open.
            clock.advance(entry.health.reopen_at - clock.now())
            status, _, body = request(
                svc, "POST", "/graphs/g/bfs", payload={"root": 3}
            )
            assert status == 503
            assert body["error"]["type"] == "flush_failed"
            assert entry.health.state == "quarantined"  # probe failed
            # The transition log is exact and typed.
            status, _, debug = request(svc, "GET", "/debug/health")
            walked = [
                (t["from"], t["to"]) for t in debug["graphs"]["g"]["transitions"]
            ]
            assert walked == [
                ("healthy", "degraded"),
                ("degraded", "quarantined"),
                ("quarantined", "probing"),
                ("probing", "quarantined"),
            ]
            counters = svc.controller(entry).counters()
            assert counters["serial_fallbacks"] == 4
            registry = svc.metrics_snapshot()
            assert registry.total("breaker_state", graph="g") == 3.0
            assert registry.total("breaker_transitions_total", graph="g") == 4.0
        finally:
            svc.shutdown()


class TestDeadlines:
    def test_bad_deadline_payloads_are_rejected(self):
        svc = make_service()
        try:
            svc.register("g", GRAPH)
            for bad in (-5, 0, "fast", True):
                status, _, body = request(
                    svc, "POST", "/graphs/g/bfs",
                    payload={"root": 3, "deadline_ms": bad},
                )
                assert status == 400
                assert body["error"]["type"] == "bad_request"
        finally:
            svc.shutdown()

    def test_queue_expiry_is_a_typed_504(self):
        clock = ManualHostClock()
        svc = make_service(clock=clock)
        try:
            entry = svc.register("g", GRAPH)
            controller = svc.controller(entry)
            controller.hold()
            outcomes = {}

            def fire(i):
                outcomes[i] = request(
                    svc, "POST", "/graphs/g/bfs",
                    payload={"root": 3, "deadline_ms": 50.0},
                )

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(3)
            ]
            for t in threads:
                t.start()
            assert wait_until(lambda: controller.depth == 3)
            clock.advance(0.2)
            controller.release()
            for t in threads:
                t.join()
            for status, headers, body in outcomes.values():
                assert status == 504
                assert body["error"]["type"] == "deadline_exceeded"
            assert controller.counters()["deadline_expired"] == 3
            assert controller.depth == 0
            registry = svc.metrics_snapshot()
            assert registry.total("deadline_exceeded_total", graph="g") == 3.0
        finally:
            svc.shutdown()

    def test_default_deadline_applies_server_wide(self):
        clock = ManualHostClock()
        svc = make_service(clock=clock, default_deadline_ms=50.0)
        try:
            entry = svc.register("g", GRAPH)
            controller = svc.controller(entry)
            controller.hold()
            out = {}
            t = threading.Thread(
                target=lambda: out.update(
                    r=request(svc, "POST", "/graphs/g/bfs", payload={"root": 3})
                )
            )
            t.start()
            assert wait_until(lambda: controller.depth == 1)
            clock.advance(0.2)
            controller.release()
            t.join()
            status, _, body = out["r"]
            assert status == 504
            assert body["error"]["type"] == "deadline_exceeded"
        finally:
            svc.shutdown()

    def test_post_flush_expiry_never_drops_the_ticket(self):
        clock = ManualHostClock()
        svc = make_service(clock=clock)
        try:
            entry = svc.register("g", GRAPH)
            controller = AdmissionController(
                entry,
                clock=clock,
                metrics_sink=lambda registry: clock.advance(10.0),
            )
            ticket = controller.offer("late", 3, deadline_ms=1000.0)
            controller.flush()
            assert ticket.done.is_set()
            assert isinstance(ticket.error, DeadlineExceededError)
            assert "post-flush" in str(ticket.error)
            assert controller.counters()["deadline_expired"] == 1
        finally:
            svc.shutdown()


class TestClientDisconnect:
    def test_mid_response_reset_is_counted_not_crashed_on(self):
        svc = make_service()
        try:
            svc.register("g", GRAPH)
            payload = json.dumps({"root": 3}).encode("utf-8")
            raw = (
                b"POST /graphs/g/bfs HTTP/1.1\r\n"
                b"Host: 127.0.0.1\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(payload)}\r\n\r\n".encode("utf-8")
                + payload
            )
            sock = socket.create_connection(("127.0.0.1", svc.port))
            try:
                sock.sendall(raw)
                # RST on close: the handler's response write fails with
                # BrokenPipeError/ConnectionResetError mid-send.
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            finally:
                sock.close()
            assert wait_until(
                lambda: svc.metrics_snapshot().total("client_disconnect_total")
                >= 1.0
            ), "disconnect was never counted"
            # The service is still fully alive afterwards.
            status, _, body = request(
                svc, "POST", "/graphs/g/bfs", payload={"root": 3}
            )
            assert status == 200
        finally:
            svc.shutdown()


class TestDrainUnderFaults:
    def test_drain_pending_types_every_ticket_and_empties_the_queue(self):
        svc = make_service(
            fault_plan=BROKEN_PLAN,
            # Keep the breaker out of the way: this test pins down drain
            # semantics, not quarantine (covered above).
            breaker_policy=BreakerPolicy(quarantine_after=100),
        )
        try:
            entry = svc.register("g", GRAPH)
            controller = svc.controller(entry)
            controller.hold()
            tickets = [
                controller.offer(f"drain-{i}", 3) for i in range(3)
            ]
            assert controller.depth == 3
            controller.release()
            assert controller.drain_pending() == 3
            assert controller.depth == 0
            for ticket in tickets:
                assert ticket.done.is_set()
                assert isinstance(ticket.error, FlushFailedError)
            with pytest.raises(FlushFailedError):
                controller.submit("one-more", 3)
        finally:
            svc.shutdown(drain=True)  # must not hang

    def test_quarantined_offer_is_rejected_before_the_queue(self):
        svc = make_service(fault_plan=BROKEN_PLAN)
        try:
            entry = svc.register("g", GRAPH)
            for _ in range(3):
                with pytest.raises(FlushFailedError):
                    svc.controller(entry).submit("x", 3)
            assert entry.health.state == "quarantined"
            with pytest.raises(GraphQuarantinedError) as exc:
                svc.controller(entry).offer("y", 3)
            assert exc.value.retry_after > 0
            assert svc.controller(entry).depth == 0
        finally:
            svc.shutdown()
