"""Tests for the graph statistics / dataset-fidelity module."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    grid_graph,
    path_graph,
    powerlaw_graph,
    random_graph,
    rmat_graph,
    star_graph,
)
from repro.graph.stats import (
    degree_histogram,
    degree_stats,
    effective_diameter,
    summarize,
)


class TestDegreeStats:
    def test_uniform_low_gini(self):
        stats = degree_stats(np.full(100, 5))
        assert stats.gini == pytest.approx(0.0, abs=0.02)
        assert stats.mean == 5
        assert stats.skew_ratio == 1.0

    def test_hub_high_gini(self):
        degrees = np.zeros(100)
        degrees[0] = 1000
        stats = degree_stats(degrees)
        assert stats.gini > 0.95
        assert stats.zero_fraction == 0.99

    def test_rmat_heavier_than_random(self):
        rmat = degree_stats(rmat_graph(scale=11, edge_factor=8, seed=1).out_degrees())
        rand = degree_stats(random_graph(2048, 16384, seed=1).out_degrees())
        assert rmat.gini > rand.gini
        assert rmat.skew_ratio > rand.skew_ratio

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            degree_stats(np.array([]))

    def test_all_zero(self):
        stats = degree_stats(np.zeros(10))
        assert stats.gini == 0.0
        assert stats.zero_fraction == 1.0


class TestDegreeHistogram:
    def test_counts_sum_to_vertices(self):
        g = rmat_graph(scale=9, edge_factor=8, seed=2)
        hist = degree_histogram(g.out_degrees())
        assert sum(hist.values()) == g.num_vertices

    def test_zero_bin(self):
        hist = degree_histogram(np.array([0, 0, 3, 9]))
        assert hist[0] == 2

    def test_all_zero_degrees(self):
        hist = degree_histogram(np.zeros(5, dtype=int))
        assert hist == {0: 5}


class TestEffectiveDiameter:
    def test_path_diameter(self):
        g = path_graph(50)
        # From any sampled root the deepest reach is most of the path.
        d = effective_diameter(g, quantile=1.0, sample_roots=50, seed=1)
        assert d >= 10

    def test_grid_larger_than_rmat(self):
        grid = grid_graph(40, 40)
        rmat = rmat_graph(scale=10, edge_factor=16, seed=1)
        assert effective_diameter(grid) > effective_diameter(rmat)

    def test_star(self):
        d = effective_diameter(star_graph(100), quantile=1.0)
        assert d == 1.0

    def test_quantile_validation(self):
        with pytest.raises(GraphError):
            effective_diameter(path_graph(5), quantile=0.0)

    def test_no_out_edges(self):
        g = star_graph(5, out=False)
        # Leaves have out-degree 1 (to hub); hub has none; still works.
        assert effective_diameter(g) >= 0.0


class TestSummarize:
    def test_fields(self):
        g = powerlaw_graph(500, 5000, out_exponent=2.0, seed=3)
        summary = summarize(g)
        assert summary["vertices"] == 500
        assert summary["edges"] == 5000
        # In-degrees (exponent 1.9, tighter head) are more concentrated than
        # the milder out-degree law.
        assert summary["in_degree"].gini > summary["out_degree"].gini
        assert summary["effective_diameter"] > 0
