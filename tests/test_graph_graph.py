"""Tests for the Graph container."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.types import EDGE_DTYPE


class TestConstruction:
    def test_from_arrays(self):
        g = Graph.from_arrays(4, [0, 1, 2], [1, 2, 3])
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.nbytes == 3 * EDGE_DTYPE.itemsize

    def test_from_edge_pairs(self):
        g = Graph.from_edge_pairs(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2

    def test_from_empty_pairs(self):
        g = Graph.from_edge_pairs(2, [])
        assert g.num_edges == 0

    def test_endpoint_out_of_range(self):
        with pytest.raises(GraphError):
            Graph.from_arrays(2, [0], [5])

    def test_zero_vertices_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_arrays(0, [], [])

    def test_wrong_dtype_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, np.zeros(3, dtype=np.int64))


class TestDegrees:
    def test_out_degrees(self):
        g = Graph.from_edge_pairs(4, [(0, 1), (0, 2), (1, 2)])
        assert g.out_degrees().tolist() == [2, 1, 0, 0]

    def test_in_degrees(self):
        g = Graph.from_edge_pairs(4, [(0, 1), (0, 2), (1, 2)])
        assert g.in_degrees().tolist() == [0, 1, 2, 0]

    def test_degrees_cover_all_vertices(self):
        g = Graph.from_edge_pairs(10, [(0, 1)])
        assert len(g.out_degrees()) == 10


class TestTransforms:
    def test_symmetrized_doubles_edges(self):
        g = Graph.from_edge_pairs(3, [(0, 1), (1, 2)])
        s = g.symmetrized()
        assert s.num_edges == 4
        assert not s.directed
        pairs = {(int(e["src"]), int(e["dst"])) for e in s.edges}
        assert (1, 0) in pairs and (2, 1) in pairs

    def test_deduplicated(self):
        g = Graph.from_edge_pairs(3, [(0, 1), (0, 1), (1, 2), (0, 1)])
        d = g.deduplicated()
        assert d.num_edges == 2

    def test_deduplicated_drops_self_loops(self):
        g = Graph.from_edge_pairs(3, [(0, 0), (0, 1), (1, 1)])
        d = g.deduplicated(drop_self_loops=True)
        assert d.num_edges == 1

    def test_dedup_preserves_stream_order(self):
        g = Graph.from_edge_pairs(4, [(2, 3), (0, 1), (2, 3)])
        d = g.deduplicated()
        assert d.edges["src"].tolist() == [2, 0]

    def test_repr(self):
        g = Graph.from_edge_pairs(3, [(0, 1)], name="tiny")
        assert "tiny" in repr(g)
        assert "V=3" in repr(g)
