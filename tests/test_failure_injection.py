"""Failure-path tests: forced cancellations, exhausted buffer pools,
starved devices — correctness must survive every degraded mode.
"""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root, small_fastbfs_config

from repro.algorithms.reference import bfs_levels
from repro.core.engine import FastBFSEngine
from repro.graph.generators import rmat_graph
from repro.storage.device import DeviceSpec
from repro.storage.machine import Machine
from repro.utils.units import MB


def slow_write_machine(write_bandwidth=0.5 * MB, memory=2 * MB):
    """A machine whose writes crawl: stay files are never ready in time."""
    spec = DeviceSpec(
        "slow", seek_time=0.0, read_bandwidth=200 * MB,
        write_bandwidth=write_bandwidth,
    )
    return Machine([spec], memory=memory)


def slow_stay_disk_machine(write_bandwidth=64 * 1024, memory=2 * MB):
    """Disk 0 is normal; disk 1 (the stay target) barely writes.

    On a single disk the update drain barrier also flushes the queued stay
    writes (FIFO), so cancellation can only be forced when stays live on
    their own, slower device.
    """
    specs = [
        DeviceSpec.hdd("main"),
        DeviceSpec("slowstay", seek_time=0.0, read_bandwidth=200 * MB,
                   write_bandwidth=write_bandwidth),
    ]
    return Machine(specs, memory=memory)


class TestForcedCancellation:
    def test_zero_grace_with_slow_stay_disk_cancels(self, rmat12):
        root = hub_root(rmat12)
        ref = bfs_levels(rmat12, root)
        engine = FastBFSEngine(
            small_fastbfs_config(
                cancellation_grace=0.0, num_stay_buffers=64, stay_disk=1
            )
        )
        result = engine.run(rmat12, slow_stay_disk_machine(), root=root)
        assert result.extras["stay_cancellations"] > 0
        assert np.array_equal(result.levels, ref)

    def test_cancellation_falls_back_to_previous_file(self, rmat12):
        """After a cancel, the next iteration rescans the old edge file —
        more I/O than the happy path, same answer."""
        root = hub_root(rmat12)
        happy = FastBFSEngine(small_fastbfs_config()).run(
            rmat12, fresh_machine(), root=root
        )
        degraded = FastBFSEngine(
            small_fastbfs_config(
                cancellation_grace=0.0, num_stay_buffers=64, stay_disk=1
            )
        ).run(rmat12, slow_stay_disk_machine(), root=root)
        assert degraded.extras["stay_cancellations"] > 0
        assert degraded.edges_scanned >= happy.edges_scanned
        assert np.array_equal(degraded.levels, happy.levels)

    def test_nonempty_stays_all_cancelled(self, rmat12):
        """Pathological stay disk: only trivially-empty stay files swap in."""
        root = hub_root(rmat12)
        engine = FastBFSEngine(
            small_fastbfs_config(
                cancellation_grace=0.0, num_stay_buffers=1024, stay_disk=1
            )
        )
        result = engine.run(
            rmat12, slow_stay_disk_machine(write_bandwidth=1024), root=root
        )
        assert np.array_equal(result.levels, bfs_levels(rmat12, root))
        assert result.extras["stay_cancellations"] > 0
        # Edge volume never shrinks via a non-empty swap: scans match the
        # untrimmed engine until partitions converge outright.
        untrimmed = FastBFSEngine(
            small_fastbfs_config(trim_enabled=False)
        ).run(rmat12, fresh_machine(), root=root)
        assert result.edges_scanned >= untrimmed.edges_scanned


class TestBufferPoolExhaustion:
    def test_single_buffer_pool_still_correct(self, rmat12):
        root = hub_root(rmat12)
        ref = bfs_levels(rmat12, root)
        engine = FastBFSEngine(
            small_fastbfs_config(num_stay_buffers=1, stay_buffer_bytes=256)
        )
        result = engine.run(rmat12, fresh_machine(), root=root)
        assert np.array_equal(result.levels, ref)
        assert result.extras["stay_pool_waits"] > 0

    def test_pool_waits_slow_the_run(self, rmat12):
        root = hub_root(rmat12)
        starved = FastBFSEngine(
            small_fastbfs_config(num_stay_buffers=1, stay_buffer_bytes=256)
        ).run(rmat12, slow_write_machine(write_bandwidth=2 * MB), root=root)
        roomy = FastBFSEngine(
            small_fastbfs_config(num_stay_buffers=64, stay_buffer_bytes=256)
        ).run(rmat12, slow_write_machine(write_bandwidth=2 * MB), root=root)
        assert starved.extras["stay_pool_waits"] > roomy.extras["stay_pool_waits"]
        assert starved.execution_time >= roomy.execution_time

    def test_tunable_buffers_avoid_the_wait(self, rmat12):
        """Paper §III: 'user can utilize larger memory space and more edge
        buffers to avoid the first condition'."""
        root = hub_root(rmat12)
        result = FastBFSEngine(
            small_fastbfs_config(num_stay_buffers=256, stay_buffer_bytes=8192)
        ).run(rmat12, fresh_machine(), root=root)
        assert result.extras["stay_pool_waits"] == 0


class TestDegradedHardware:
    def test_tiny_memory_many_partitions(self, rmat12):
        root = hub_root(rmat12)
        ref = bfs_levels(rmat12, root)
        machine = fresh_machine(memory=48 * 1024)
        engine = FastBFSEngine(
            small_fastbfs_config(num_partitions=None)  # plan from memory
        )
        result = engine.run(rmat12, machine, root=root)
        assert result.extras["partitions"] >= 2
        assert np.array_equal(result.levels, ref)

    def test_single_core_machine(self, rmat10):
        root = hub_root(rmat10)
        machine = fresh_machine(cores=1)
        result = FastBFSEngine(small_fastbfs_config(threads=8)).run(
            rmat10, machine, root=root
        )
        assert np.array_equal(result.levels, bfs_levels(rmat10, root))

    def test_asymmetric_disks(self, rmat10):
        """Disk 1 much slower than disk 0: rotation still correct."""
        root = hub_root(rmat10)
        specs = [
            DeviceSpec.hdd("fast"),
            DeviceSpec("slowdisk", seek_time=0.02, read_bandwidth=10 * MB,
                       write_bandwidth=5 * MB),
        ]
        machine = Machine(specs, memory=2 * MB)
        result = FastBFSEngine(
            small_fastbfs_config(rotate_streams=True)
        ).run(rmat10, machine, root=root)
        assert np.array_equal(result.levels, bfs_levels(rmat10, root))


class TestEndOfRunCancellation:
    """StayStreamManager.finalize: terminal discards, traced and counted."""

    def _manager(self, tracer=None):
        from repro.core.staystream import StayStreamManager
        from repro.obs.tracer import NULL_TRACER
        from repro.sim.clock import SimClock
        from repro.storage.device import Device
        from repro.storage.vfs import VFS

        clock = SimClock()
        device = Device(DeviceSpec.hdd("d0"))
        vfs = VFS()
        if tracer is not None:
            tracer.bind_clock(clock)
        mgr = StayStreamManager(
            clock, vfs, device, small_fastbfs_config(),
            tracer=tracer if tracer is not None else NULL_TRACER,
        )
        return mgr, vfs

    def _edges(self, n):
        from repro.graph.types import make_edges

        idx = np.arange(n, dtype=np.uint32)
        return make_edges(idx, idx)

    def test_finalize_discards_every_outstanding_writer(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        mgr, vfs = self._manager(tracer=tracer)
        with tracer.span("query"):
            for p in (0, 1):
                mgr.open(p, iteration=1)
                mgr.append(p, self._edges(40))
                mgr.finish_partition(p)
            mgr.open(2, iteration=1)  # still current, not yet finished
            mgr.append(2, self._edges(8))
            mgr.finalize()
        assert mgr.stats.end_of_run_discards == 3
        assert mgr.pending_partitions == {}
        assert mgr.current(2) is None
        # Discarded stay files are gone from the namespace.
        assert [n for n in vfs.names() if n.startswith("stay:")] == []
        cancels = [s for s in tracer.spans if s.name == "stay_cancel"]
        assert len(cancels) == 3
        assert all(s.attrs["end_of_run"] is True for s in cancels)
        assert all(s.attrs["reason"] == "end_of_run" for s in cancels)

    def test_finalize_on_empty_manager_is_a_noop(self):
        mgr, _ = self._manager()
        mgr.finalize()
        assert mgr.stats.end_of_run_discards == 0
        assert mgr.stats.cancellations == 0

    def test_run_reconciles_cancellations_with_spans(self, rmat12):
        """StayStats.cancellations == mid-run stay_cancel spans, and
        end-of-run discards are traced separately — the two countings
        always agree with the extras the engine reports."""
        from repro.obs.tracer import Tracer

        root = hub_root(rmat12)
        machine = slow_stay_disk_machine()
        machine.attach_tracer(Tracer())
        engine = FastBFSEngine(
            small_fastbfs_config(
                cancellation_grace=0.0, num_stay_buffers=64, stay_disk=1
            )
        )
        result = engine.run(rmat12, machine, root=root)
        assert result.extras["stay_cancellations"] > 0
        cancels = [s for s in machine.tracer.spans if s.name == "stay_cancel"]
        mid_run = [s for s in cancels if s.attrs["end_of_run"] is False]
        end_of_run = [s for s in cancels if s.attrs["end_of_run"] is True]
        assert len(mid_run) == result.extras["stay_cancellations"]
        assert len(end_of_run) == result.extras["stay_end_of_run_discards"]
        assert {s.attrs["reason"] for s in mid_run} <= {
            "not_ready", "write_failure", "checksum_mismatch"
        }
        assert np.array_equal(result.levels, bfs_levels(rmat12, root))
