"""Tests for stream readers/writers, prefetch overlap, async stay writer."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.graph.types import EDGE_DTYPE, make_edges
from repro.sim.clock import SimClock
from repro.storage.device import Device, DeviceSpec
from repro.storage.streams import AsyncStreamWriter, StreamReader, StreamWriter
from repro.storage.vfs import VFS
from repro.utils.units import MB

RECORD = EDGE_DTYPE.itemsize  # 8 bytes


def edges(n, start=0):
    return make_edges(
        np.arange(start, start + n) % 2**32, np.arange(start, start + n) % 2**32
    )


@pytest.fixture
def setup():
    clock = SimClock()
    device = Device(
        DeviceSpec("d", seek_time=0.0, read_bandwidth=100 * MB, write_bandwidth=100 * MB)
    )
    vfs = VFS()
    return clock, device, vfs


class TestStreamReader:
    def test_yields_all_records_in_order(self, setup):
        clock, device, vfs = setup
        f = vfs.create("f", device)
        f.append_records(edges(1000))
        f.seal()
        reader = StreamReader(clock, f, buffer_bytes=64 * RECORD)
        out = np.concatenate(list(reader))
        assert np.array_equal(out, f.records())

    def test_buffer_granularity(self, setup):
        clock, device, vfs = setup
        f = vfs.create("f", device)
        f.append_records(edges(100))
        f.seal()
        reader = StreamReader(clock, f, buffer_bytes=32 * RECORD)
        sizes = [len(buf) for buf in reader]
        assert sizes == [32, 32, 32, 4]
        assert reader.buffers_read == 4

    def test_empty_file_yields_nothing(self, setup):
        clock, device, vfs = setup
        f = vfs.create("f", device)
        f.seal()
        assert list(StreamReader(clock, f, buffer_bytes=1024)) == []
        assert clock.now == 0.0  # no I/O charged

    def test_time_charged_as_iowait(self, setup):
        clock, device, vfs = setup
        f = vfs.create("f", device)
        f.append_records(edges(1000))
        f.seal()
        list(StreamReader(clock, f, buffer_bytes=100 * RECORD))
        expected = 1000 * RECORD / (100 * MB)
        assert clock.now == pytest.approx(expected)
        assert clock.iowait_time == pytest.approx(expected)

    def test_prefetch_overlaps_compute(self, setup):
        """With prefetch depth 2, compute hides the next buffer's read."""
        clock, device, vfs = setup
        f = vfs.create("f", device)
        f.append_records(edges(2000))
        f.seal()
        buffer_records = 1000
        io_per_buffer = buffer_records * RECORD / (100 * MB)
        reader = StreamReader(clock, f, buffer_bytes=buffer_records * RECORD, prefetch=2)
        for _ in reader:
            clock.charge_compute(io_per_buffer * 2)  # compute-bound
        # Perfect overlap: total = first read + 2 computes.
        assert clock.now == pytest.approx(io_per_buffer * (1 + 4))
        assert clock.iowait_time == pytest.approx(io_per_buffer)

    def test_no_prefetch_serializes(self, setup):
        clock, device, vfs = setup
        f = vfs.create("f", device)
        f.append_records(edges(2000))
        f.seal()
        buffer_records = 1000
        io_per_buffer = buffer_records * RECORD / (100 * MB)
        reader = StreamReader(clock, f, buffer_bytes=buffer_records * RECORD, prefetch=1)
        for _ in reader:
            clock.charge_compute(io_per_buffer)
        # prefetch=1 still submits the next read before compute (inside
        # __next__), so the second buffer's read overlaps the first compute.
        assert clock.iowait_time <= 2 * io_per_buffer

    def test_rejects_bad_params(self, setup):
        clock, device, vfs = setup
        f = vfs.create("f", device)
        with pytest.raises(StorageError):
            StreamReader(clock, f, buffer_bytes=0)
        with pytest.raises(StorageError):
            StreamReader(clock, f, buffer_bytes=100, prefetch=0)


class TestStreamWriter:
    def test_buffered_appends_flush_on_threshold(self, setup):
        clock, device, vfs = setup
        f = vfs.create("f", device)
        w = StreamWriter(clock, f, buffer_bytes=10 * RECORD)
        w.append(edges(4))
        assert w.flush_count == 0
        w.append(edges(7, start=4))  # 11 records >= threshold
        assert w.flush_count == 1
        assert f.num_records == 11

    def test_close_writes_remainder(self, setup):
        clock, device, vfs = setup
        f = vfs.create("f", device)
        w = StreamWriter(clock, f, buffer_bytes=1000 * RECORD)
        w.append(edges(5))
        w.close()
        assert f.num_records == 5
        assert w.closed
        data = f.records()
        assert data["src"][4] == 4

    def test_append_empty_noop(self, setup):
        clock, device, vfs = setup
        f = vfs.create("f", device)
        w = StreamWriter(clock, f, buffer_bytes=8)
        w.append(edges(0))
        assert w.flush_count == 0

    def test_append_after_close_rejected(self, setup):
        clock, device, vfs = setup
        w = StreamWriter(clock, vfs.create("f", device), buffer_bytes=8)
        w.close()
        with pytest.raises(StorageError):
            w.append(edges(1))

    def test_writes_do_not_block_engine(self, setup):
        clock, device, vfs = setup
        w = StreamWriter(clock, vfs.create("f", device), buffer_bytes=RECORD)
        w.append(edges(10**6))  # 8MB write queued
        assert clock.now == 0.0  # fire-and-forget

    def test_drain_is_barrier(self, setup):
        clock, device, vfs = setup
        w = StreamWriter(clock, vfs.create("f", device), buffer_bytes=RECORD)
        w.append(edges(10**6))
        w.drain()
        assert clock.now == pytest.approx(8 * 10**6 / (100 * MB))
        assert clock.iowait_time > 0

    def test_drain_empty_writer(self, setup):
        clock, device, vfs = setup
        w = StreamWriter(clock, vfs.create("f", device), buffer_bytes=8)
        w.drain()
        assert clock.now == 0.0

    def test_records_written_counter(self, setup):
        clock, device, vfs = setup
        w = StreamWriter(clock, vfs.create("f", device), buffer_bytes=8)
        w.append(edges(3))
        w.append(edges(2))
        assert w.records_written == 5


class TestAsyncStreamWriter:
    def _writer(self, setup, num_buffers=2, buffer_records=100):
        clock, device, vfs = setup
        f = vfs.create("stay", device)
        return clock, AsyncStreamWriter(
            clock, f, buffer_bytes=buffer_records * RECORD, num_buffers=num_buffers
        )

    def test_fire_and_forget_until_pool_exhausted(self, setup):
        clock, w = self._writer(setup, num_buffers=2, buffer_records=10**5)
        w.append(edges(10**5))  # flush 1 in flight
        w.append(edges(10**5))  # flush 2 in flight
        assert clock.now == 0.0
        assert w.buffers_in_flight == 2
        w.append(edges(10**5))  # pool exhausted -> must wait for oldest
        assert clock.now > 0.0
        assert w.pool_waits == 1

    def test_ready_at_tracks_last_write(self, setup):
        clock, w = self._writer(setup, buffer_records=10**5)
        assert w.is_ready()
        w.append(edges(10**5))
        assert not w.is_ready()
        assert w.is_ready(grace=1.0)  # write lands well within a second
        clock.wait_until(w.ready_at())
        assert w.is_ready()

    def test_cancel_drops_queued_requests(self, setup):
        clock, w = self._writer(setup, num_buffers=4, buffer_records=10**5)
        for i in range(3):
            w.append(edges(10**5))
        dev = w.file.device
        before = dev.bytes_written
        dropped = w.cancel()
        # First request is in service at t=0... start==0 means it started.
        assert dropped >= 2
        assert w.cancelled
        assert dev.bytes_written < before

    def test_cancel_discards_unflushed_records(self, setup):
        clock, w = self._writer(setup, buffer_records=1000)
        w.append(edges(5))  # below threshold, never submitted
        w.cancel()
        # Cancelling closed the writer without writing the tail.
        assert w.closed

    def test_num_buffers_validation(self, setup):
        clock, device, vfs = setup
        with pytest.raises(StorageError):
            AsyncStreamWriter(clock, vfs.create("f", device), 8, num_buffers=0)

    def test_more_buffers_fewer_waits(self, setup):
        clock1, device1, vfs1 = SimClock(), Device(DeviceSpec.hdd()), VFS()
        w_small = AsyncStreamWriter(
            clock1, vfs1.create("a", device1), 100 * RECORD, num_buffers=1
        )
        clock2, device2, vfs2 = SimClock(), Device(DeviceSpec.hdd()), VFS()
        w_big = AsyncStreamWriter(
            clock2, vfs2.create("b", device2), 100 * RECORD, num_buffers=16
        )
        for i in range(8):
            w_small.append(edges(100))
            w_big.append(edges(100))
        assert w_big.pool_waits < w_small.pool_waits
        assert clock2.now <= clock1.now
