"""Tests for per-stream-role byte attribution."""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root, small_fastbfs_config

from repro.core.engine import FastBFSEngine
from repro.engines.xstream import XStreamEngine
from repro.sim.timeline import Timeline


class TestTimelineRoles:
    def test_role_of(self):
        assert Timeline.role_of("stay:p3:i2") == "stay"
        assert Timeline.role_of("vertices") == "vertices"
        assert Timeline.role_of("") == "other"

    def test_bytes_by_role_tracks(self):
        tl = Timeline()
        tl.schedule(0.0, 1.0, 100, "read", group="edges:p0")
        tl.schedule(0.0, 1.0, 50, "write", group="stay:p0:i0")
        tl.schedule(0.0, 1.0, 25, "read", group="edges:p1")
        roles = tl.bytes_by_role()
        assert roles[("edges", "read")] == 125
        assert roles[("stay", "write")] == 50

    def test_cancel_restores_role_bytes(self):
        tl = Timeline()
        tl.schedule(0.0, 10.0, 10, "read", group="edges:p0")
        tl.schedule(0.0, 5.0, 99, "write", group="stay:p0:i0")
        tl.cancel(0.0, lambda r: r.group.startswith("stay"))
        assert ("stay", "write") not in tl.bytes_by_role()


class TestEngineAttribution:
    @pytest.fixture(scope="class")
    def result_and_roles(self):
        graph_fixture = __import__("repro.graph.generators",
                                   fromlist=["rmat_graph"])
        graph = graph_fixture.rmat_graph(scale=10, edge_factor=8, seed=5)
        machine = fresh_machine()
        result = FastBFSEngine(small_fastbfs_config()).run(
            graph, machine, root=hub_root(graph)
        )
        return graph, result, result.report.bytes_by_role()

    def test_all_expected_roles_present(self, result_and_roles):
        graph, result, roles = result_and_roles
        for key in (
            ("input", "read"),
            ("partition", "write"),  # initial partitioning
            ("edges", "read"),
            ("updates", "write"),
            ("updates", "read"),
            ("stay", "write"),
            ("vertices", "read"),
            ("vertices", "write"),
        ):
            assert key in roles, key

    def test_roles_sum_to_totals(self, result_and_roles):
        graph, result, roles = result_and_roles
        read_total = sum(v for (_, kind), v in roles.items() if kind == "read")
        write_total = sum(v for (_, kind), v in roles.items() if kind == "write")
        assert read_total == result.report.bytes_read
        assert write_total == result.report.bytes_written

    def test_stay_write_attribution_matches_extras(self, result_and_roles):
        graph, result, roles = result_and_roles
        # Role accounting excludes cancelled-at-end requests, so it is at
        # most the engine's own count and within a few buffers of it.
        assert roles[("stay", "write")] <= result.extras["stay_bytes_written"]
        assert roles[("stay", "write")] > 0

    def test_input_read_is_one_graph_scan(self, result_and_roles):
        graph, result, roles = result_and_roles
        assert roles[("input", "read")] == graph.nbytes

    def test_xstream_has_no_stay_role(self, rmat10):
        machine = fresh_machine()
        XStreamEngine(small_fastbfs_config()).run(
            rmat10, machine, root=hub_root(rmat10)
        )
        roles = machine.report().bytes_by_role()
        assert not any(role == "stay" for role, _ in roles)
