"""End-to-end request tracing and telemetry endpoints (repro.serve).

Boots the real HTTP server in-process and locks down the observability
surface added on top of the query API:

* **request ids** — a valid client-supplied ``X-Request-Id`` is honored
  and echoed on every response (success *and* error); invalid ids are
  replaced with a server-generated one;
* **/debug/requests** — the bounded recent-request ring: summaries,
  full per-request span trees whose timing breakdown matches the
  ``X-Queue-Wait-Seconds``/``X-Sim-*`` response headers, 404s that name
  the ring capacity, and error requests landing in the ring too;
* **/debug/timeseries** — the rolling windowed snapshot;
* **stats golden schema** — ``/graphs/{name}/stats`` carries live
  admission counters and latency quantile summaries;
* **flush attribution** — 16 concurrent BFS requests: every response's
  request id appears in exactly one flush's ``query`` span attrs,
  leaders and coalesced followers alike.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.serve import GraphService
from repro.serve.app import REQUEST_ID_PATTERN
from repro.serve.debug import DEFAULT_REQUEST_LOG_CAPACITY

TINY_SPEC = "tiny@rmat:scale=8,edge_factor=8,seed=7"

SUMMARY_KEYS = {
    "request_id", "graph", "algorithm", "status", "flush_id",
    "flush_size", "queue_wait_seconds", "sim_execution_seconds", "error",
}
QUANTILE_KEYS = {"count", "sum", "p50", "p95", "p99"}


def request(service, method, path, payload=None, headers=None, timeout=120,
            retries=2):
    """One HTTP request; returns (status, headers dict, decoded body)."""
    body = json.dumps(payload) if payload is not None else None
    for attempt in range(retries + 1):
        conn = http.client.HTTPConnection(
            "127.0.0.1", service.port, timeout=timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers or {})
            resp = conn.getresponse()
            data = resp.read()
            resp_headers = dict(resp.getheaders())
            break
        except (ConnectionError, http.client.HTTPException):
            if attempt == retries:
                raise
        finally:
            conn.close()
    if resp_headers.get("Content-Type", "").startswith("application/json"):
        return resp.status, resp_headers, json.loads(data)
    return resp.status, resp_headers, data.decode("utf-8")


@pytest.fixture(scope="module")
def service():
    svc = GraphService(port=0, warmup=(TINY_SPEC,)).start()
    yield svc
    svc.shutdown()


def run_bfs(service, root, rid=None):
    headers = {"X-Request-Id": rid} if rid is not None else {}
    status, resp_headers, body = request(
        service, "POST", "/graphs/tiny/bfs", {"root": root}, headers=headers
    )
    assert status == 200, body
    return resp_headers, body


# ----------------------------------------------------------------------
# X-Request-Id: honored, validated, echoed
# ----------------------------------------------------------------------
class TestRequestIdHeader:
    def test_valid_client_id_is_honored_end_to_end(self, service):
        rid = "trace.A-01_frontend"
        assert REQUEST_ID_PATTERN.match(rid)
        headers, body = run_bfs(service, 3, rid=rid)
        assert headers["X-Request-Id"] == rid
        assert body["request_id"] == rid

    @pytest.mark.parametrize("bad", [
        "spaces are bad",
        "x" * 65,
        "no/slashes",
    ])
    def test_invalid_client_id_is_replaced(self, service, bad):
        status, headers, _ = request(
            service, "GET", "/healthz", headers={"X-Request-Id": bad}
        )
        assert status == 200
        assert headers["X-Request-Id"] != bad
        assert headers["X-Request-Id"].startswith("req-")

    def test_id_is_echoed_on_errors_too(self, service):
        rid = "err-echo-1"
        status, headers, body = request(
            service, "GET", "/no/such/route", headers={"X-Request-Id": rid}
        )
        assert status == 404
        assert headers["X-Request-Id"] == rid
        assert body["request_id"] == rid


# ----------------------------------------------------------------------
# /debug/requests: the recent-request ring
# ----------------------------------------------------------------------
class TestDebugRequests:
    def test_summaries_list_recent_requests_newest_first(self, service):
        run_bfs(service, 1, rid="ring-a")
        run_bfs(service, 2, rid="ring-b")
        status, _, body = request(service, "GET", "/debug/requests")
        assert status == 200
        summaries = body["requests"]
        ids = [s["request_id"] for s in summaries]
        assert ids.index("ring-b") < ids.index("ring-a")
        for s in summaries:
            assert set(s) == SUMMARY_KEYS

    def test_span_tree_matches_response_headers(self, service):
        headers, body = run_bfs(service, 5, rid="deep-dive-1")
        status, _, record = request(
            service, "GET", "/debug/requests/deep-dive-1"
        )
        assert status == 200
        # The ring remembers exactly what the response's headers said.
        timing = record["timing"]
        assert timing["queue_wait_seconds"] == pytest.approx(
            float(headers["X-Queue-Wait-Seconds"]), abs=5e-7
        )
        assert timing["sim_execution_seconds"] == pytest.approx(
            float(headers["X-Sim-Execution-Seconds"]), abs=5e-10
        )
        assert timing["sim_compute_seconds"] == pytest.approx(
            float(headers["X-Sim-Compute-Seconds"]), abs=5e-10
        )
        assert timing["sim_iowait_seconds"] == pytest.approx(
            float(headers["X-Sim-Iowait-Seconds"]), abs=5e-10
        )
        assert record["flush_id"] == headers["X-Flush-Id"]
        assert record["flush_size"] == int(headers["X-Flush-Size"])
        assert record["timing"] == body["timing"]

    def test_record_carries_the_flush_span_tree(self, service):
        run_bfs(service, 7, rid="span-tree-1")
        _, _, record = request(service, "GET", "/debug/requests/span-tree-1")
        spans = record["spans"]
        assert spans, "flush span trace must ride along"
        names = {sp["name"] for sp in spans}
        assert "query" in names
        # The record points at its own query span, and the admission
        # controller's dual clock stamped it with host time.
        own = [sp for sp in spans if sp["span_id"] == record["query_span_id"]]
        assert len(own) == 1
        assert "span-tree-1" in own[0]["attrs"]["request_ids"]
        assert own[0]["attrs"]["flush_id"] == record["flush_id"]
        assert record["host_service_seconds"] > 0.0

    def test_unknown_id_404_names_the_ring_capacity(self, service):
        status, _, body = request(
            service, "GET", "/debug/requests/never-seen-id"
        )
        assert status == 404
        assert body["error"]["type"] == "not_found"
        assert str(DEFAULT_REQUEST_LOG_CAPACITY) in body["error"]["message"]

    def test_failed_query_requests_land_in_the_ring(self, service):
        rid = "failed-query-1"
        status, headers, _ = request(
            service, "POST", "/graphs/nope/bfs", {"root": 0},
            headers={"X-Request-Id": rid},
        )
        assert status == 404
        assert headers["X-Request-Id"] == rid
        _, _, record = request(service, "GET", f"/debug/requests/{rid}")
        assert record["status"] == 404
        assert record["error"]["type"] == "unknown_graph"
        assert record["flush_id"] is None
        assert record["spans"] == []


# ----------------------------------------------------------------------
# /debug/timeseries: the rolling windows
# ----------------------------------------------------------------------
class TestDebugTimeseries:
    def test_snapshot_shape_and_live_traffic(self, service):
        run_bfs(service, 9)
        status, _, body = request(service, "GET", "/debug/timeseries")
        assert status == 200
        assert set(body) == {"window_seconds", "capacity", "now", "windows"}
        assert body["windows"], "traffic just happened: a window must exist"
        latest = body["windows"][-1]
        assert set(latest) == {"index", "start", "graphs"}
        tiny = latest["graphs"]["tiny"]
        assert tiny["requests"] >= 1
        assert set(tiny["queue_wait"]) == QUANTILE_KEYS

    def test_windows_parameter_limits_the_view(self, service):
        run_bfs(service, 11)
        _, _, body = request(service, "GET", "/debug/timeseries?windows=1")
        assert len(body["windows"]) == 1

    def test_bad_windows_parameter_is_a_400(self, service):
        status, _, body = request(
            service, "GET", "/debug/timeseries?windows=soon"
        )
        assert status == 400
        assert body["error"]["type"] == "bad_request"


# ----------------------------------------------------------------------
# stats golden schema: live depth, flush counts, latency quantiles
# ----------------------------------------------------------------------
class TestStatsSchema:
    def test_stats_payload_schema(self, service):
        run_bfs(service, 13)
        status, _, body = request(service, "GET", "/graphs/tiny/stats")
        assert status == 200
        assert set(body) == {
            "name", "graph", "engine", "partitions", "in_memory",
            "staging_report", "queries_served", "flushes",
            "admission", "latency", "fault_plan", "health",
        }
        assert set(body["admission"]) == {
            "queue_depth", "capacity", "accepted", "rejected",
            "flushes", "flush_retries", "serial_fallbacks",
            "deadline_expired", "held", "closed",
        }
        assert body["admission"]["queue_depth"] == 0  # idle right now
        assert body["admission"]["accepted"] >= 1
        assert body["admission"]["flushes"] >= 1
        assert set(body["latency"]) == {
            "queue_wait_seconds", "service_sim_seconds",
        }
        for summary in body["latency"].values():
            assert set(summary) == QUANTILE_KEYS
        assert body["latency"]["service_sim_seconds"]["count"] >= 1.0


# ----------------------------------------------------------------------
# flush attribution under concurrency (the satellite-4 criterion)
# ----------------------------------------------------------------------
class TestConcurrentFlushAttribution:
    N = 16

    def test_every_id_lands_in_exactly_one_flush(self, service):
        results = [None] * self.N
        errors = []

        def fire(i):
            try:
                results[i] = run_bfs(service, i + 1)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(self.N)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        # Pull each request's record; records of one flush share spans.
        flush_query_ids = {}  # flush_id -> ids named by its query spans
        flush_sizes = {}
        for headers, body in results:
            rid = body["request_id"]
            _, _, record = request(service, "GET", f"/debug/requests/{rid}")
            assert record["flush_id"] == headers["X-Flush-Id"]
            flush_sizes[record["flush_id"]] = record["flush_size"]
            ids = flush_query_ids.setdefault(record["flush_id"], [])
            if not ids:
                for sp in record["spans"]:
                    if sp["name"] == "query":
                        ids.extend(sp["attrs"]["request_ids"])

        # Every response id appears in exactly one flush's query spans —
        # coalesced followers included, never duplicated across flushes.
        all_ids = [i for ids in flush_query_ids.values() for i in ids]
        for _, body in results:
            assert all_ids.count(body["request_id"]) == 1
        # The flushes partition the burst.
        assert sum(flush_sizes.values()) == self.N
