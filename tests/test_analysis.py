"""Tests for calibration, the paper-claims module, harness and tables."""

import numpy as np
import pytest

from repro.analysis import paper
from repro.analysis.calibration import (
    SCALE_DIVISOR,
    scaled_bytes,
    scaled_device,
    scaled_engine_config,
    scaled_fastbfs_config,
    scaled_machine,
)
from repro.analysis.harness import (
    ComparisonRow,
    ExperimentRunner,
    default_root,
    peripheral_root,
)
from repro.analysis.tables import (
    comparison_table,
    datasets_table,
    format_table,
    representation_table,
    speedup_table,
)
from repro.errors import ConfigError
from repro.graph.generators import rmat_graph
from repro.storage.device import DeviceSpec
from repro.utils.units import GB, MB

DIV = 4096  # tiny datasets for harness tests


class TestCalibration:
    def test_one_divisor(self):
        assert SCALE_DIVISOR == 256

    def test_scaled_bytes(self):
        assert scaled_bytes("4GB", 256) == 16 * MB
        assert scaled_bytes(256, 512) == 1  # floor at one byte

    def test_scaled_device_seek(self):
        hdd = scaled_device("hdd", "d", 256)
        assert hdd.seek_time == pytest.approx(DeviceSpec.hdd().seek_time / 256)
        assert hdd.read_bandwidth == DeviceSpec.hdd().read_bandwidth

    def test_scaled_device_unknown(self):
        with pytest.raises(ConfigError):
            scaled_device("floppy", "d")

    def test_scaled_machine(self):
        m = scaled_machine(memory="4GB", num_disks=2, disk_kind="ssd", divisor=256)
        assert m.memory_bytes == 16 * MB
        assert m.num_disks == 2
        assert m.disks[0].spec.kind == "ssd"

    def test_scaled_configs_buffer_sizes(self):
        cfg = scaled_engine_config(256)
        assert cfg.edge_buffer_bytes == 64 * 1024  # 16MB / 256
        fb = scaled_fastbfs_config(256)
        assert fb.stay_buffer_bytes == 32 * 1024  # 8MB / 256


class TestPaperClaims:
    def test_claim_contains(self):
        claim = paper.HDD_SPEEDUP_VS_XSTREAM
        assert claim.contains(1.8)
        assert not claim.contains(3.0)
        assert claim.contains(2.5, slack=0.25)

    def test_table2_matches_registry(self):
        from repro.graph.datasets import DATASETS

        for name, row in paper.TABLE2.items():
            assert name in DATASETS
            assert DATASETS[name].paper_vertices == pytest.approx(
                row["vertices"], rel=0.05
            )

    def test_fig1_example(self):
        useful = paper.FIG1_EXAMPLE["useful_after"]
        assert useful[0] == paper.FIG1_EXAMPLE["total_edges"]
        assert useful == sorted(useful, reverse=True)

    def test_shape_claims_enumerated(self):
        figures = {fig for fig, _ in paper.SHAPE_CLAIMS}
        assert {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} <= figures


class TestRoots:
    def test_default_root_is_hub(self):
        g = rmat_graph(scale=8, edge_factor=8, seed=1)
        assert default_root(g) == int(np.argmax(g.out_degrees()))

    def test_peripheral_root_deepens(self):
        from repro.algorithms.reference import bfs_levels

        g = rmat_graph(scale=10, edge_factor=8, seed=2)
        hub = default_root(g)
        peri = peripheral_root(g)
        assert bfs_levels(g, peri).max() >= bfs_levels(g, hub).max()


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(divisor=DIV)

    def test_graph_cached(self, runner):
        assert runner.graph("rmat25") is runner.graph("rmat25")

    def test_run_memoized(self, runner):
        a = runner.run("rmat25", "fastbfs")
        b = runner.run("rmat25", "fastbfs")
        assert a is b

    def test_compare_has_all_engines(self, runner):
        rows = runner.compare("rmat25")
        assert set(rows) == {"graphchi", "x-stream", "fastbfs"}
        for row in rows.values():
            assert isinstance(row, ComparisonRow)
            assert row.time > 0
            assert row.input_bytes > 0

    def test_engines_agree(self, runner):
        rows = runner.compare("rmat25")
        levels = [r.result.levels for r in rows.values()]
        for lv in levels[1:]:
            assert np.array_equal(lv, levels[0])

    def test_speedup_and_reductions(self, runner):
        s = runner.speedup("rmat25", "x-stream", "fastbfs")
        assert s > 1.0
        assert 0.0 < runner.input_reduction("rmat25") < 1.0

    def test_unknown_engine(self, runner):
        with pytest.raises(ConfigError):
            runner.run("rmat25", "pregel")

    def test_threads_and_memory_options_fork_runs(self, runner):
        a = runner.run("rmat22", "x-stream", threads=1)
        b = runner.run("rmat22", "x-stream", threads=8)
        assert a is not b


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xxx", 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2] or "-" in lines[2]

    def test_representation_table_mentions_stay_files(self):
        text = representation_table()
        assert "stay files" in text
        assert "FastBFS" in text

    def test_datasets_table(self):
        g = rmat_graph(scale=6, edge_factor=4, seed=1)
        text = datasets_table({"rmat22": g})
        assert "rmat22" in text
        assert "4.2M" in text  # paper vertices

    def test_comparison_table(self):
        runner = ExperimentRunner(divisor=DIV)
        rows = {"rmat25": runner.compare("rmat25")}
        for metric in ("time", "input", "total", "iowait"):
            text = comparison_table(rows, metric, title=metric)
            assert "rmat25" in text

    def test_speedup_table_includes_paper_range(self):
        text = speedup_table(
            {"rmat25": {"vs x-stream": 1.9}},
            {"vs x-stream": paper.HDD_SPEEDUP_VS_XSTREAM},
            "Fig 4",
        )
        assert "1.6-2.1x" in text
        assert "1.90x" in text


class TestScaledMachineOptions:
    def test_trace_flag(self):
        m = scaled_machine("4GB", trace=True)
        assert m.disks[0].timeline.keep_trace

    def test_default_no_trace(self):
        m = scaled_machine("4GB")
        assert not m.disks[0].timeline.keep_trace

    def test_ssd_two_disks(self):
        m = scaled_machine("2GB", num_disks=2, disk_kind="ssd", divisor=512)
        assert m.num_disks == 2
        assert m.disks[1].spec.kind == "ssd"
        assert m.disks[1].spec.seek_time == pytest.approx(
            DeviceSpec.ssd().seek_time / 512
        )
