"""Unit tests for the stay-stream manager (swap / cancel lifecycle)."""

import numpy as np
import pytest

from repro.core.config import FastBFSConfig
from repro.core.staystream import StayStreamManager
from repro.errors import EngineError
from repro.graph.types import make_edges
from repro.sim.clock import SimClock
from repro.storage.device import Device, DeviceSpec
from repro.storage.vfs import VFS
from repro.utils.units import MB


def edges(n):
    return make_edges(np.arange(n) % 100, np.arange(n) % 100)


@pytest.fixture
def ctx():
    clock = SimClock()
    device = Device(
        DeviceSpec("d", seek_time=0.0, read_bandwidth=100 * MB,
                   write_bandwidth=100 * MB)
    )
    vfs = VFS()
    cfg = FastBFSConfig(
        stay_buffer_bytes=1024, num_stay_buffers=2, cancellation_grace=0.001
    )
    return clock, device, vfs, StayStreamManager(clock, vfs, device, cfg)


class TestLifecycle:
    def test_open_append_finish(self, ctx):
        clock, device, vfs, mgr = ctx
        mgr.open(0, iteration=0)
        mgr.append(0, edges(100))
        mgr.finish_partition(0)
        assert 0 in mgr.pending_partitions
        assert mgr.stats.files_written == 1
        assert mgr.stats.records_written == 100

    def test_double_open_rejected(self, ctx):
        _, _, _, mgr = ctx
        mgr.open(0, iteration=0)
        with pytest.raises(EngineError):
            mgr.open(0, iteration=0)

    def test_append_without_open_rejected(self, ctx):
        _, _, _, mgr = ctx
        with pytest.raises(EngineError):
            mgr.append(3, edges(1))

    def test_finish_without_open_is_noop(self, ctx):
        _, _, _, mgr = ctx
        mgr.finish_partition(5)
        assert mgr.pending_partitions == {}

    def test_current_accessor(self, ctx):
        _, _, _, mgr = ctx
        assert mgr.current(0) is None
        w = mgr.open(0, iteration=1)
        assert mgr.current(0) is w


class TestResolveInput:
    def test_keep_when_no_pending(self, ctx):
        clock, device, vfs, mgr = ctx
        old = vfs.create("edges:p0", device)
        f, outcome = mgr.resolve_input(0, old)
        assert outcome == "keep"
        assert f is old

    def test_swap_when_ready(self, ctx):
        clock, device, vfs, mgr = ctx
        old = vfs.create("edges:p0", device)
        old.append_records(edges(500))
        mgr.open(0, iteration=0)
        mgr.append(0, edges(50))
        mgr.finish_partition(0)
        clock.charge_compute(1.0)  # plenty of time for the flush to land
        f, outcome = mgr.resolve_input(0, old)
        assert outcome == "swap"
        assert f.name == "edges:p0"  # installed under the edge-file name
        assert f.num_records == 50
        assert old.deleted
        assert mgr.stats.swaps == 1

    def test_swap_waits_within_grace(self, ctx):
        clock, device, vfs, mgr = ctx
        old = vfs.create("edges:p0", device)
        mgr.open(0, iteration=0)
        mgr.append(0, edges(2000))  # flushes ~16KB -> 160us write
        mgr.finish_partition(0)
        cfg_grace = mgr.config.cancellation_grace
        f, outcome = mgr.resolve_input(0, old)
        assert outcome == "swap"  # 160us < 1ms grace
        assert clock.iowait_time > 0.0  # the short wait was accounted

    def test_cancel_when_too_slow(self, ctx):
        clock, device, vfs, mgr = ctx
        old = vfs.create("edges:p0", device)
        mgr.open(0, iteration=0)
        mgr.append(0, edges(10**6))  # 8MB: ~80ms >> 1ms grace
        mgr.finish_partition(0)
        f, outcome = mgr.resolve_input(0, old)
        assert outcome == "cancel"
        assert f is old
        assert not vfs.exists("stay:p0:i0")
        assert mgr.stats.cancellations == 1

    def test_cancel_then_next_iteration_can_swap(self, ctx):
        clock, device, vfs, mgr = ctx
        old = vfs.create("edges:p0", device)
        mgr.open(0, iteration=0)
        mgr.append(0, edges(10**6))
        mgr.finish_partition(0)
        f, outcome = mgr.resolve_input(0, old)
        assert outcome == "cancel"
        # Next iteration writes a smaller stay list that lands in time.
        mgr.open(0, iteration=1)
        mgr.append(0, edges(10))
        mgr.finish_partition(0)
        clock.charge_compute(1.0)
        f2, outcome2 = mgr.resolve_input(0, f)
        assert outcome2 == "swap"
        assert f2.num_records == 10


class TestErrorPaths:
    def test_append_after_finish_rejected(self, ctx):
        _, _, _, mgr = ctx
        mgr.open(0, iteration=0)
        mgr.finish_partition(0)
        with pytest.raises(EngineError, match="no open stay writer"):
            mgr.append(0, edges(1))

    def test_append_after_discard_all_rejected(self, ctx):
        _, _, _, mgr = ctx
        mgr.open(0, iteration=0)
        mgr.discard_all()
        with pytest.raises(EngineError, match="no open stay writer"):
            mgr.append(0, edges(1))

    def test_reopen_same_partition_after_finish_allowed(self, ctx):
        """Next iteration's writer coexists with the pending previous one."""
        _, _, vfs, mgr = ctx
        mgr.open(0, iteration=0)
        mgr.finish_partition(0)
        w = mgr.open(0, iteration=1)
        assert w.file.name == "stay:p0:i1"
        assert 0 in mgr.pending_partitions
        assert mgr.stats.files_written == 2

    def test_double_open_leaves_first_writer_intact(self, ctx):
        _, _, _, mgr = ctx
        first = mgr.open(0, iteration=0)
        with pytest.raises(EngineError):
            mgr.open(0, iteration=0)
        assert mgr.current(0) is first
        assert mgr.stats.files_written == 1


class TestDiscardAll:
    def test_discards_pending_and_current(self, ctx):
        clock, device, vfs, mgr = ctx
        mgr.open(0, iteration=0)
        mgr.append(0, edges(10))
        mgr.finish_partition(0)
        mgr.open(1, iteration=0)
        mgr.discard_all()
        assert mgr.pending_partitions == {}
        assert mgr.stats.end_of_run_discards == 2
        assert not vfs.exists("stay:p0:i0")
        assert not vfs.exists("stay:p1:i0")

    def test_counts_pending_and_current_separately(self, ctx):
        """end_of_run_discards covers both writer generations."""
        _, _, vfs, mgr = ctx
        mgr.open(0, iteration=0)
        mgr.append(0, edges(10))
        mgr.finish_partition(0)  # generation "pending"
        mgr.open(1, iteration=0)  # generation "current", never finished
        mgr.open(2, iteration=0)
        assert len(mgr.pending_partitions) == 1
        mgr.discard_all()
        assert mgr.stats.end_of_run_discards == 3
        assert mgr.pending_partitions == {}
        for name in ("stay:p0:i0", "stay:p1:i0", "stay:p2:i0"):
            assert not vfs.exists(name)

    def test_discard_all_idempotent(self, ctx):
        _, _, _, mgr = ctx
        mgr.open(0, iteration=0)
        mgr.discard_all()
        mgr.discard_all()
        assert mgr.stats.end_of_run_discards == 1

    def test_device_override(self, ctx):
        clock, device, vfs, mgr = ctx
        other = Device(DeviceSpec.hdd("other"))
        w = mgr.open(0, iteration=0, device=other)
        assert w.file.device is other
