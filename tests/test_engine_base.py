"""Tests for the shared edge-centric engine scaffolding (X-Stream behaviour)."""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root, small_engine_config

from repro.algorithms.reference import bfs_levels
from repro.algorithms.streaming import WCCAlgorithm
from repro.engines.base import EngineConfig
from repro.engines.xstream import XStreamEngine
from repro.errors import ConfigError, EngineError
from repro.graph.generators import path_graph, rmat_graph, star_graph
from repro.graph.graph import Graph
from repro.utils.units import KB, MB


class TestEngineConfig:
    def test_defaults_valid(self):
        EngineConfig()

    def test_string_sizes_parsed(self):
        cfg = EngineConfig(edge_buffer_bytes="64KB", update_buffer_bytes="1KB")
        assert cfg.edge_buffer_bytes == 64 * KB

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(threads=0),
            dict(num_edge_buffers=0),
            dict(edge_buffer_bytes=0),
            dict(num_partitions=0),
            dict(vertex_memory_fraction=0.0),
            dict(vertex_memory_fraction=1.5),
            dict(in_memory_factor=0.5),
            dict(edge_disk=-1),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            EngineConfig(**kwargs)

    def test_with_copies(self):
        cfg = EngineConfig(threads=2)
        cfg2 = cfg.with_(threads=8)
        assert cfg.threads == 2 and cfg2.threads == 8


class TestBasicCorrectness:
    def test_bfs_matches_reference(self, rmat10):
        root = hub_root(rmat10)
        engine = XStreamEngine(small_engine_config())
        result = engine.run(rmat10, fresh_machine(), root=root)
        assert np.array_equal(result.levels, bfs_levels(rmat10, root))

    def test_star_one_iteration_plus_drain(self, star):
        engine = XStreamEngine(small_engine_config(num_partitions=2))
        result = engine.run(star, fresh_machine(), root=0)
        assert (result.levels[1:] == 1).all()
        # scatter-0 generates, pass-1 gathers and generates nothing.
        assert result.num_iterations == 2

    def test_path_runs_one_pass_per_level(self, path):
        engine = XStreamEngine(small_engine_config(num_partitions=2))
        result = engine.run(path, fresh_machine(), root=0)
        assert result.levels[-1] == 63
        assert result.num_iterations == 64

    def test_empty_frontier_root_sink(self):
        g = Graph.from_edge_pairs(4, [(1, 2)])
        result = XStreamEngine(small_engine_config(num_partitions=2)).run(
            g, fresh_machine(), root=0
        )
        assert result.levels.tolist() == [0, -1, -1, -1]
        assert result.num_iterations == 1

    def test_multiple_roots(self, rmat10):
        roots = [0, 17, 100]
        engine = XStreamEngine(small_engine_config())
        result = engine.run(rmat10, fresh_machine(), roots=roots)
        far = np.int64(1) << 40
        dists = np.stack([bfs_levels(rmat10, r) for r in roots]).astype(np.int64)
        dists[dists < 0] = far
        expected = dists.min(axis=0)
        got = result.levels.astype(np.int64)
        got[got < 0] = far
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("partitions", [1, 2, 3, 7, 16])
    def test_partition_count_invariance(self, rmat10, partitions):
        root = hub_root(rmat10)
        ref = bfs_levels(rmat10, root)
        engine = XStreamEngine(small_engine_config(num_partitions=partitions))
        result = engine.run(rmat10, fresh_machine(), root=root)
        assert np.array_equal(result.levels, ref)
        assert result.extras["partitions"] == min(partitions, rmat10.num_vertices)

    @pytest.mark.parametrize("buffer_bytes", [64, 256, 4096, 10**6])
    def test_buffer_size_invariance(self, rmat10, buffer_bytes):
        root = hub_root(rmat10)
        ref = bfs_levels(rmat10, root)
        engine = XStreamEngine(
            small_engine_config(edge_buffer_bytes=buffer_bytes,
                                update_buffer_bytes=buffer_bytes)
        )
        assert np.array_equal(
            engine.run(rmat10, fresh_machine(), root=root).levels, ref
        )


class TestMachineContract:
    def test_used_machine_rejected(self, rmat10):
        machine = fresh_machine()
        engine = XStreamEngine(small_engine_config())
        engine.run(rmat10, machine, root=0)
        with pytest.raises(EngineError):
            engine.run(rmat10, machine, root=0)

    def test_engine_reusable_with_fresh_machines(self, rmat10):
        engine = XStreamEngine(small_engine_config())
        a = engine.run(rmat10, fresh_machine(), root=0)
        b = engine.run(rmat10, fresh_machine(), root=0)
        assert np.array_equal(a.levels, b.levels)
        assert a.execution_time == pytest.approx(b.execution_time)


class TestXStreamTraits:
    def test_scans_full_graph_every_iteration(self, rmat10):
        """X-Stream's weakness: edges scanned = E per scatter pass."""
        engine = XStreamEngine(small_engine_config())
        result = engine.run(rmat10, fresh_machine(), root=hub_root(rmat10))
        for it in result.iterations:
            assert it.edges_scanned == rmat10.num_edges
            assert it.partitions_skipped == 0

    def test_no_stay_files(self, rmat10):
        result = XStreamEngine(small_engine_config()).run(
            rmat10, fresh_machine(), root=0
        )
        assert "stay_files_written" not in result.extras

    def test_update_parity_files_cleaned_up(self, rmat10):
        machine = fresh_machine()
        XStreamEngine(small_engine_config()).run(machine=machine, graph=rmat10,
                                                 root=hub_root(rmat10))
        leftovers = [n for n in machine.vfs.names() if n.startswith("updates:")]
        assert leftovers == []


class TestInMemoryMode:
    def test_in_memory_when_fits(self, rmat10):
        cfg = EngineConfig(num_partitions=2)
        machine = fresh_machine(memory=64 * MB)
        result = XStreamEngine(cfg).run(rmat10, machine, root=hub_root(rmat10))
        assert result.extras["in_memory"] == 1.0
        # Only the initial load touches the disk.
        assert result.report.bytes_read <= 2 * rmat10.nbytes

    def test_out_of_core_when_tight(self, rmat10):
        cfg = EngineConfig(num_partitions=2)
        machine = fresh_machine(memory=64 * KB)
        result = XStreamEngine(cfg).run(rmat10, machine, root=hub_root(rmat10))
        assert result.extras["in_memory"] == 0.0

    def test_allow_in_memory_false(self, rmat10):
        cfg = EngineConfig(num_partitions=2, allow_in_memory=False)
        machine = fresh_machine(memory=64 * MB)
        result = XStreamEngine(cfg).run(rmat10, machine, root=hub_root(rmat10))
        assert result.extras["in_memory"] == 0.0

    def test_in_memory_is_faster(self, rmat10):
        root = hub_root(rmat10)
        slow = XStreamEngine(EngineConfig(num_partitions=2, allow_in_memory=False))
        fast = XStreamEngine(EngineConfig(num_partitions=2))
        t_disk = slow.run(rmat10, fresh_machine(memory=64 * MB), root=root)
        t_ram = fast.run(rmat10, fresh_machine(memory=64 * MB), root=root)
        assert t_ram.execution_time < t_disk.execution_time / 2

    def test_in_memory_same_levels(self, rmat10):
        root = hub_root(rmat10)
        ref = bfs_levels(rmat10, root)
        result = XStreamEngine(EngineConfig()).run(
            rmat10, fresh_machine(memory=64 * MB), root=root
        )
        assert np.array_equal(result.levels, ref)


class TestWCCOnBaseEngine:
    def test_wcc_labels_match_networkx(self):
        import networkx as nx

        g = rmat_graph(scale=8, edge_factor=2, seed=9).symmetrized()
        engine = XStreamEngine(small_engine_config(num_partitions=3))
        result = engine.run(g, fresh_machine(), algorithm=WCCAlgorithm(), root=0)
        labels = result.output["label"]
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_vertices))
        nxg.add_edges_from(zip(g.edges["src"].tolist(), g.edges["dst"].tolist()))
        for comp in nx.connected_components(nxg):
            comp = list(comp)
            assert len(set(labels[comp].tolist())) == 1
            assert labels[comp[0]] == min(comp)


class TestIterationStats:
    def test_updates_monotone_bookkeeping(self, rmat10):
        result = XStreamEngine(small_engine_config()).run(
            rmat10, fresh_machine(), root=hub_root(rmat10)
        )
        assert result.iterations[-1].updates_generated == 0
        assert result.updates_generated == sum(
            it.updates_generated for it in result.iterations
        )
        times = [it.clock_end for it in result.iterations]
        assert times == sorted(times)

    def test_activated_sums_to_reachable_minus_roots(self, rmat10):
        root = hub_root(rmat10)
        result = XStreamEngine(small_engine_config()).run(
            rmat10, fresh_machine(), root=root
        )
        reachable = int((bfs_levels(rmat10, root) >= 0).sum())
        assert sum(it.activated for it in result.iterations) == reachable - 1
