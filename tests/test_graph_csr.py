"""Tests for the CSR adjacency used by the reference BFS."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.graph.generators import random_graph


class TestBuild:
    def test_neighbors(self):
        g = Graph.from_edge_pairs(4, [(0, 1), (0, 3), (2, 1)])
        csr = CSRGraph.from_graph(g)
        assert sorted(csr.neighbors(0).tolist()) == [1, 3]
        assert csr.neighbors(1).tolist() == []
        assert csr.neighbors(2).tolist() == [1]

    def test_degrees(self):
        g = Graph.from_edge_pairs(3, [(0, 1), (0, 2), (0, 0)])
        csr = CSRGraph.from_graph(g)
        assert csr.out_degree(0) == 3
        assert csr.out_degree(1) == 0

    def test_num_edges(self):
        g = random_graph(50, 333, seed=1)
        assert CSRGraph.from_graph(g).num_edges == 333

    def test_multi_edges_kept(self):
        g = Graph.from_edge_pairs(2, [(0, 1), (0, 1)])
        assert CSRGraph.from_graph(g).out_degree(0) == 2

    def test_validation(self):
        with pytest.raises(GraphError):
            CSRGraph(2, np.array([0, 1]), np.array([1]))  # indptr too short
        with pytest.raises(GraphError):
            CSRGraph(1, np.array([0, 2]), np.array([0]))  # end mismatch


class TestFrontierNeighbors:
    def test_matches_python_loop(self):
        g = random_graph(200, 2000, seed=3)
        csr = CSRGraph.from_graph(g)
        rng = np.random.default_rng(0)
        frontier = np.unique(rng.integers(0, 200, 30)).astype(np.int64)
        expected = np.concatenate(
            [csr.neighbors(v) for v in frontier]
        ) if len(frontier) else np.array([])
        got = csr.frontier_neighbors(frontier)
        assert np.array_equal(got, expected)

    def test_empty_frontier(self):
        g = random_graph(10, 50, seed=1)
        csr = CSRGraph.from_graph(g)
        assert len(csr.frontier_neighbors(np.array([], dtype=np.int64))) == 0

    def test_frontier_of_sinks(self):
        g = Graph.from_edge_pairs(4, [(0, 1)])
        csr = CSRGraph.from_graph(g)
        assert len(csr.frontier_neighbors(np.array([1, 2, 3]))) == 0
