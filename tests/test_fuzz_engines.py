"""Hypothesis fuzzing of the full engine stack.

Random graphs x random engine configurations: the BFS answer must always
equal the in-memory reference, no matter how the machine or the engine is
configured — partitions, buffer sizes, prefetch depth, trimming policy,
grace, thread counts, disks, memory budgets.  The batch/session protocol
is fuzzed too: ``run_many`` answers match the reference per query, and
``Machine.restore`` rolls every observability counter back to exactly its
checkpointed value.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.reference import bfs_levels
from repro.core.config import FastBFSConfig
from repro.core.engine import FastBFSEngine
from repro.engines.base import EngineConfig
from repro.engines.graphchi import GraphChiConfig, GraphChiEngine
from repro.engines.xstream import XStreamEngine
from repro.graph.generators import random_graph
from repro.obs.counters import CounterRegistry
from repro.storage.device import DeviceSpec
from repro.storage.machine import Machine
from repro.utils.units import KB, MB


def machine_for(num_disks: int, memory: int) -> Machine:
    specs = [DeviceSpec.hdd(f"hdd{i}") for i in range(num_disks)]
    return Machine(specs, memory=memory)


fastbfs_configs = st.builds(
    FastBFSConfig,
    threads=st.integers(min_value=1, max_value=8),
    edge_buffer_bytes=st.integers(min_value=64, max_value=8 * KB),
    num_edge_buffers=st.integers(min_value=1, max_value=4),
    update_buffer_bytes=st.integers(min_value=64, max_value=4 * KB),
    num_partitions=st.integers(min_value=1, max_value=9),
    allow_in_memory=st.booleans(),
    trim_enabled=st.booleans(),
    trim_start_iteration=st.integers(min_value=0, max_value=4),
    trim_trigger_fraction=st.floats(min_value=0.0, max_value=0.9,
                                    exclude_max=True),
    extended_trim=st.booleans(),
    selective_scheduling=st.booleans(),
    stay_buffer_bytes=st.integers(min_value=64, max_value=4 * KB),
    num_stay_buffers=st.integers(min_value=1, max_value=8),
    cancellation_grace=st.floats(min_value=0.0, max_value=0.05),
    rotate_streams=st.booleans(),
)


@given(
    n=st.integers(min_value=2, max_value=120),
    m_factor=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10**6),
    config=fastbfs_configs,
    num_disks=st.integers(min_value=1, max_value=3),
    memory_kb=st.integers(min_value=16, max_value=4096),
)
@settings(max_examples=60, deadline=None)
def test_fuzz_fastbfs_always_correct(n, m_factor, seed, config, num_disks,
                                     memory_kb):
    graph = random_graph(n, m_factor * n, seed=seed)
    root = seed % n
    ref = bfs_levels(graph, root)
    machine = machine_for(num_disks, memory_kb * KB)
    result = FastBFSEngine(config).run(graph, machine, root=root)
    assert np.array_equal(result.levels, ref)
    # Accounting sanity under every configuration.
    assert result.report.execution_time >= 0
    assert result.report.iowait_ratio <= 1.0 + 1e-9
    assert result.report.bytes_read >= 0


@given(
    n=st.integers(min_value=2, max_value=100),
    seed=st.integers(min_value=0, max_value=10**6),
    threads=st.integers(min_value=1, max_value=8),
    partitions=st.integers(min_value=1, max_value=8),
    buffer_bytes=st.integers(min_value=64, max_value=4 * KB),
    allow_in_memory=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_fuzz_xstream_always_correct(n, seed, threads, partitions,
                                     buffer_bytes, allow_in_memory):
    graph = random_graph(n, 4 * n, seed=seed)
    root = seed % n
    config = EngineConfig(
        threads=threads,
        num_partitions=partitions,
        edge_buffer_bytes=buffer_bytes,
        update_buffer_bytes=buffer_bytes,
        allow_in_memory=allow_in_memory,
    )
    machine = machine_for(1, MB)
    result = XStreamEngine(config).run(graph, machine, root=root)
    assert np.array_equal(result.levels, bfs_levels(graph, root))


@given(
    n=st.integers(min_value=2, max_value=100),
    seed=st.integers(min_value=0, max_value=10**6),
    shards=st.integers(min_value=1, max_value=7),
    selective=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_fuzz_graphchi_always_correct(n, seed, shards, selective):
    graph = random_graph(n, 4 * n, seed=seed)
    root = seed % n
    config = GraphChiConfig(num_shards=shards, selective_scheduling=selective)
    machine = machine_for(1, MB)
    result = GraphChiEngine(config).run(graph, machine, root=root)
    assert np.array_equal(result.levels, bfs_levels(graph, root))


@given(
    n=st.integers(min_value=2, max_value=80),
    seed=st.integers(min_value=0, max_value=10**6),
    config=fastbfs_configs,
)
@settings(max_examples=30, deadline=None)
def test_fuzz_trimming_never_changes_bytes_upward_vs_untrimmed(
    n, seed, config
):
    """With identical settings except trimming, trimming never *increases*
    edges scanned (it may add writes, never reads of edge data)."""
    graph = random_graph(n, 5 * n, seed=seed)
    root = seed % n
    if config.trim_start_iteration or config.trim_trigger_fraction:
        # Delayed trimming can legitimately re-scan more (see the ablation
        # bench); restrict the property to immediate trimming.
        config = config.with_(trim_start_iteration=0,
                              trim_trigger_fraction=0.0)
    on = FastBFSEngine(config).run(
        graph, machine_for(2, MB), root=root
    )
    off = FastBFSEngine(config.with_(trim_enabled=False)).run(
        graph, machine_for(2, MB), root=root
    )
    assert on.edges_scanned <= off.edges_scanned
    assert np.array_equal(on.levels, off.levels)


@given(
    n=st.integers(min_value=2, max_value=100),
    seed=st.integers(min_value=0, max_value=10**6),
    config=fastbfs_configs,
    num_disks=st.integers(min_value=1, max_value=2),
    raw_roots=st.lists(
        st.integers(min_value=0, max_value=10**6), min_size=1, max_size=4
    ),
)
@settings(max_examples=25, deadline=None)
def test_fuzz_run_many_matches_reference_per_query(
    n, seed, config, num_disks, raw_roots
):
    graph = random_graph(n, 4 * n, seed=seed)
    roots = [r % n for r in raw_roots]
    machine = machine_for(num_disks, MB)
    batch = FastBFSEngine(config).run_many(graph, machine, roots=roots)
    assert batch.num_queries == len(roots)
    for root, q in zip(roots, batch.queries):
        assert np.array_equal(q.levels, bfs_levels(graph, root))
        assert q.report.execution_time >= 0
    # The cumulative counter sample reconciles with the cumulative report
    # after any number of checkpoint/restore cycles.
    assert CounterRegistry.from_machine(machine).reconcile(machine.report()) == []


@given(
    n=st.integers(min_value=2, max_value=80),
    seed=st.integers(min_value=0, max_value=10**6),
    config=fastbfs_configs,
    num_disks=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=25, deadline=None)
def test_fuzz_checkpoint_restore_rewinds_counters_exactly(
    n, seed, config, num_disks
):
    """``Machine.restore`` leaves every counter at its checkpointed value.

    Clock, VFS, devices and page cache are all counter sources, so a
    registry sampled after restore must equal the one sampled at
    checkpoint time — and re-running the same query must land on the
    same counters it produced the first time (the determinism the
    memoizing harness relies on).
    """
    graph = random_graph(n, 4 * n, seed=seed)
    root = seed % n
    machine = machine_for(num_disks, MB)
    eng = FastBFSEngine(config)
    staged = eng.stage(graph, machine)

    at_checkpoint = CounterRegistry.from_machine(machine)
    cp = machine.checkpoint()

    first = eng.session(staged).run(root=root)
    after_query = CounterRegistry.from_machine(machine)

    machine.restore(cp)
    assert CounterRegistry.from_machine(machine) == at_checkpoint

    second = eng.session(staged).run(root=root)
    assert np.array_equal(first.levels, second.levels)
    assert CounterRegistry.from_machine(machine) == after_query
