"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.graph.io import load_graph


def run_cli(args):
    return main(args)


class TestGenerate:
    def test_rmat(self, tmp_path, capsys):
        out = str(tmp_path / "g.bin")
        assert run_cli(["generate", "rmat", out, "--scale", "8"]) == 0
        g = load_graph(out)
        assert g.num_vertices == 256
        assert "wrote" in capsys.readouterr().out

    def test_grid(self, tmp_path):
        out = str(tmp_path / "grid.bin")
        assert run_cli(["generate", "grid", out, "--width", "10",
                        "--height", "10"]) == 0
        assert load_graph(out).num_vertices == 100

    def test_random(self, tmp_path):
        out = str(tmp_path / "r.bin")
        assert run_cli(["generate", "random", out, "--vertices", "100",
                        "--edges", "500"]) == 0
        assert load_graph(out).num_edges == 500

    def test_powerlaw(self, tmp_path):
        out = str(tmp_path / "p.bin")
        assert run_cli(["generate", "powerlaw", out, "--vertices", "200",
                        "--edges", "1000"]) == 0
        assert load_graph(out).num_edges == 1000


class TestRun:
    @pytest.fixture
    def graph_file(self, tmp_path):
        out = str(tmp_path / "g.bin")
        run_cli(["generate", "rmat", out, "--scale", "9", "--edge-factor", "8"])
        return out

    @pytest.mark.parametrize("engine", ["fastbfs", "x-stream", "graphchi"])
    def test_engines(self, graph_file, capsys, engine):
        assert run_cli(["run", "--graph", graph_file, "--engine", engine,
                        "--validate"]) == 0
        out = capsys.readouterr().out
        assert "TEPS" in out
        assert "validation: OK" in out

    def test_explicit_root(self, graph_file, capsys):
        assert run_cli(["run", "--graph", graph_file, "--root", "0"]) == 0
        assert "root: 0" in capsys.readouterr().out

    def test_multi_source_roots(self, graph_file, capsys):
        assert run_cli(["run", "--graph", graph_file, "--roots", "0", "5"]) == 0
        assert "roots:" in capsys.readouterr().out

    def test_roots_with_validate_rejected(self, graph_file, capsys):
        assert run_cli(["run", "--graph", graph_file, "--roots", "0", "5",
                        "--validate"]) == 2

    def test_wcc(self, graph_file, capsys):
        assert run_cli(["run", "--graph", graph_file, "--algorithm", "wcc"]) == 0
        assert "components" in capsys.readouterr().out

    def test_wcc_graphchi(self, graph_file, capsys):
        assert run_cli(["run", "--graph", graph_file, "--algorithm", "wcc",
                        "--engine", "graphchi"]) == 0
        assert "components" in capsys.readouterr().out

    def test_sssp(self, graph_file, capsys):
        assert run_cli(["run", "--graph", graph_file, "--algorithm", "sssp",
                        "--max-weight", "5"]) == 0
        assert "max distance" in capsys.readouterr().out

    def test_sssp_graphchi_unsupported(self, graph_file):
        assert run_cli(["run", "--graph", graph_file, "--algorithm", "sssp",
                        "--engine", "graphchi"]) == 2

    def test_missing_file_errors(self, tmp_path):
        assert run_cli(["run", "--graph", str(tmp_path / "nope.bin")]) == 1

    def test_ssd_machine(self, graph_file, capsys):
        assert run_cli(["run", "--graph", graph_file, "--disk-kind", "ssd"]) == 0


class TestBatch:
    @pytest.fixture
    def graph_file(self, tmp_path):
        out = str(tmp_path / "g.bin")
        run_cli(["generate", "rmat", out, "--scale", "9", "--edge-factor", "8"])
        return out

    @pytest.mark.parametrize("engine", ["fastbfs", "x-stream", "graphchi"])
    def test_engines(self, graph_file, capsys, engine):
        assert run_cli(["batch", "--graph", graph_file, "--engine", engine,
                        "--roots", "0", "5", "9"]) == 0
        text = capsys.readouterr().out
        assert "staging" in text
        assert "amortized/query" in text

    def test_verbose_prints_iterations(self, graph_file, capsys):
        assert run_cli(["batch", "--graph", graph_file, "--roots", "0", "5",
                        "--verbose"]) == 0
        assert "iter" in capsys.readouterr().out

    def test_batched_mode_reports_shared_scans(self, graph_file, capsys):
        assert run_cli(["batch", "--graph", graph_file, "--roots", "0", "5",
                        "9", "--batch"]) == 0
        text = capsys.readouterr().out
        assert "shared-scan batch" in text
        assert "edges scanned" in text

    def test_batched_mode_falls_back_for_graphchi(self, graph_file, capsys):
        assert run_cli(["batch", "--graph", graph_file, "--engine", "graphchi",
                        "--roots", "0", "5", "--batch"]) == 0
        assert "serial fallback" in capsys.readouterr().out


class TestCompare:
    def test_compare_prints_speedups(self, tmp_path, capsys):
        out = str(tmp_path / "g.bin")
        run_cli(["generate", "rmat", out, "--scale", "9"])
        assert run_cli(["compare", "--graph", out]) == 0
        text = capsys.readouterr().out
        assert "x-stream" in text and "graphchi" in text
        assert "speedup vs X-Stream" in text


class TestProfile:
    def test_profile(self, tmp_path, capsys):
        out = str(tmp_path / "g.bin")
        run_cli(["generate", "rmat", out, "--scale", "8"])
        assert run_cli(["profile", "--graph", out]) == 0
        text = capsys.readouterr().out
        assert "frontier" in text
        assert "saved by trimming" in text


class TestDatasets:
    def test_listing(self, capsys):
        assert run_cli(["datasets"]) == 0
        text = capsys.readouterr().out
        for name in ("rmat22", "rmat25", "rmat27", "twitter_rv", "friendster"):
            assert name in text


class TestGantt:
    def test_single_disk(self, tmp_path, capsys):
        out = str(tmp_path / "g.bin")
        run_cli(["generate", "rmat", out, "--scale", "8"])
        # 16MB (paper scale) keeps the run out-of-core so the disk lanes
        # actually carry the streams.
        assert run_cli(["gantt", "--graph", out, "--width", "40",
                        "--memory", "16MB"]) == 0
        text = capsys.readouterr().out
        assert "hdd0" in text
        assert "edges[R]" in text
        assert "stay[W]" in text

    def test_two_disk_rotation(self, tmp_path, capsys):
        out = str(tmp_path / "g.bin")
        run_cli(["generate", "rmat", out, "--scale", "8"])
        assert run_cli(["gantt", "--graph", out, "--disks", "2",
                        "--width", "40"]) == 0
        text = capsys.readouterr().out
        assert "hdd1" in text

    def test_verbose_run(self, tmp_path, capsys):
        out = str(tmp_path / "g.bin")
        run_cli(["generate", "rmat", out, "--scale", "8"])
        assert run_cli(["run", "--graph", out, "--verbose"]) == 0
        text = capsys.readouterr().out
        assert "edges scanned" in text
        assert "swap/cancel" in text


class TestShapes:
    def test_scoreboard_runs(self, capsys):
        assert run_cli(["shapes", "--divisor", "1024",
                        "--datasets", "rmat25"]) == 0
        text = capsys.readouterr().out
        assert "claims hold" in text
        assert "PASS" in text
