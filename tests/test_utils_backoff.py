"""Exact-value tests for the shared exponential-backoff schedule.

One curve feeds two mechanisms: the stream layer's simulated I/O retry
waits (:meth:`repro.storage.faults.RetryPolicy.backoff`) and the serving
circuit breaker's host-clock quarantine cooldowns
(:meth:`repro.serve.health.CircuitBreaker.cooldown_seconds`).  The
contract is bit-exact determinism — no jitter, no clamping — so both
timelines replay identically under a fixed seed.
"""

import pytest

from repro.serve.health import BreakerPolicy, CircuitBreaker
from repro.storage.faults import RetryPolicy
from repro.utils.backoff import exponential_backoff


class TestExponentialBackoff:
    def test_first_attempt_is_exactly_base(self):
        assert exponential_backoff(0.01, 2.0, 1) == 0.01
        assert exponential_backoff(1.5, 7.0, 1) == 1.5

    def test_growth_is_exact_powers_of_the_multiplier(self):
        assert exponential_backoff(0.01, 2.0, 2) == 0.02
        assert exponential_backoff(0.01, 2.0, 3) == 0.04
        assert exponential_backoff(0.01, 2.0, 4) == 0.08
        assert exponential_backoff(2.0, 3.0, 3) == 18.0

    def test_multiplier_one_is_constant(self):
        assert [exponential_backoff(0.5, 1.0, n) for n in (1, 2, 5)] == [
            0.5, 0.5, 0.5,
        ]

    def test_non_positive_attempt_raises(self):
        with pytest.raises(ValueError):
            exponential_backoff(0.01, 2.0, 0)
        with pytest.raises(ValueError):
            exponential_backoff(0.01, 2.0, -3)

    def test_retry_policy_backoff_matches_the_shared_curve(self):
        policy = RetryPolicy()  # base=0.002, multiplier=2.0
        for attempt in (1, 2, 3):
            assert policy.backoff(attempt) == exponential_backoff(
                0.002, 2.0, attempt
            )
        assert policy.backoff(1) == 0.002
        assert policy.backoff(3) == 0.008

    def test_breaker_cooldown_matches_the_shared_curve(self):
        policy = BreakerPolicy(cooldown_base=1.0, cooldown_multiplier=2.0)
        breaker = CircuitBreaker("g", policy=policy)
        # Before any quarantine the schedule is the first-attempt value.
        assert breaker.cooldown_seconds() == 1.0
        breaker.quarantines = 2
        assert breaker.cooldown_seconds() == 2.0
        breaker.quarantines = 3
        assert breaker.cooldown_seconds() == 4.0
