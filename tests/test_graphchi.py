"""Tests for the GraphChi baseline: shards, PSW execution, scheduling."""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root

from repro.algorithms.reference import bfs_levels
from repro.engines.graphchi import (
    GraphChiConfig,
    GraphChiEngine,
    build_shards,
)
from repro.errors import ConfigError, EngineError, PartitionError
from repro.graph.generators import grid_graph, path_graph, rmat_graph
from repro.graph.graph import Graph


class TestShards:
    def test_shards_partition_in_edges(self, rmat10):
        sharded = build_shards(rmat10, 4)
        assert sum(len(s) for s in sharded.shards) == rmat10.num_edges
        for j, shard in enumerate(sharded.shards):
            lo, hi = sharded.interval_range(j)
            assert ((shard.dst >= lo) & (shard.dst < hi)).all()

    def test_shards_sorted_by_source(self, rmat10):
        sharded = build_shards(rmat10, 4)
        for shard in sharded.shards:
            assert (np.diff(shard.src) >= 0).all()

    def test_balanced_by_in_edges(self, rmat10):
        sharded = build_shards(rmat10, 4)
        sizes = [len(s) for s in sharded.shards]
        assert max(sizes) < 2.5 * (rmat10.num_edges / 4)

    def test_window_is_contiguous_block(self, rmat10):
        sharded = build_shards(rmat10, 4)
        shard = sharded.shards[1]
        lo, hi = sharded.interval_range(2)
        window = shard.window(lo, hi)
        block = shard.src[window]
        assert ((block >= lo) & (block < hi)).all()
        outside = np.concatenate(
            [shard.src[: window.start], shard.src[window.stop :]]
        )
        assert not ((outside >= lo) & (outside < hi)).any()

    def test_window_counts_match_windows(self, rmat10):
        sharded = build_shards(rmat10, 3)
        counts = sharded.window_counts()
        for k, shard in enumerate(sharded.shards):
            for j in range(3):
                lo, hi = sharded.interval_range(j)
                w = shard.window(lo, hi)
                assert counts[k, j] == w.stop - w.start
        assert counts.sum() == rmat10.num_edges

    def test_single_shard(self, rmat10):
        sharded = build_shards(rmat10, 1)
        assert sharded.num_intervals == 1
        assert len(sharded.shards[0]) == rmat10.num_edges

    def test_more_shards_than_vertices_clamped(self):
        g = Graph.from_edge_pairs(3, [(0, 1), (1, 2)])
        assert build_shards(g, 10).num_intervals <= 3

    def test_bad_count(self, rmat10):
        with pytest.raises(PartitionError):
            build_shards(rmat10, 0)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(threads=0),
            dict(edge_record_bytes=0),
            dict(edge_value_bytes=0),
            dict(membudget_fraction=0.0),
            dict(num_shards=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            GraphChiConfig(**kwargs)

    def test_shard_planning_tracks_memory(self, rmat12):
        engine = GraphChiEngine()
        small = engine.plan_shard_count(rmat12, fresh_machine(memory=2**16))
        big = engine.plan_shard_count(rmat12, fresh_machine(memory=2**24))
        assert small > big


class TestExecution:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_matches_reference(self, rmat10, shards):
        root = hub_root(rmat10)
        ref = bfs_levels(rmat10, root)
        engine = GraphChiEngine(GraphChiConfig(num_shards=shards))
        result = engine.run(rmat10, fresh_machine(), root=root)
        assert np.array_equal(result.levels, ref)

    def test_parents_valid(self, rmat10):
        from repro.algorithms.validation import validate_bfs_result

        root = hub_root(rmat10)
        result = GraphChiEngine(GraphChiConfig(num_shards=3)).run(
            rmat10, fresh_machine(), root=root
        )
        validate_bfs_result(
            rmat10, root, result.levels, result.parents
        ).raise_if_failed()

    def test_grid(self, grid):
        ref = bfs_levels(grid, 0)
        result = GraphChiEngine(GraphChiConfig(num_shards=3)).run(
            grid, fresh_machine(), root=0
        )
        assert np.array_equal(result.levels, ref)

    def test_path_async_converges_fast(self, path):
        """Async propagation crosses many levels per pass."""
        result = GraphChiEngine(GraphChiConfig(num_shards=4)).run(
            path, fresh_machine(), root=0
        )
        assert result.levels[-1] == 63
        assert result.num_iterations < 64  # far fewer passes than levels

    def test_async_fewer_iterations_than_bsp(self, rmat10):
        from tests.helpers import small_engine_config
        from repro.engines.xstream import XStreamEngine

        root = hub_root(rmat10)
        gc = GraphChiEngine(GraphChiConfig(num_shards=4)).run(
            rmat10, fresh_machine(), root=root
        )
        xs = XStreamEngine(small_engine_config()).run(
            rmat10, fresh_machine(), root=root
        )
        assert gc.num_iterations <= xs.num_iterations

    def test_multiple_roots(self, rmat10):
        result = GraphChiEngine(GraphChiConfig(num_shards=2)).run(
            rmat10, fresh_machine(), roots=[0, 5]
        )
        assert result.levels[0] == 0 and result.levels[5] == 0

    def test_unreachable_get_sentinel(self):
        g = Graph.from_edge_pairs(4, [(0, 1)])
        result = GraphChiEngine(GraphChiConfig(num_shards=2)).run(
            g, fresh_machine(), root=0
        )
        assert result.levels.tolist() == [0, 1, -1, -1]
        assert result.parents[2] == np.uint32(0xFFFFFFFF)

    def test_bad_root(self, rmat10):
        with pytest.raises(EngineError):
            GraphChiEngine().run(rmat10, fresh_machine(), root=10**9)

    def test_used_machine_rejected(self, rmat10):
        machine = fresh_machine()
        GraphChiEngine(GraphChiConfig(num_shards=2)).run(rmat10, machine, root=0)
        with pytest.raises(EngineError):
            GraphChiEngine().run(rmat10, machine, root=0)

    def test_preprocessing_reported_not_charged(self, rmat10):
        result = GraphChiEngine(GraphChiConfig(num_shards=2)).run(
            rmat10, fresh_machine(), root=hub_root(rmat10)
        )
        assert result.extras["preprocessing_time"] > 0
        # First measured I/O starts at t=0: preprocessing wasn't on the clock.
        assert result.iterations[0].clock_end < result.execution_time + 1e-9


class TestScheduling:
    def test_selective_reads_less(self, path):
        on = GraphChiEngine(GraphChiConfig(num_shards=4)).run(
            path, fresh_machine(), root=0
        )
        off = GraphChiEngine(
            GraphChiConfig(num_shards=4, selective_scheduling=False)
        ).run(path, fresh_machine(), root=0)
        assert on.report.bytes_read < off.report.bytes_read
        assert np.array_equal(on.levels, off.levels)

    def test_scheduler_stops_without_extra_pass(self, star):
        """Leaves have no out-edges: nothing is scheduled after pass 0."""
        result = GraphChiEngine(GraphChiConfig(num_shards=2)).run(
            star, fresh_machine(), root=0
        )
        assert result.report.bytes_written > 0
        assert result.num_iterations == 1


class TestIOModel:
    def test_reads_and_writes_both_charged(self, rmat10):
        result = GraphChiEngine(GraphChiConfig(num_shards=3)).run(
            rmat10, fresh_machine(), root=hub_root(rmat10)
        )
        assert result.report.bytes_read > rmat10.num_edges * 8
        assert result.report.bytes_written > 0

    def test_heavier_than_xstream_per_iteration(self, rmat10):
        from tests.helpers import small_engine_config
        from repro.engines.xstream import XStreamEngine

        root = hub_root(rmat10)
        gc = GraphChiEngine(
            GraphChiConfig(num_shards=4, selective_scheduling=False)
        ).run(rmat10, fresh_machine(), root=root)
        xs = XStreamEngine(small_engine_config()).run(
            rmat10, fresh_machine(), root=root
        )
        gc_per_iter = gc.report.bytes_total / gc.num_iterations
        xs_per_iter = xs.report.bytes_total / xs.num_iterations
        assert gc_per_iter > xs_per_iter


class TestWCC:
    def test_labels_match_networkx(self):
        import networkx as nx

        g = rmat_graph(scale=8, edge_factor=2, seed=9).symmetrized()
        result = GraphChiEngine(GraphChiConfig(num_shards=3)).run(
            g, fresh_machine(), algorithm="wcc"
        )
        labels = result.output["label"]
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_vertices))
        nxg.add_edges_from(zip(g.edges["src"].tolist(), g.edges["dst"].tolist()))
        for comp in nx.connected_components(nxg):
            comp = list(comp)
            assert len(set(labels[comp].tolist())) == 1
            assert labels[comp[0]] == min(comp)

    def test_matches_streaming_wcc(self):
        from tests.helpers import small_fastbfs_config
        from repro.algorithms.streaming import WCCAlgorithm
        from repro.core.engine import FastBFSEngine

        g = rmat_graph(scale=7, edge_factor=3, seed=4).symmetrized()
        chi = GraphChiEngine(GraphChiConfig(num_shards=2)).run(
            g, fresh_machine(), algorithm="wcc"
        )
        stream = FastBFSEngine(small_fastbfs_config(num_partitions=3)).run(
            g, fresh_machine(), algorithm=WCCAlgorithm(), root=0
        )
        assert np.array_equal(chi.output["label"], stream.output["label"])

    def test_result_metadata(self):
        g = rmat_graph(scale=6, edge_factor=2, seed=1).symmetrized()
        result = GraphChiEngine(GraphChiConfig(num_shards=2)).run(
            g, fresh_machine(), algorithm="wcc"
        )
        assert result.algorithm == "wcc"
        assert "parent" not in result.output

    def test_unknown_algorithm(self, rmat10):
        with pytest.raises(EngineError):
            GraphChiEngine().run(rmat10, fresh_machine(), algorithm="pagerank")
