"""Shared fixtures for the test suite (helpers live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from repro.graph.generators import (
    grid_graph,
    path_graph,
    powerlaw_graph,
    random_graph,
    rmat_graph,
    star_graph,
)


@pytest.fixture
def rmat12():
    return rmat_graph(scale=12, edge_factor=8, seed=11)


@pytest.fixture
def rmat10():
    return rmat_graph(scale=10, edge_factor=8, seed=5)


@pytest.fixture
def grid():
    return grid_graph(30, 20)


@pytest.fixture
def path():
    return path_graph(64)


@pytest.fixture
def star():
    return star_graph(100)


@pytest.fixture
def random_small():
    return random_graph(500, 3000, seed=9)


@pytest.fixture
def powerlaw_small():
    return powerlaw_graph(2000, 20000, exponent=1.9, out_exponent=2.0, seed=13)
