"""Tests for the simulated engine clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock()
        assert clock.now == 0.0
        assert clock.elapsed == 0.0
        assert clock.compute_time == 0.0
        assert clock.iowait_time == 0.0

    def test_custom_start(self):
        clock = SimClock(start=5.0)
        assert clock.now == 5.0
        assert clock.elapsed == 0.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(start=-1.0)

    def test_charge_compute_advances(self):
        clock = SimClock()
        clock.charge_compute(0.5)
        assert clock.now == 0.5
        assert clock.compute_time == 0.5
        assert clock.iowait_time == 0.0

    def test_charge_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(SimulationError):
            clock.charge_compute(-0.1)

    def test_wait_until_future_accounts_iowait(self):
        clock = SimClock()
        waited = clock.wait_until(2.0)
        assert waited == 2.0
        assert clock.now == 2.0
        assert clock.iowait_time == 2.0
        assert clock.compute_time == 0.0

    def test_wait_until_past_is_noop(self):
        clock = SimClock()
        clock.charge_compute(3.0)
        waited = clock.wait_until(1.0)
        assert waited == 0.0
        assert clock.now == 3.0
        assert clock.iowait_time == 0.0

    def test_iowait_ratio(self):
        clock = SimClock()
        clock.charge_compute(1.0)
        clock.wait_until(4.0)
        assert clock.iowait_ratio == pytest.approx(3.0 / 4.0)

    def test_iowait_ratio_empty_clock(self):
        assert SimClock().iowait_ratio == 0.0

    def test_compute_categories(self):
        clock = SimClock()
        clock.charge_compute(1.0, category="scatter")
        clock.charge_compute(0.5, category="gather")
        clock.charge_compute(0.25, category="scatter")
        breakdown = clock.compute_breakdown()
        assert breakdown["scatter"] == pytest.approx(1.25)
        assert breakdown["gather"] == pytest.approx(0.5)

    def test_breakdown_is_copy(self):
        clock = SimClock()
        clock.charge_compute(1.0, category="a")
        clock.compute_breakdown()["a"] = 99.0
        assert clock.compute_breakdown()["a"] == 1.0

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["compute", "wait"]),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            max_size=50,
        )
    )
    def test_accounting_identity(self, ops):
        """elapsed == compute + iowait, always, and the clock is monotone."""
        clock = SimClock()
        last = clock.now
        for kind, amount in ops:
            if kind == "compute":
                clock.charge_compute(amount)
            else:
                clock.wait_until(clock.now + amount)
            assert clock.now >= last
            last = clock.now
        assert clock.elapsed == pytest.approx(
            clock.compute_time + clock.iowait_time
        )
