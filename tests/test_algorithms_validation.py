"""Tests for Graph500-style BFS validation and TEPS."""

import numpy as np
import pytest

from repro.algorithms.reference import bfs_parents_and_levels
from repro.algorithms.validation import (
    teps,
    traversed_edges,
    validate_bfs_result,
)
from repro.errors import ValidationError
from repro.graph.generators import path_graph, rmat_graph
from repro.graph.graph import Graph
from repro.graph.types import NO_PARENT, UNVISITED


@pytest.fixture
def graph():
    return rmat_graph(scale=9, edge_factor=8, seed=6)


@pytest.fixture
def valid(graph):
    root = int(np.argmax(graph.out_degrees()))
    levels, parents = bfs_parents_and_levels(graph, root)
    return graph, root, levels, parents


class TestAcceptsValid:
    def test_reference_result_validates(self, valid):
        graph, root, levels, parents = valid
        report = validate_bfs_result(graph, root, levels, parents, levels)
        assert report.ok, report.errors
        assert report.visited == int((levels >= 0).sum())
        assert report.depth == int(levels.max())

    def test_levels_only(self, valid):
        graph, root, levels, _ = valid
        assert validate_bfs_result(graph, root, levels).ok

    def test_raise_if_failed_passes(self, valid):
        graph, root, levels, parents = valid
        validate_bfs_result(graph, root, levels, parents).raise_if_failed()


class TestRejectsCorruption:
    def test_wrong_root_level(self, valid):
        graph, root, levels, parents = valid
        levels = levels.copy()
        levels[root] = 1
        assert not validate_bfs_result(graph, root, levels, parents).ok

    def test_level_skip(self, valid):
        graph, root, levels, parents = valid
        levels = levels.copy()
        victim = int(np.flatnonzero(levels == 1)[0])
        levels[victim] = 5  # its in-edge from the root now skips levels
        assert not validate_bfs_result(graph, root, levels, parents).ok

    def test_unvisited_with_visited_inneighbor(self, valid):
        graph, root, levels, parents = valid
        levels = levels.copy()
        parents = parents.copy()
        victim = int(np.flatnonzero(levels == 1)[0])
        levels[victim] = UNVISITED
        parents[victim] = NO_PARENT
        assert not validate_bfs_result(graph, root, levels, parents).ok

    def test_phantom_tree_edge(self):
        g = Graph.from_edge_pairs(4, [(0, 1), (1, 2), (2, 3)])
        levels = np.array([0, 1, 2, 3], dtype=np.int32)
        parents = np.array([NO_PARENT, 0, 1, 1], dtype=np.uint32)  # 1->3 fake
        # levels say parent of 3 is 2 levels up: both checks catch it
        assert not validate_bfs_result(g, 0, levels, parents).ok

    def test_parent_without_visit(self):
        g = path_graph(3)
        levels = np.array([0, 1, UNVISITED], dtype=np.int32)
        parents = np.array([NO_PARENT, 0, 1], dtype=np.uint32)
        assert not validate_bfs_result(g, 0, levels, parents).ok

    def test_visited_without_parent(self):
        g = path_graph(3)
        levels = np.array([0, 1, 2], dtype=np.int32)
        parents = np.array([NO_PARENT, 0, NO_PARENT], dtype=np.uint32)
        assert not validate_bfs_result(g, 0, levels, parents).ok

    def test_reference_mismatch(self, valid):
        graph, root, levels, parents = valid
        ref = levels.copy()
        unvisited = np.flatnonzero(levels == UNVISITED)
        if len(unvisited) == 0:
            pytest.skip("graph fully reachable")
        bad = levels.copy()
        bad[unvisited[0]] = UNVISITED  # unchanged; corrupt ref instead
        ref[unvisited[0]] = 3
        assert not validate_bfs_result(graph, root, bad, parents, ref).ok

    def test_wrong_shape(self, valid):
        graph, root, levels, parents = valid
        assert not validate_bfs_result(graph, root, levels[:-1], parents).ok

    def test_bad_root(self, valid):
        graph, _, levels, parents = valid
        assert not validate_bfs_result(graph, -1, levels, parents).ok

    def test_raise_if_failed_raises(self):
        g = path_graph(2)
        levels = np.array([1, 0], dtype=np.int32)
        report = validate_bfs_result(g, 0, levels)
        with pytest.raises(ValidationError):
            report.raise_if_failed()


class TestTeps:
    def test_traversed_edges_counts_visited_sources(self):
        g = Graph.from_edge_pairs(4, [(0, 1), (1, 2), (3, 0)])
        levels = np.array([0, 1, 2, UNVISITED], dtype=np.int32)
        assert traversed_edges(g, levels) == 2

    def test_teps_value(self):
        g = path_graph(5)
        levels = np.array([0, 1, 2, 3, 4], dtype=np.int32)
        assert teps(g, levels, 2.0) == pytest.approx(2.0)

    def test_teps_rejects_zero_time(self):
        g = path_graph(2)
        with pytest.raises(ValidationError):
            teps(g, np.array([0, 1], dtype=np.int32), 0.0)
