"""Unit tests for the repo-specific static lint pass."""

from pathlib import Path

from repro.tooling.lint import RULES, LintViolation, lint_paths, lint_source

SIM_PATH = "src/repro/sim/fake.py"
CORE_PATH = "src/repro/core/fake.py"
STORAGE_PATH = "src/repro/storage/fake.py"
OTHER_PATH = "src/repro/analysis/fake.py"

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(violations):
    return [v.code for v in violations]


class TestWallclockRule:
    def test_time_time_flagged_in_sim(self):
        src = "import time\nt = time.time()\n"
        assert codes(lint_source(src, SIM_PATH)) == ["FB101"]

    def test_perf_counter_from_import_flagged(self):
        src = "from time import perf_counter\nt = perf_counter()\n"
        assert codes(lint_source(src, SIM_PATH)) == ["FB101"]

    def test_aliased_import_flagged(self):
        src = "from time import monotonic as mono\nt = mono()\n"
        assert codes(lint_source(src, STORAGE_PATH)) == ["FB101"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert codes(lint_source(src, SIM_PATH)) == ["FB101"]

    def test_allowed_outside_sim_layers(self):
        src = "import time\nt = time.time()\n"
        assert lint_source(src, OTHER_PATH) == []

    def test_unrelated_time_name_not_flagged(self):
        # A local function named `time` is not the stdlib call.
        src = "def time():\n    return 0\nt = time()\n"
        assert lint_source(src, SIM_PATH) == []


class TestBareAssertRule:
    def test_assert_flagged(self):
        src = "def f(x):\n    assert x > 0\n    return x\n"
        out = lint_source(src, OTHER_PATH)
        assert codes(out) == ["FB102"]
        assert out[0].line == 2

    def test_raise_not_flagged(self):
        src = "def f(x):\n    if x <= 0:\n        raise ValueError(x)\n    return x\n"
        assert lint_source(src, OTHER_PATH) == []

    def test_test_files_exempt(self):
        src = "assert 1 == 1\n"
        assert lint_source(src, "tests/test_fake.py") == []


class TestHookPairingRule:
    def test_pre_without_post_flagged(self):
        src = (
            "class MyEngine:\n"
            "    def _pre_partition_scatter(self, rt, p, ctx):\n"
            "        pass\n"
        )
        assert codes(lint_source(src, OTHER_PATH)) == ["FB103"]

    def test_both_hooks_clean(self):
        src = (
            "class MyEngine:\n"
            "    def _pre_partition_scatter(self, rt, p, ctx):\n"
            "        pass\n"
            "    def _post_partition_scatter(self, rt, p, ctx):\n"
            "        pass\n"
        )
        assert lint_source(src, OTHER_PATH) == []

    def test_post_only_clean(self):
        src = (
            "class MyEngine:\n"
            "    def _post_partition_scatter(self, rt, p, ctx):\n"
            "        pass\n"
        )
        assert lint_source(src, OTHER_PATH) == []


class TestVirtualFileRule:
    def test_direct_construction_flagged(self):
        src = "f = VirtualFile('x', dev)\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["FB104"]

    def test_attribute_construction_flagged(self):
        src = "f = vfs_module.VirtualFile('x', dev)\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["FB104"]

    def test_allowed_in_vfs_module(self):
        src = "f = VirtualFile('x', dev)\n"
        assert lint_source(src, "src/repro/storage/vfs.py") == []

    def test_vfs_create_clean(self):
        src = "f = vfs.create('x', dev)\n"
        assert lint_source(src, OTHER_PATH) == []


class TestClockMutationRule:
    def test_assignment_flagged(self):
        src = "clock._now = 5.0\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["FB105"]

    def test_augmented_assignment_flagged(self):
        src = "clock._iowait_time += 1.0\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["FB105"]

    def test_allowed_in_clock_module(self):
        src = "self._now = 5.0\n"
        assert lint_source(src, "src/repro/sim/clock.py") == []

    def test_reading_not_flagged(self):
        src = "t = clock._now\n"
        assert lint_source(src, OTHER_PATH) == []


class TestTimelineScheduleRule:
    def test_direct_schedule_flagged(self):
        src = "req = dev.timeline.schedule(submit=0, service=1, nbytes=2, kind='read')\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["FB106"]

    def test_allowed_in_device_module(self):
        src = "req = self.timeline.schedule(submit=0, service=1, nbytes=2, kind='read')\n"
        assert lint_source(src, "src/repro/storage/device.py") == []

    def test_other_schedule_calls_clean(self):
        src = "job = scheduler.schedule(task)\n"
        assert lint_source(src, OTHER_PATH) == []


class TestRunStateRule:
    def test_construction_flagged_outside_engine_layer(self):
        src = "rt = _RunState(graph, machine, cfg, algo)\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["FB107"]

    def test_attribute_construction_flagged(self):
        src = "rt = base._RunState(graph, machine, cfg, algo)\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["FB107"]

    def test_rt_assignment_flagged(self):
        src = "engine._rt = rt\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["FB107"]

    def test_allowed_in_engines_and_core(self):
        src = "rt = _RunState(graph, machine, cfg, algo)\nself._rt = rt\n"
        assert lint_source(src, "src/repro/engines/session.py") == []
        assert lint_source(src, "src/repro/core/engine.py") == []

    def test_reading_rt_not_flagged(self):
        src = "stats = engine._rt.iteration_stats\n"
        assert lint_source(src, OTHER_PATH) == []

    def test_noqa_suppresses(self):
        src = "engine._rt = rt  # noqa: FB107\n"
        assert lint_source(src, OTHER_PATH) == []


class TestEngineDebugIORule:
    ENGINES_PATH = "src/repro/engines/fake.py"

    def test_time_import_flagged_in_engines(self):
        out = lint_source("import time\n", self.ENGINES_PATH)
        assert codes(out) == ["FB108"]

    def test_time_import_flagged_in_core(self):
        # core/ sits in both the sim and the engine layer: the import
        # itself is FB108, and the wall-clock call on top of it is FB101.
        src = "from time import perf_counter\nt = perf_counter()\n"
        assert codes(lint_source(src, CORE_PATH)) == ["FB108", "FB101"]

    def test_print_flagged_in_engines(self):
        src = "def f(x):\n    print(x)\n    return x\n"
        out = lint_source(src, "src/repro/engines/graphchi/fake.py")
        assert codes(out) == ["FB108"]
        assert out[0].line == 2

    def test_print_flagged_in_core(self):
        assert codes(lint_source("print('dbg')\n", CORE_PATH)) == ["FB108"]

    def test_allowed_outside_engine_layer(self):
        assert lint_source("import time\nprint(time.asctime())\n", OTHER_PATH) == []

    def test_storage_layer_print_allowed(self):
        # FB108 scopes engines/core only; storage is covered by FB101.
        assert lint_source("print('x')\n", STORAGE_PATH) == []

    def test_method_named_print_clean(self):
        src = "logger.print('x')\n"
        assert lint_source(src, self.ENGINES_PATH) == []

    def test_noqa_suppresses(self):
        assert lint_source("import time  # noqa: FB108\n", CORE_PATH) == []


class TestBroadExceptRule:
    ENGINES_PATH = "src/repro/engines/fake.py"

    def test_bare_except_flagged_in_engines(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        out = lint_source(src, self.ENGINES_PATH)
        assert codes(out) == ["FB109"]
        assert out[0].line == 3

    def test_except_exception_flagged_in_core(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert codes(lint_source(src, CORE_PATH)) == ["FB109"]

    def test_except_base_exception_flagged(self):
        src = "try:\n    f()\nexcept BaseException as exc:\n    raise exc\n"
        assert codes(lint_source(src, self.ENGINES_PATH)) == ["FB109"]

    def test_broad_name_in_tuple_clause_flagged(self):
        src = "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n"
        assert codes(lint_source(src, self.ENGINES_PATH)) == ["FB109"]

    def test_typed_repro_error_clean(self):
        src = (
            "from repro.errors import CrashError, EngineError\n"
            "try:\n    f()\nexcept CrashError:\n    pass\n"
            "try:\n    f()\nexcept (EngineError, CrashError) as exc:\n"
            "    raise exc\n"
        )
        assert lint_source(src, self.ENGINES_PATH) == []

    def test_allowed_outside_engine_layer(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert lint_source(src, OTHER_PATH) == []
        assert lint_source(src, STORAGE_PATH) == []

    def test_noqa_suppresses(self):
        src = "try:\n    f()\nexcept Exception:  # noqa: FB109\n    pass\n"
        assert lint_source(src, self.ENGINES_PATH) == []


class TestSuppression:
    def test_blanket_noqa(self):
        src = "import time\nt = time.time()  # noqa\n"
        assert lint_source(src, SIM_PATH) == []

    def test_code_specific_noqa(self):
        src = "import time\nt = time.time()  # noqa: FB101\n"
        assert lint_source(src, SIM_PATH) == []

    def test_wrong_code_noqa_still_flags(self):
        src = "import time\nt = time.time()  # noqa: FB102\n"
        assert codes(lint_source(src, SIM_PATH)) == ["FB101"]


class TestHarness:
    def test_syntax_error_reported_not_raised(self):
        out = lint_source("def f(:\n", OTHER_PATH)
        assert codes(out) == ["FB100"]

    def test_violation_str_format(self):
        v = LintViolation(path="a.py", line=3, col=1, code="FB102", message="m")
        assert str(v) == "a.py:3:1: FB102 m"

    def test_rule_catalogue_is_complete(self):
        assert set(RULES) == {
            "FB101", "FB102", "FB103", "FB104", "FB105", "FB106", "FB107",
            "FB108", "FB109",
        }

    def test_repo_source_tree_is_clean(self):
        """Acceptance gate: the shipped src/repro has zero violations."""
        violations = lint_paths([str(REPO_ROOT / "src" / "repro")])
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_lint_paths_on_single_file(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nassert time.time()\n")
        out = lint_paths([str(bad)])
        assert sorted(codes(out)) == ["FB101", "FB102"]
