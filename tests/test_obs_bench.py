"""Tests for the benchmark snapshot harness and regression gate.

Contracts locked down here:

* **schema round-trip** — a collected snapshot writes as canonical JSON
  and loads back equal, with schema version checked;
* **determinism** — two collections at the same divisor/seed produce
  byte-identical *canonical* documents (no timestamps, no host facts
  outside the informational ``host`` section);
* **host section** — v3 snapshots carry a per-scenario dual-clock
  breakdown that the regression gate provably never reads;
* **gate behaviour** — improvements pass, regressions beyond tolerance
  fail with a readable per-metric diff, direction-aware per metric;
* **sequencing** — ``BENCH_<seq>.json`` naming, newest-pair comparison,
  and the CLI's exit codes.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.analysis.harness import ExperimentRunner
from repro.cli import main as cli_main
from repro.obs.bench import (
    DEFAULT_SCENARIOS,
    SNAPSHOT_SCHEMA_VERSION,
    TOLERANCES,
    BenchError,
    Scenario,
    canonical_snapshot,
    collect_snapshot,
    compare_latest,
    compare_snapshots,
    load_snapshot,
    snapshot_files,
    snapshot_to_json,
    write_snapshot,
)

DIVISOR = 2048  # tiny stand-ins: the whole scenario set runs in ~1 s

#: One cheap scenario pair for collection-level tests.
FAST_SCENARIOS = (
    Scenario("fastbfs", "fastbfs"),
    Scenario("x-stream", "x-stream"),
)


@pytest.fixture(scope="module")
def snapshot():
    return collect_snapshot(
        runner=ExperimentRunner(divisor=DIVISOR), scenarios=FAST_SCENARIOS
    )


def synthetic_snapshot() -> dict:
    """A small hand-written snapshot for gate tests (no runs needed)."""
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "divisor": 1024,
        "seed": 1,
        "scenarios": {
            "fastbfs": {
                "engine": "fastbfs",
                "execution_time": 10.0,
                "input_bytes": 1000.0,
                "total_bytes": 2000.0,
                "iowait_ratio": 0.5,
                "iterations": 12,
                "trim_effectiveness": 0.8,
            },
        },
        "derived": {},
    }


# ----------------------------------------------------------------------
# collection + schema
# ----------------------------------------------------------------------
class TestCollection:
    def test_snapshot_shape(self, snapshot):
        assert snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert snapshot["divisor"] == DIVISOR
        assert set(snapshot["scenarios"]) == {"fastbfs", "x-stream"}
        for doc in snapshot["scenarios"].values():
            for key in (
                "execution_time", "input_bytes", "total_bytes",
                "iowait_ratio", "iterations", "trim_effectiveness", "profile",
            ):
                assert key in doc
            assert doc["execution_time"] > 0
            assert 0.0 <= doc["trim_effectiveness"] <= 1.0
            prof = doc["profile"]
            assert "stage_totals" in prof
            assert "stay_hidden_fraction" in prof
        assert snapshot["derived"]["speedup_vs_x-stream"] > 0

    def test_fastbfs_trims_and_x_stream_does_not(self, snapshot):
        sc = snapshot["scenarios"]
        assert sc["fastbfs"]["trim_effectiveness"] > 0
        assert sc["x-stream"]["trim_effectiveness"] == 0.0

    def test_snapshot_is_deterministic(self, snapshot):
        # Byte-identical on the canonical view; the informational host
        # section is the one place wall-clock facts may differ.
        again = collect_snapshot(
            runner=ExperimentRunner(divisor=DIVISOR), scenarios=FAST_SCENARIOS
        )
        assert snapshot_to_json(canonical_snapshot(again)) == snapshot_to_json(
            canonical_snapshot(snapshot)
        )

    def test_host_section_is_informational(self, snapshot):
        # Present for every single-run scenario, with the dual-clock
        # headline metrics...
        host = snapshot["host"]
        assert set(host) == {"fastbfs", "x-stream"}
        for doc in host.values():
            assert doc["host_seconds"] > 0.0
            assert doc["host_seconds_per_sim_second"] > 0.0
            assert doc["edges_scanned_per_host_second"] > 0.0
            assert doc["stages"]
        # ...and provably invisible to the gate: wildly different host
        # sections compare clean.
        other = copy.deepcopy(snapshot)
        other["host"] = {"fastbfs": {"host_seconds": 1e9}}
        cmp_ = compare_snapshots(snapshot, other)
        assert cmp_.ok and not cmp_.regressions and not cmp_.problems

    def test_snapshot_json_has_no_timestamps(self, snapshot):
        text = snapshot_to_json(snapshot)
        for word in ("time_stamp", "timestamp", "date", "hostname"):
            assert word not in text

    def test_write_load_round_trip(self, snapshot, tmp_path):
        path = write_snapshot(snapshot, root=str(tmp_path))
        assert path.endswith("BENCH_0.json")
        assert load_snapshot(path) == snapshot

    def test_default_scenarios_cover_the_paper_matrix(self):
        names = {sc.name for sc in DEFAULT_SCENARIOS}
        assert {"fastbfs", "x-stream", "graphchi", "fastbfs-2disk",
                "fastbfs-multiquery"} <= names
        kinds = {sc.name: sc.kind for sc in DEFAULT_SCENARIOS}
        assert kinds["fastbfs-multiquery"] == "multi-query"

    def test_multi_query_scenario_records_amortization(self):
        from repro.obs.bench import (
            MULTI_QUERY_MAX_AMORTIZATION,
            MULTI_QUERY_Q,
        )

        doc = collect_snapshot(
            runner=ExperimentRunner(divisor=DIVISOR),
            scenarios=(
                Scenario("fastbfs-multiquery", "fastbfs", kind="multi-query"),
            ),
        )
        entry = doc["scenarios"]["fastbfs-multiquery"]
        assert entry["kind"] == "multi-query"
        assert entry["queries"] == MULTI_QUERY_Q
        assert entry["batches"] == 1
        assert 0 < entry["edges_scanned"] < entry["serial_edges_scanned"]
        assert (
            0.0
            < entry["edge_scan_amortization"]
            <= MULTI_QUERY_MAX_AMORTIZATION
        )
        assert entry["batched_time"] < entry["serial_time"]


class TestFiles:
    def test_sequence_numbering(self, tmp_path):
        doc = synthetic_snapshot()
        p0 = write_snapshot(doc, root=str(tmp_path))
        p1 = write_snapshot(doc, root=str(tmp_path))
        p9 = write_snapshot(doc, root=str(tmp_path), seq=9)
        p_next = write_snapshot(doc, root=str(tmp_path))
        assert [p.endswith(s) for p, s in [
            (p0, "BENCH_0.json"), (p1, "BENCH_1.json"),
            (p9, "BENCH_9.json"), (p_next, "BENCH_10.json"),
        ]] == [True] * 4
        assert [seq for seq, _ in snapshot_files(str(tmp_path))] == [0, 1, 9, 10]

    def test_load_rejects_wrong_schema_version(self, tmp_path):
        doc = synthetic_snapshot()
        doc["schema_version"] = 999
        path = write_snapshot(doc, root=str(tmp_path))
        with pytest.raises(BenchError):
            load_snapshot(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "BENCH_0.json"
        path.write_text("not json")
        with pytest.raises(BenchError):
            load_snapshot(str(path))

    def test_compare_latest_needs_two(self, tmp_path):
        with pytest.raises(BenchError):
            compare_latest(str(tmp_path))


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
class TestGate:
    def test_identical_snapshots_pass(self):
        base = synthetic_snapshot()
        cmp_ = compare_snapshots(base, copy.deepcopy(base))
        assert cmp_.ok and not cmp_.regressions
        assert "PASS" in cmp_.render()

    def test_improvement_passes_and_is_reported(self):
        base = synthetic_snapshot()
        cur = copy.deepcopy(base)
        cur["scenarios"]["fastbfs"]["execution_time"] = 8.0  # 20% faster
        cmp_ = compare_snapshots(base, cur)
        assert cmp_.ok
        assert [d.metric for d in cmp_.improvements] == ["execution_time"]

    def test_regression_beyond_tolerance_fails_readably(self):
        base = synthetic_snapshot()
        cur = copy.deepcopy(base)
        cur["scenarios"]["fastbfs"]["execution_time"] = 10.5  # +5% > 2%
        cmp_ = compare_snapshots(base, cur)
        assert not cmp_.ok
        (reg,) = cmp_.regressions
        assert reg.metric == "execution_time"
        text = cmp_.render()
        assert "REGRESSED" in text and "FAIL" in text
        assert "10" in text and "10.5" in text  # both values visible

    def test_drift_within_tolerance_passes(self):
        base = synthetic_snapshot()
        cur = copy.deepcopy(base)
        cur["scenarios"]["fastbfs"]["execution_time"] = 10.1  # +1% < 2%
        assert compare_snapshots(base, cur).ok

    def test_direction_awareness(self):
        base = synthetic_snapshot()
        # Lower trim effectiveness is a regression...
        worse = copy.deepcopy(base)
        worse["scenarios"]["fastbfs"]["trim_effectiveness"] = 0.7
        assert not compare_snapshots(base, worse).ok
        # ...but higher is an improvement.
        better = copy.deepcopy(base)
        better["scenarios"]["fastbfs"]["trim_effectiveness"] = 0.9
        cmp_ = compare_snapshots(base, better)
        assert cmp_.ok and cmp_.improvements

    def test_iteration_count_must_match_exactly(self):
        base = synthetic_snapshot()
        for delta in (-1, 1):
            cur = copy.deepcopy(base)
            cur["scenarios"]["fastbfs"]["iterations"] = 12 + delta
            assert not compare_snapshots(base, cur).ok

    def test_divisor_mismatch_is_a_problem(self):
        base = synthetic_snapshot()
        cur = copy.deepcopy(base)
        cur["divisor"] = 4096
        cmp_ = compare_snapshots(base, cur)
        assert not cmp_.ok and cmp_.problems

    def test_missing_scenario_is_a_problem(self):
        base = synthetic_snapshot()
        cur = copy.deepcopy(base)
        del cur["scenarios"]["fastbfs"]
        cmp_ = compare_snapshots(base, cur)
        assert not cmp_.ok
        assert "missing" in cmp_.problems[0]

    def test_tolerance_policy_covers_the_tracked_metrics(self):
        assert set(TOLERANCES) == {
            "execution_time", "input_bytes", "total_bytes",
            "iowait_ratio", "iterations", "trim_effectiveness",
            "edge_scan_amortization", "batched_time",
        }
        assert TOLERANCES["edge_scan_amortization"].worse == "higher"
        assert TOLERANCES["batched_time"].worse == "higher"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_compare_without_snapshots_exits_2(self, tmp_path, capsys):
        assert cli_main(["bench", "compare", "--dir", str(tmp_path)]) == 2

    def test_compare_pass_and_fail_paths(self, tmp_path, capsys):
        base = synthetic_snapshot()
        write_snapshot(base, root=str(tmp_path))
        write_snapshot(copy.deepcopy(base), root=str(tmp_path))
        assert cli_main(["bench", "compare", "--dir", str(tmp_path)]) == 0
        bad = copy.deepcopy(base)
        bad["scenarios"]["fastbfs"]["total_bytes"] = 2500.0
        write_snapshot(bad, root=str(tmp_path))
        assert cli_main(["bench", "compare", "--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "total_bytes" in out and "FAIL" in out

    def test_bench_run_writes_next_snapshot(self, tmp_path, capsys):
        # Committed baseline (seq 0) + CI run (seq 1) is the real layout;
        # emulate it at test scale via the module-level divisor.
        assert cli_main([
            "bench", "run", "--dir", str(tmp_path),
            "--scale-divisor", str(DIVISOR),
        ]) == 0
        files = snapshot_files(str(tmp_path))
        assert [seq for seq, _ in files] == [0]
        doc = load_snapshot(files[0][1])
        assert doc["divisor"] == DIVISOR
        assert set(doc["scenarios"]) == {sc.name for sc in DEFAULT_SCENARIOS}
