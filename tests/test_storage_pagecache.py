"""Tests for the OS page-cache model."""

import numpy as np
import pytest

from tests.helpers import fresh_machine, hub_root

from repro.algorithms.reference import bfs_levels
from repro.engines.graphchi import GraphChiConfig, GraphChiEngine
from repro.errors import StorageError
from repro.graph.generators import rmat_graph
from repro.storage.device import Device, DeviceSpec
from repro.storage.machine import Machine
from repro.storage.pagecache import PageCache
from repro.utils.units import KB, MB


class TestPageCacheUnit:
    def test_validation(self):
        with pytest.raises(StorageError):
            PageCache(capacity_bytes=10, block_bytes=0)
        with pytest.raises(StorageError):
            PageCache(capacity_bytes=10, block_bytes=100)

    def test_cold_read_misses(self):
        cache = PageCache(1 * MB, block_bytes=4 * KB)
        miss = cache.read(file_id=1, offset=0, nbytes=10 * KB)
        assert miss == 10 * KB  # capped at the request size
        assert cache.miss_bytes == 10 * KB

    def test_warm_read_hits(self):
        cache = PageCache(1 * MB, block_bytes=4 * KB)
        cache.read(1, 0, 10 * KB)
        miss = cache.read(1, 0, 10 * KB)
        assert miss == 0
        assert cache.hit_bytes == 10 * KB

    def test_partial_overlap(self):
        cache = PageCache(1 * MB, block_bytes=4 * KB)
        cache.read(1, 0, 8 * KB)  # blocks 0, 1
        miss = cache.read(1, 4 * KB, 8 * KB)  # blocks 1 (hit), 2 (miss)
        assert miss == 4 * KB

    def test_lru_eviction(self):
        cache = PageCache(8 * KB, block_bytes=4 * KB)  # 2 blocks
        cache.read(1, 0, 4 * KB)  # block A
        cache.read(1, 4 * KB, 4 * KB)  # block B
        cache.read(1, 8 * KB, 4 * KB)  # block C evicts A
        assert not cache.contains(1, 0)
        assert cache.contains(1, 8 * KB)

    def test_access_refreshes_lru(self):
        cache = PageCache(8 * KB, block_bytes=4 * KB)
        cache.read(1, 0, 4 * KB)  # A
        cache.read(1, 4 * KB, 4 * KB)  # B
        cache.read(1, 0, 4 * KB)  # touch A
        cache.read(1, 8 * KB, 4 * KB)  # C evicts B, not A
        assert cache.contains(1, 0)
        assert not cache.contains(1, 4 * KB)

    def test_write_through_populates(self):
        cache = PageCache(1 * MB, block_bytes=4 * KB)
        cache.write(2, 0, 8 * KB)
        assert cache.read(2, 0, 8 * KB) == 0

    def test_files_do_not_collide(self):
        cache = PageCache(1 * MB, block_bytes=4 * KB)
        cache.read(1, 0, 4 * KB)
        assert cache.read(2, 0, 4 * KB) == 4 * KB

    def test_hit_ratio(self):
        cache = PageCache(1 * MB, block_bytes=4 * KB)
        assert cache.hit_ratio == 0.0
        cache.read(1, 0, 4 * KB)
        cache.read(1, 0, 4 * KB)
        assert cache.hit_ratio == pytest.approx(0.5)


class TestDeviceIntegration:
    def _device(self, cache):
        dev = Device(
            DeviceSpec("d", seek_time=0.0, read_bandwidth=100 * MB,
                       write_bandwidth=100 * MB)
        )
        dev.cache = cache
        return dev

    def test_second_read_is_free(self):
        dev = self._device(PageCache(1 * MB, block_bytes=4 * KB))
        first = dev.submit(0.0, "read", 64 * KB, file_id=1, offset=0)
        assert first.end > 0
        second = dev.submit(first.end, "read", 64 * KB, file_id=1, offset=0)
        assert second.end == second.start == first.end  # instant hit
        assert dev.bytes_read == 64 * KB  # only the miss reached the disk

    def test_writes_still_pay(self):
        dev = self._device(PageCache(1 * MB, block_bytes=4 * KB))
        req = dev.submit(0.0, "write", 64 * KB, file_id=1, offset=0)
        assert req.end > req.start
        assert dev.bytes_written == 64 * KB
        # ... but make subsequent reads of the same blocks free.
        hit = dev.submit(req.end, "read", 64 * KB, file_id=1, offset=0)
        assert hit.end == hit.start

    def test_no_cache_unchanged(self):
        dev = Device(DeviceSpec.hdd())
        a = dev.submit(0.0, "read", KB, file_id=1, offset=0)
        b = dev.submit(a.end, "read", KB, file_id=1, offset=0)
        assert b.end > b.start  # no caching without a cache


class TestMachineIntegration:
    def test_machine_wires_cache(self):
        m = Machine([DeviceSpec.hdd()], memory=MB, page_cache="1MB")
        assert m.page_cache is not None
        assert m.disks[0].cache is m.page_cache
        assert m.ram.cache is None

    def test_cache_shared_across_disks(self):
        m = Machine([DeviceSpec.hdd("a"), DeviceSpec.hdd("b")],
                    memory=MB, page_cache="1MB")
        assert m.disks[0].cache is m.disks[1].cache

    def test_graphchi_benefits_from_page_cache(self):
        """The paper's point: unblocked memory lets GraphChi's rescans hit
        the page cache, which is why they capped it at 4GB."""
        graph = rmat_graph(scale=10, edge_factor=8, seed=7)
        root = hub_root(graph)
        blocked = GraphChiEngine(GraphChiConfig(num_shards=4)).run(
            graph, fresh_machine(), root=root
        )
        machine = Machine([DeviceSpec.hdd()], memory=2 * MB,
                          page_cache=8 * MB)
        unblocked = GraphChiEngine(GraphChiConfig(num_shards=4)).run(
            graph, machine, root=root
        )
        assert np.array_equal(unblocked.levels, blocked.levels)
        assert unblocked.execution_time < 0.7 * blocked.execution_time
        assert unblocked.report.bytes_read < blocked.report.bytes_read
        assert machine.page_cache.hit_ratio > 0.3

    def test_correctness_unaffected(self):
        graph = rmat_graph(scale=9, edge_factor=8, seed=2)
        root = hub_root(graph)
        machine = Machine([DeviceSpec.hdd()], memory=2 * MB,
                          page_cache=4 * MB)
        result = GraphChiEngine(GraphChiConfig(num_shards=3)).run(
            graph, machine, root=root
        )
        assert np.array_equal(result.levels, bfs_levels(graph, root))
