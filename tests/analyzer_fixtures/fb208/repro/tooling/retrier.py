"""Scoping case: the same swallow outside ``repro/serve/`` is not FB208."""


def swallow_elsewhere(attempts):
    best = None
    for _ in range(attempts):
        try:
            best = 1
        except ValueError:
            continue
    return best
