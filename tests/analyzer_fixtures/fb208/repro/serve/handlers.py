"""Positive + suppressed cases: serve-layer excepts must type failures."""


class FlushFailedError(Exception):
    pass


def swallow_bad(sock):
    try:
        sock.send(b"x")
    except OSError:
        pass


def log_and_return_bad(log, payload):
    try:
        return payload["root"]
    except KeyError as exc:
        log.append(str(exc))
        return None


def reraise_good():
    try:
        return 1
    except ValueError:
        raise


def typed_construction_good(ticket):
    try:
        return 1
    except OSError:
        ticket.error = FlushFailedError("flush failed")
        return None


def funnel_good(self, request_id):
    try:
        return 1
    except BrokenPipeError:
        self.service.count_disconnect(self.path, request_id)
        return None


def suppressed(sock):
    try:
        sock.close()
    except OSError:  # noqa: FB208
        pass
