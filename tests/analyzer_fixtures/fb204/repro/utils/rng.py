"""The seeded randomness choke point — raw primitives are allowed here."""

import numpy as np


def rng_from_seed(seed):
    return np.random.default_rng(seed)
