"""Positive + suppressed cases: raw RNG primitives outside utils/rng."""

import random

import numpy as np

from repro.utils.rng import rng_from_seed


def sample_bad(n):
    rng = np.random.default_rng(0)
    return rng.integers(0, n)


def jitter_bad():
    return random.random()


def sample_suppressed(n):
    rng = np.random.default_rng(0)  # noqa: FB204
    return rng.integers(0, n)


def sample_good(n):
    rng = rng_from_seed(7)
    return rng.integers(0, n)
