"""Positive case: fault evaluation outside Device.submit."""

from repro.storage.faults import FaultInjector


class RogueEngine:
    def __init__(self):
        self.injector = FaultInjector()

    def poke(self, request):
        return self.injector.on_submit(request)
