"""Suppressed case: the same rogue call, annotated on the call line."""

from repro.storage.faults import FaultInjector


class QuietEngine:
    def __init__(self):
        self.injector = FaultInjector()

    def poke(self, request):
        return self.injector.on_submit(request)  # noqa: FB203
