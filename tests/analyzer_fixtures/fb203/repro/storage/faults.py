"""Fixture stand-in for the fault injector (named-seed anchor)."""


class FaultInjector:
    def __init__(self):
        self.evaluations = 0

    def on_submit(self, request):
        self.evaluations += 1
        return request
