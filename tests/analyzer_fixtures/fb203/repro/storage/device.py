"""The sanctioned choke point: Device.submit may evaluate faults."""

from repro.storage.faults import FaultInjector


class Device:
    def __init__(self):
        self.injector = FaultInjector()

    def submit(self, request):
        return self.injector.on_submit(request)
