"""Fixture stand-in for the virtual filesystem (named-seed anchor)."""


class VFS:
    def __init__(self):
        self.files = {}

    def create(self, name):
        self.files[name] = []
        return name

    def delete(self, name):
        del self.files[name]
