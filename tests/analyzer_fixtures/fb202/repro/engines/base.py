"""An engine whose ``run`` is a sanctioned entry point (barrier)."""

from repro.storage.vfs import VFS


class Engine:
    def __init__(self):
        self.vfs = VFS()

    def run(self):
        return self.vfs.create("out.bin")

    def leak_mutation(self):
        return self.vfs.create("tmp.bin")
