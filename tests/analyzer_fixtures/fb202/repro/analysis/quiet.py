"""Suppressed case: the same front-door bypass, annotated."""

from repro.engines.base import Engine


def also_bad():  # noqa: FB202
    eng = Engine()
    return eng.leak_mutation()
