"""Front-end layer: reaching VFS_MUTATE is allowed only through run()."""

from repro.engines.base import Engine


def good_path():
    eng = Engine()
    return eng.run()


def bad_path():
    eng = Engine()
    return eng.leak_mutation()
