"""Fixture stand-in for the simulated clock (named-seed anchor)."""


class SimClock:
    def __init__(self):
        self.now = 0.0

    def charge_compute(self, seconds):
        self.now += seconds

    def wait_until(self, when):
        self.now = max(self.now, when)
