"""Positive case: observability code that reaches CLOCK_ADVANCE."""

from repro.sim.clock import SimClock


class Watcher:
    def __init__(self):
        self.clock = SimClock()
        self.events = []

    def record(self, label):
        self.clock.charge_compute(0.001)
        self.events.append(label)

    def peek(self):
        return list(self.events)
