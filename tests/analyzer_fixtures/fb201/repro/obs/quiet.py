"""Suppressed case: the same reach, annotated as intentional."""

from repro.sim.clock import SimClock


class QuietWatcher:
    def __init__(self):
        self.clock = SimClock()
        self.events = []

    def record(self, label):  # noqa: FB201
        self.clock.charge_compute(0.001)
        self.events.append(label)
