"""Positive + suppressed cases: wall-clock reads outside obs/hostprof."""

import time
from datetime import datetime

from repro.obs.hostprof import HOST_CLOCK


def stamp_bad():
    return time.monotonic()


def stamp_also_bad():
    return datetime.now()


def stamp_suppressed():
    return time.perf_counter()  # noqa: FB207


def wait_ok(seconds):
    # Sleeping is pacing, not reading the clock — never flagged.
    time.sleep(seconds)


def stamp_good():
    return HOST_CLOCK.now()
