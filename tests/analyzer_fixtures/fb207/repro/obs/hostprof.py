"""The sanctioned wall-clock choke point — reads are allowed here."""

import time


class HostClock:
    def now(self):
        return time.monotonic()


HOST_CLOCK = HostClock()
