"""Suppressed case: the escaping attribute annotated as intentional."""


class QuietBox:
    def __init__(self):
        self.entries = {}
        self.hits = 0

    def put(self, key, value):
        self.entries[key] = value

    def touch(self):
        self.hits += 1  # noqa: FB206

    def snapshot(self):
        return {"entries": dict(self.entries)}

    def restore(self, state):
        self.entries = dict(state["entries"])
