"""Positive case: a snapshot/restore class with an escaping attribute."""


class CacheBox:
    def __init__(self):
        self.entries = {}
        self.hits = 0

    def put(self, key, value):
        self.entries[key] = value

    def touch(self):
        self.hits += 1

    def snapshot(self):
        return {"entries": dict(self.entries)}

    def restore(self, state):
        self.entries = dict(state["entries"])
