"""Positive cases: hash-ordered iteration reaching output."""

import os


def emit_tags(tags):
    out = []
    for tag in set(tags):
        out.append(tag)
    return out


def emit_listing(root):
    return [name for name in os.listdir(root)]
