"""Suppressed + sanctioned cases for order-sensitive iteration."""

import os


def emit_tags_suppressed(tags):
    out = []
    for tag in set(tags):  # noqa: FB205
        out.append(tag)
    return out


def emit_sorted(tags, root):
    ordered = [tag for tag in sorted(set(tags))]
    files = sorted(os.listdir(root))
    return ordered, files


def emit_mapping(mapping):
    # dict iteration is insertion-ordered: exempt by design.
    return [key for key in mapping]


def count_only(tags):
    # len()/membership never observe the order.
    return len(set(tags))
