"""Tests for the scaled dataset registry (Table II stand-ins)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.datasets import (
    BIG_DATASETS,
    DATASETS,
    build_dataset,
    scale_divisor,
)

DIV = 2048  # keep tests fast; benchmarks use the default divisor


class TestRegistry:
    def test_all_paper_datasets_present(self):
        assert set(DATASETS) == {
            "rmat22", "rmat25", "rmat27", "twitter_rv", "friendster",
        }

    def test_big_datasets_subset(self):
        assert set(BIG_DATASETS) <= set(DATASETS)

    def test_paper_sizes_recorded(self):
        spec = DATASETS["twitter_rv"]
        assert spec.paper_vertices == 61_620_000
        assert spec.paper_edges > 1.4e9


class TestBuild:
    def test_scaled_size_tracks_divisor(self):
        g = build_dataset("rmat22", divisor=DIV, cache=False)
        spec = DATASETS["rmat22"]
        # Core edges scale as paper/divisor; whiskers add a small overhead.
        expected = spec.paper_edges / DIV
        assert 0.8 * expected <= g.num_edges <= 1.3 * expected

    def test_metadata(self):
        g = build_dataset("rmat25", divisor=DIV, cache=False)
        assert g.meta["dataset"] == "rmat25"
        assert g.meta["scale_divisor"] == DIV
        assert g.meta["whiskers"] > 0
        assert g.name == "rmat25"

    def test_friendster_is_symmetrized(self):
        g = build_dataset("friendster", divisor=DIV, cache=False)
        assert not g.directed
        # Every edge has its reverse (whiskers included, bidirectional).
        keys = set(
            zip(g.edges["src"].tolist()[:500], g.edges["dst"].tolist()[:500])
        )
        rev_ok = sum(
            1 for (s, d) in keys
            if ((g.edges["src"] == d) & (g.edges["dst"] == s)).any()
        )
        assert rev_ok == len(keys)

    def test_twitter_is_directed_powerlaw(self):
        g = build_dataset("twitter_rv", divisor=DIV, cache=False)
        assert g.directed
        deg = g.in_degrees()
        assert deg.max() > 20 * deg.mean()

    def test_deterministic(self):
        a = build_dataset("rmat22", divisor=DIV, seed=3, cache=False)
        b = build_dataset("rmat22", divisor=DIV, seed=3, cache=False)
        assert np.array_equal(a.edges, b.edges)

    def test_cache_returns_same_object(self):
        a = build_dataset("rmat22", divisor=DIV, seed=99)
        b = build_dataset("rmat22", divisor=DIV, seed=99)
        assert a is b

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            build_dataset("orkut")

    def test_divisor_too_large_for_small_rmat(self):
        with pytest.raises(ConfigError):
            build_dataset("rmat22", divisor=2**20, cache=False)


class TestScaleDivisor:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE_DIVISOR", raising=False)
        assert scale_divisor() == 256

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_DIVISOR", "1024")
        assert scale_divisor() == 1024

    def test_env_rejects_non_power_of_two(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_DIVISOR", "100")
        with pytest.raises(ConfigError):
            scale_divisor()

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_DIVISOR", "lots")
        with pytest.raises(ConfigError):
            scale_divisor()

    def test_env_rejects_tiny(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_DIVISOR", "8")
        with pytest.raises(ConfigError):
            scale_divisor()
