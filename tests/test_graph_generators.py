"""Tests for the synthetic graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.generators import (
    attach_whiskers,
    grid_graph,
    path_graph,
    powerlaw_graph,
    random_graph,
    rmat_graph,
    star_graph,
)


class TestRmat:
    def test_size_matches_graph500_spec(self):
        g = rmat_graph(scale=10, edge_factor=16, seed=1)
        assert g.num_vertices == 1024
        assert g.num_edges == 16 * 1024

    def test_deterministic(self):
        a = rmat_graph(scale=8, seed=42)
        b = rmat_graph(scale=8, seed=42)
        assert np.array_equal(a.edges, b.edges)

    def test_seed_changes_graph(self):
        a = rmat_graph(scale=8, seed=1)
        b = rmat_graph(scale=8, seed=2)
        assert not np.array_equal(a.edges, b.edges)

    def test_degree_skew(self):
        """Graph500 parameters produce heavy-tailed out-degrees."""
        g = rmat_graph(scale=12, edge_factor=16, seed=3)
        deg = g.out_degrees()
        assert deg.max() > 20 * deg.mean()

    def test_permute_spreads_hubs(self):
        g_perm = rmat_graph(scale=10, seed=1, permute=True)
        g_raw = rmat_graph(scale=10, seed=1, permute=False)
        # Without permutation the hubs concentrate at low vertex ids.
        raw_deg = g_raw.out_degrees()
        assert np.argmax(raw_deg) < 64
        assert g_perm.num_edges == g_raw.num_edges

    def test_scale_zero(self):
        g = rmat_graph(scale=0, edge_factor=4, seed=1)
        assert g.num_vertices == 1
        assert g.num_edges == 4  # all self loops

    @pytest.mark.parametrize("bad", [-1, 32])
    def test_bad_scale(self, bad):
        with pytest.raises(GraphError):
            rmat_graph(scale=bad)

    def test_bad_probabilities(self):
        with pytest.raises(GraphError):
            rmat_graph(scale=4, a=0.5, b=0.5, c=0.5, d=0.5)

    def test_bad_edge_factor(self):
        with pytest.raises(GraphError):
            rmat_graph(scale=4, edge_factor=0)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_endpoints_always_in_range(self, scale, seed):
        g = rmat_graph(scale=scale, edge_factor=4, seed=seed)
        assert g.edges["src"].max() < g.num_vertices
        assert g.edges["dst"].max() < g.num_vertices


class TestRandomGraph:
    def test_size(self):
        g = random_graph(100, 500, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges == 500

    def test_deterministic(self):
        assert np.array_equal(random_graph(50, 100, 7).edges,
                              random_graph(50, 100, 7).edges)

    def test_zero_edges(self):
        assert random_graph(10, 0).num_edges == 0

    def test_bad_vertices(self):
        with pytest.raises(GraphError):
            random_graph(0, 10)


class TestPowerlaw:
    def test_in_degree_skew_with_flattened_head(self):
        g = powerlaw_graph(5000, 50000, exponent=1.9, seed=2)
        deg = g.in_degrees()
        # Heavy tail, but the head must hold a small share of all edges
        # (the real twitter top account has ~0.2%, not ~50%).
        assert deg.max() > 20 * deg.mean()
        assert deg.max() < 0.05 * g.num_edges

    def test_out_degrees_uniform_by_default(self):
        g = powerlaw_graph(2000, 40000, seed=3)
        deg = g.out_degrees()
        assert deg.max() < 10 * deg.mean()

    def test_correlated_out_exponent(self):
        g = powerlaw_graph(2000, 40000, exponent=1.9, out_exponent=2.0, seed=3)
        out_deg = g.out_degrees().astype(float)
        in_deg = g.in_degrees().astype(float)
        # Rank-correlation: hubs by in-degree also have high out-degree.
        top = np.argsort(in_deg)[-20:]
        assert out_deg[top].mean() > 2 * out_deg.mean()

    def test_deterministic(self):
        a = powerlaw_graph(500, 2000, seed=5)
        b = powerlaw_graph(500, 2000, seed=5)
        assert np.array_equal(a.edges, b.edges)

    def test_bad_exponent(self):
        with pytest.raises(GraphError):
            powerlaw_graph(100, 100, exponent=1.0)

    def test_bad_out_exponent(self):
        with pytest.raises(GraphError):
            powerlaw_graph(100, 100, out_exponent=0.5)

    def test_bad_head_shift(self):
        with pytest.raises(GraphError):
            powerlaw_graph(100, 100, head_shift=-1)

    def test_too_few_vertices(self):
        with pytest.raises(GraphError):
            powerlaw_graph(1, 10)


class TestStructuredGraphs:
    def test_grid_shape(self):
        g = grid_graph(4, 3)
        assert g.num_vertices == 12
        # 2*(3*(4-1)) horizontal + 2*(4*(3-1)) vertical arcs
        assert g.num_edges == 2 * (3 * 3) + 2 * (4 * 2)
        assert not g.directed

    def test_grid_bad_dims(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.edges["src"].tolist() == [0, 1, 2, 3]

    def test_path_single_vertex(self):
        assert path_graph(1).num_edges == 0

    def test_star_out(self):
        g = star_graph(5, out=True)
        assert g.num_vertices == 6
        assert (g.edges["src"] == 0).all()

    def test_star_in(self):
        g = star_graph(5, out=False)
        assert (g.edges["dst"] == 0).all()

    def test_star_empty(self):
        assert star_graph(0).num_edges == 0


class TestWhiskers:
    def test_adds_vertices_and_edges(self):
        core = rmat_graph(scale=8, edge_factor=8, seed=1)
        g = attach_whiskers(core, num_whiskers=10, min_length=3, max_length=5,
                            seed=2, relabel=False)
        added = g.num_vertices - core.num_vertices
        assert 30 <= added <= 50
        assert g.num_edges == core.num_edges + added

    def test_bidirectional_doubles_whisker_edges(self):
        core = rmat_graph(scale=6, edge_factor=4, seed=1).symmetrized()
        g = attach_whiskers(core, num_whiskers=5, min_length=2, max_length=2,
                            seed=3, relabel=False)
        assert g.num_edges == core.num_edges + 2 * (g.num_vertices - core.num_vertices)

    def test_whiskers_reachable_from_anchor(self):
        from repro.algorithms.reference import bfs_levels

        core = star_graph(20, out=True)  # everything reachable from 0
        g = attach_whiskers(core, num_whiskers=3, min_length=4, max_length=4,
                            seed=1, relabel=False)
        levels = bfs_levels(g, 0)
        assert (levels >= 0).all()
        assert levels.max() >= 4  # depth extended by the whiskers

    def test_relabel_preserves_structure(self):
        from repro.algorithms.reference import level_profile

        core = star_graph(50, out=True)
        a = attach_whiskers(core, 4, 3, 3, seed=9, relabel=False)
        b = attach_whiskers(core, 4, 3, 3, seed=9, relabel=True)
        assert a.num_edges == b.num_edges
        # Same depth from the (relabeled) hub.
        hub_b = int(np.argmax(b.out_degrees()))
        assert level_profile(a, 0).depth == level_profile(b, hub_b).depth

    def test_zero_whiskers_is_identity(self):
        core = path_graph(5)
        assert attach_whiskers(core, 0) is core

    def test_metadata_recorded(self):
        g = attach_whiskers(path_graph(5), 2, 2, 3, seed=1)
        assert g.meta["whiskers"] == 2

    def test_bad_params(self):
        with pytest.raises(GraphError):
            attach_whiskers(path_graph(5), -1)
        with pytest.raises(GraphError):
            attach_whiskers(path_graph(5), 1, min_length=0)
        with pytest.raises(GraphError):
            attach_whiskers(path_graph(5), 1, min_length=5, max_length=2)

    def test_deterministic(self):
        core = rmat_graph(scale=6, seed=1)
        a = attach_whiskers(core, 5, 2, 4, seed=7)
        b = attach_whiskers(core, 5, 2, 4, seed=7)
        assert np.array_equal(a.edges, b.edges)
