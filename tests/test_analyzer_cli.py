"""CLI and reporting-engine tests shared by ``repro lint``/``repro analyze``.

Covers the 0/1/2 exit-code contract, ``--format text|json|sarif`` on both
tools, golden-file schema stability, byte-determinism of reports, and
baseline handling end to end.
"""

import json
from pathlib import Path

import pytest

from repro.api import analyze_tree
from repro.cli import main as cli_main
from repro.tooling.analyzer import analyze_paths
from repro.tooling.analyzer.runner import main as analyzer_main
from repro.tooling.lint import LintViolation, main as lint_main
from repro.tooling.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    Baseline,
    Finding,
    render_json,
    render_sarif,
)

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "analyzer_fixtures"
REPO_ROOT = HERE.parent
DATA = HERE / "data"

GOLDEN_FINDINGS = [
    Finding(path="src/repro/obs/watch.py", line=11, col=5, code="FB201",
            symbol="repro.obs.watch.Watcher.record",
            message="observability code reaches CLOCK_ADVANCE"),
    Finding(path="src/repro/graph/sampler.py", line=4, col=11, code="FB204",
            symbol="repro.graph.sampler.sample",
            message="direct numpy.random.default_rng() call"),
]
GOLDEN_RULES = {
    "FB201": "observability code reaches CLOCK_ADVANCE/DEVICE_IO",
    "FB204": "direct numpy.random/random primitive outside repro.utils.rng",
}


@pytest.fixture()
def isolated_cwd(tmp_path, monkeypatch):
    """Run CLIs away from the repo root so the committed default baseline
    (analyzer_baseline.json) is not auto-loaded."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    def test_analyzer_clean_exits_zero(self, isolated_cwd):
        assert analyzer_main([str(FIXTURES / "fb201" / "repro" / "sim")]) == EXIT_CLEAN

    def test_analyzer_findings_exit_one(self, isolated_cwd, capsys):
        assert analyzer_main([str(FIXTURES / "fb204")]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "FB204" in out
        assert out.rstrip().endswith("2 finding(s)")

    def test_analyzer_missing_path_exits_two(self, isolated_cwd, capsys):
        assert analyzer_main(["definitely/not/here"]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_analyzer_bad_baseline_exits_two(self, isolated_cwd, capsys):
        bad = isolated_cwd / "baseline.json"
        bad.write_text('{"schema": "wrong/99", "entries": []}')
        code = analyzer_main(
            [str(FIXTURES / "fb204"), "--baseline", str(bad)]
        )
        assert code == EXIT_USAGE

    def test_lint_shares_the_same_contract(self, isolated_cwd, capsys):
        clean = isolated_cwd / "clean.py"
        clean.write_text("X = 1\n")
        assert lint_main([str(clean)]) == EXIT_CLEAN
        bad = isolated_cwd / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nT = time.time()\n")
        assert lint_main([str(bad)]) == EXIT_FINDINGS
        assert lint_main(["definitely/not/here"]) == EXIT_USAGE

    def test_repro_cli_subcommands_dispatch(self, isolated_cwd, capsys):
        assert cli_main(["analyze", str(FIXTURES / "fb204")]) == EXIT_FINDINGS
        assert cli_main(["analyze", "--list-rules"]) == 0
        assert "FB206" in capsys.readouterr().out
        assert cli_main(["lint", "--list-rules"]) == 0
        assert "FB101" in capsys.readouterr().out
        assert (
            cli_main(["lint", str(REPO_ROOT / "src" / "repro" / "errors.py")])
            == EXIT_CLEAN
        )


class TestOutputFormats:
    def test_json_document_schema(self, isolated_cwd, capsys):
        analyzer_main([str(FIXTURES / "fb204"), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "fastbfs-findings/1"
        assert doc["tool"] == "repro.tooling.analyzer"
        assert doc["count"] == 2
        assert set(doc["findings"][0]) == {
            "path", "line", "col", "code", "symbol", "message",
        }
        assert set(doc["rules"]) == {
            "FB200", "FB201", "FB202", "FB203", "FB204", "FB205", "FB206",
            "FB207", "FB208",
        }

    def test_sarif_document_shape(self, isolated_cwd, capsys):
        analyzer_main([str(FIXTURES / "fb204"), "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.tooling.analyzer"
        assert len(run["results"]) == 2
        result = run["results"][0]
        assert result["ruleId"] == "FB204"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert set(region) == {"startLine", "startColumn"}

    def test_lint_json_format(self, isolated_cwd, capsys):
        bad = isolated_cwd / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nT = time.time()\n")
        lint_main([str(bad), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "fastbfs-findings/1"
        assert doc["tool"] == "repro.tooling.lint"
        assert doc["findings"][0]["code"] == "FB101"

    def test_output_flag_writes_file(self, isolated_cwd):
        out = isolated_cwd / "report.sarif"
        analyzer_main(
            [str(FIXTURES / "fb204"), "--format", "sarif", "--output", str(out)]
        )
        assert json.loads(out.read_text())["version"] == "2.1.0"


class TestGoldenFiles:
    """Schema locks: renderer output must match the committed goldens
    byte for byte.  A diff here means the output schema changed — bump
    the schema id and regenerate deliberately."""

    def test_sarif_matches_golden(self):
        rendered = render_sarif(
            GOLDEN_FINDINGS, "repro.tooling.analyzer", GOLDEN_RULES
        )
        golden = (DATA / "golden_findings.sarif").read_text(encoding="utf-8")
        assert rendered == golden

    def test_json_matches_golden(self):
        rendered = render_json(
            GOLDEN_FINDINGS, "repro.tooling.analyzer", GOLDEN_RULES
        )
        golden = (DATA / "golden_findings.json").read_text(encoding="utf-8")
        assert rendered == golden


class TestDeterminism:
    def test_two_runs_render_byte_identical_reports(self):
        paths = [str(REPO_ROOT / "src" / "repro")]
        first = analyze_paths(paths)
        second = analyze_paths(paths)
        for fmt_render in (render_json, render_sarif):
            assert fmt_render(
                first.findings, "repro.tooling.analyzer", {}
            ) == fmt_render(second.findings, "repro.tooling.analyzer", {})
        assert [str(f) for f in first.findings] == [
            str(f) for f in second.findings
        ]


class TestBaselineFlow:
    def test_explicit_baseline_filters_and_reports_stale(self, isolated_cwd, capsys):
        code = analyzer_main(
            [
                str(FIXTURES / "fb206"),
                "--baseline",
                str(FIXTURES / "fb206" / "baseline.json"),
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_CLEAN
        assert "baselined finding(s) suppressed" in captured.err

    def test_stale_entries_warn_on_stderr(self, isolated_cwd, capsys):
        code = analyzer_main(
            [
                str(FIXTURES / "fb201" / "repro" / "sim"),
                "--baseline",
                str(FIXTURES / "fb206" / "baseline.json"),
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_CLEAN
        assert "stale baseline entries" in captured.err

    def test_default_baseline_autoloads_from_cwd(self, isolated_cwd, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert analyzer_main([str(REPO_ROOT / "src" / "repro")]) == EXIT_CLEAN

    def test_api_analyze_tree(self):
        result = analyze_tree(
            [str(REPO_ROOT / "src" / "repro")],
            baseline_path=str(REPO_ROOT / "analyzer_baseline.json"),
        )
        assert result.ok
        assert len(result.baselined) == 4


class TestSharedFindingType:
    def test_lint_violation_is_the_shared_finding(self):
        assert LintViolation is Finding
