"""Hypothesis fuzzing of the storage stack.

Random operation sequences against streams and devices, checking the
invariants the engines rely on: every record written comes back in order,
timelines never overlap, byte accounting is exact, cancellation only drops
queued writes, the clock is monotone.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.types import EDGE_DTYPE, make_edges
from repro.sim.clock import SimClock
from repro.storage.device import Device, DeviceSpec
from repro.storage.streams import AsyncStreamWriter, StreamReader, StreamWriter
from repro.storage.vfs import VFS
from repro.utils.units import MB

RECORD = EDGE_DTYPE.itemsize


def _make_setup(seek=0.001, bw=50 * MB):
    clock = SimClock()
    device = Device(
        DeviceSpec("d", seek_time=seek, read_bandwidth=bw, write_bandwidth=bw)
    )
    return clock, device, VFS()


def edges_of(values):
    arr = np.asarray(values, dtype=np.uint32)
    return make_edges(arr, arr)


@given(
    chunks=st.lists(st.integers(min_value=0, max_value=300), max_size=25),
    buffer_records=st.integers(min_value=1, max_value=64),
    read_buffer_records=st.integers(min_value=1, max_value=64),
    prefetch=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_write_read_roundtrip(chunks, buffer_records, read_buffer_records,
                              prefetch):
    """Whatever a writer appends, a reader streams back identically."""
    clock, device, vfs = _make_setup()
    f = vfs.create("f", device)
    writer = StreamWriter(clock, f, buffer_bytes=buffer_records * RECORD)
    expected = []
    counter = 0
    for n in chunks:
        chunk = edges_of(np.arange(counter, counter + n) % 2**32)
        counter += n
        writer.append(chunk)
        expected.append(chunk)
    writer.close()
    reader = StreamReader(
        clock, f, buffer_bytes=read_buffer_records * RECORD, prefetch=prefetch
    )
    got = list(reader)
    flat_expected = (
        np.concatenate(expected) if expected else np.empty(0, dtype=EDGE_DTYPE)
    )
    flat_got = np.concatenate(got) if got else np.empty(0, dtype=EDGE_DTYPE)
    assert np.array_equal(flat_got, flat_expected)
    # Byte accounting: device moved exactly what the file holds, both ways.
    assert device.bytes_written == f.nbytes
    assert device.bytes_read == f.nbytes


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("append"), st.integers(min_value=1, max_value=200)),
            st.tuples(st.just("compute"), st.floats(min_value=0, max_value=0.01)),
        ),
        min_size=1,
        max_size=30,
    ),
    num_buffers=st.integers(min_value=1, max_value=6),
    cancel_at_end=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_async_writer_invariants(ops, num_buffers, cancel_at_end):
    clock, device, vfs = _make_setup()
    f = vfs.create("stay", device)
    writer = AsyncStreamWriter(
        clock, f, buffer_bytes=32 * RECORD, num_buffers=num_buffers
    )
    appended = 0
    last_now = clock.now
    for op, value in ops:
        if op == "append":
            writer.append(edges_of(np.arange(value)))
            appended += value
        else:
            clock.charge_compute(value)
        assert clock.now >= last_now  # monotone under all operations
        last_now = clock.now
        assert writer.buffers_in_flight <= num_buffers
    if cancel_at_end:
        writer.cancel()
        assert writer.cancelled
        # Role bytes never negative after cancellation refunds.
        for v in device.timeline.bytes_by_role().values():
            assert v >= 0
    else:
        writer.close(drain=True)
        assert f.num_records == appended
        assert writer.is_ready()
    # Timeline packing: live requests are FIFO and non-overlapping.
    pending = device.timeline.pending_requests()
    for a, b in zip(pending, pending[1:]):
        assert b.start >= a.end - 1e-12


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=10**6), min_size=1,
                   max_size=40),
    kinds=st.lists(st.sampled_from(["read", "write"]), min_size=1, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_device_service_times_positive_and_additive(sizes, kinds):
    clock, device, vfs = _make_setup(seek=0.002)
    t = 0.0
    total_service = 0.0
    submitted = list(zip(sizes, kinds))
    for i, (n, kind) in enumerate(submitted):
        req = device.submit(t, kind, n, file_id=i % 3, offset=0, group="g")
        assert req.end > req.start >= t
        total_service += req.end - req.start
        t = clock.now  # submissions at t=0 throughout is fine too
    assert device.busy_time_until(10**9) == pytest.approx(total_service)
    assert device.bytes_read + device.bytes_written == sum(
        n for n, _ in submitted
    )
