"""Hypothesis fuzzing of the storage stack.

Random operation sequences against streams and devices, checking the
invariants the engines rely on: every record written comes back in order,
timelines never overlap, byte accounting is exact, cancellation only drops
queued writes, the clock is monotone.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.types import EDGE_DTYPE, make_edges
from repro.sim.clock import SimClock
from repro.storage.device import Device, DeviceSpec
from repro.storage.streams import AsyncStreamWriter, StreamReader, StreamWriter
from repro.storage.vfs import VFS
from repro.utils.units import MB

RECORD = EDGE_DTYPE.itemsize


def _make_setup(seek=0.001, bw=50 * MB):
    clock = SimClock()
    device = Device(
        DeviceSpec("d", seek_time=seek, read_bandwidth=bw, write_bandwidth=bw)
    )
    return clock, device, VFS()


def edges_of(values):
    arr = np.asarray(values, dtype=np.uint32)
    return make_edges(arr, arr)


@given(
    chunks=st.lists(st.integers(min_value=0, max_value=300), max_size=25),
    buffer_records=st.integers(min_value=1, max_value=64),
    read_buffer_records=st.integers(min_value=1, max_value=64),
    prefetch=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_write_read_roundtrip(chunks, buffer_records, read_buffer_records,
                              prefetch):
    """Whatever a writer appends, a reader streams back identically."""
    clock, device, vfs = _make_setup()
    f = vfs.create("f", device)
    writer = StreamWriter(clock, f, buffer_bytes=buffer_records * RECORD)
    expected = []
    counter = 0
    for n in chunks:
        chunk = edges_of(np.arange(counter, counter + n) % 2**32)
        counter += n
        writer.append(chunk)
        expected.append(chunk)
    writer.close()
    reader = StreamReader(
        clock, f, buffer_bytes=read_buffer_records * RECORD, prefetch=prefetch
    )
    got = list(reader)
    flat_expected = (
        np.concatenate(expected) if expected else np.empty(0, dtype=EDGE_DTYPE)
    )
    flat_got = np.concatenate(got) if got else np.empty(0, dtype=EDGE_DTYPE)
    assert np.array_equal(flat_got, flat_expected)
    # Byte accounting: device moved exactly what the file holds, both ways.
    assert device.bytes_written == f.nbytes
    assert device.bytes_read == f.nbytes


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("append"), st.integers(min_value=1, max_value=200)),
            st.tuples(st.just("compute"), st.floats(min_value=0, max_value=0.01)),
        ),
        min_size=1,
        max_size=30,
    ),
    num_buffers=st.integers(min_value=1, max_value=6),
    cancel_at_end=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_async_writer_invariants(ops, num_buffers, cancel_at_end):
    clock, device, vfs = _make_setup()
    f = vfs.create("stay", device)
    writer = AsyncStreamWriter(
        clock, f, buffer_bytes=32 * RECORD, num_buffers=num_buffers
    )
    appended = 0
    last_now = clock.now
    for op, value in ops:
        if op == "append":
            writer.append(edges_of(np.arange(value)))
            appended += value
        else:
            clock.charge_compute(value)
        assert clock.now >= last_now  # monotone under all operations
        last_now = clock.now
        assert writer.buffers_in_flight <= num_buffers
    if cancel_at_end:
        writer.cancel()
        assert writer.cancelled
        # Role bytes never negative after cancellation refunds.
        for v in device.timeline.bytes_by_role().values():
            assert v >= 0
    else:
        writer.close(drain=True)
        assert f.num_records == appended
        assert writer.is_ready()
    # Timeline packing: live requests are FIFO and non-overlapping.
    pending = device.timeline.pending_requests()
    for a, b in zip(pending, pending[1:]):
        assert b.start >= a.end - 1e-12


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=10**6), min_size=1,
                   max_size=40),
    kinds=st.lists(st.sampled_from(["read", "write"]), min_size=1, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_device_service_times_positive_and_additive(sizes, kinds):
    clock, device, vfs = _make_setup(seek=0.002)
    t = 0.0
    total_service = 0.0
    submitted = list(zip(sizes, kinds))
    for i, (n, kind) in enumerate(submitted):
        req = device.submit(t, kind, n, file_id=i % 3, offset=0, group="g")
        assert req.end > req.start >= t
        total_service += req.end - req.start
        t = clock.now  # submissions at t=0 throughout is fine too
    assert device.busy_time_until(10**9) == pytest.approx(total_service)
    assert device.bytes_read + device.bytes_written == sum(
        n for n, _ in submitted
    )


# ----------------------------------------------------------------------
# fault-injection determinism (same seed + same plan => same everything)
# ----------------------------------------------------------------------

_FAULT_FUZZ_SEEDS = range(20)


def _fault_fuzz_graph():
    from repro.graph.generators import rmat_graph

    return rmat_graph(scale=8, edge_factor=8, seed=3)


def _faulted_run(seed):
    """One FastBFS run under a seeded fault plan; returns every observable."""
    from repro.core.config import FastBFSConfig
    from repro.core.engine import FastBFSEngine
    from repro.obs.counters import CounterRegistry
    from repro.obs.exporters import spans_to_jsonl
    from repro.obs.tracer import Tracer
    from repro.storage.faults import FaultPlan, FaultSpec, RetryPolicy
    from repro.storage.machine import Machine
    from repro.utils.units import KB

    plan = FaultPlan(
        specs=(
            FaultSpec(kind="transient_error", probability=0.05),
            FaultSpec(kind="latency", probability=0.05, delay_seconds=0.004),
            FaultSpec(kind="torn_write", role="stay", probability=0.4,
                      max_fires=2),
        ),
        seed=seed,
    )
    machine = Machine(
        [DeviceSpec.hdd("hdd0")], memory=2 * MB, cores=4, fault_plan=plan
    )
    machine.attach_tracer(Tracer())
    engine = FastBFSEngine(
        FastBFSConfig(
            edge_buffer_bytes=2 * KB,
            update_buffer_bytes=1 * KB,
            stay_buffer_bytes=1 * KB,
            num_partitions=4,
            allow_in_memory=False,
            retry=RetryPolicy(max_attempts=4),
        )
    )
    result = engine.run(_fault_fuzz_graph(), machine, root=0)
    report = machine.report()
    counters = CounterRegistry.from_machine(machine).as_dict()
    return result.levels, report, spans_to_jsonl(machine.tracer), counters


@pytest.mark.parametrize("seed", _FAULT_FUZZ_SEEDS)
def test_fault_plan_replays_bit_identically(seed):
    """Same seed + same FaultPlan => byte-identical IOReport, identical
    span trace (retries included), identical fault/retry counters."""
    levels_a, report_a, trace_a, counters_a = _faulted_run(seed)
    levels_b, report_b, trace_b, counters_b = _faulted_run(seed)
    assert np.array_equal(levels_a, levels_b)
    assert report_a == report_b
    assert trace_a == trace_b
    assert counters_a == counters_b


def test_fault_seeds_vary_the_schedule():
    """Different seeds actually draw different fault schedules — the fuzz
    above is not vacuously comparing fault-free runs."""
    injected = set()
    retried = 0
    for seed in _FAULT_FUZZ_SEEDS:
        _, _, trace, counters = _faulted_run(seed)
        injected.add(trace)
        retried += sum(
            v for (name, _), v in counters.items()
            if name == "io_retries_total"
        )
    assert len(injected) == len(list(_FAULT_FUZZ_SEEDS))  # all distinct
    assert retried > 0  # the retry loop really ran across the sweep
