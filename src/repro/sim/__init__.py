"""Discrete-event time substrate for the storage simulator.

The engines in this package do *real* data-path work (every edge is actually
streamed through numpy buffers) but charge their time to a simulated clock:

* :class:`~repro.sim.clock.SimClock` — the single engine-side clock.  Compute
  is charged with :meth:`~repro.sim.clock.SimClock.charge_compute`; waiting
  on a device advances the clock via
  :meth:`~repro.sim.clock.SimClock.wait_until` and is accounted as iowait.
* :class:`~repro.sim.timeline.Timeline` — one per block device.  Requests are
  served FIFO; each request occupies the device for a service time computed
  by the device model (seek + transfer).  Queued-but-not-started requests can
  be cancelled, which is how FastBFS's stay-write cancellation is modeled.
"""

from repro.sim.clock import SimClock
from repro.sim.timeline import ScheduledRequest, Timeline
from repro.sim.trace import render_gantt, render_timeline_gantt

__all__ = [
    "SimClock",
    "Timeline",
    "ScheduledRequest",
    "render_gantt",
    "render_timeline_gantt",
]
