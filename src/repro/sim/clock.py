"""Simulated engine clock with compute/iowait accounting.

A single engine run owns one :class:`SimClock`.  The clock only moves
forward; it distinguishes three kinds of elapsed time:

* **compute** — CPU work charged explicitly (per-edge scatter cost, sorting
  cost, ...), optionally labeled by category for breakdown reports;
* **iowait** — time the engine spent blocked waiting for a device request to
  complete (``wait_until`` past the current time);
* the remainder of the makespan is bookkeeping-free (there is none in
  practice: every advance goes through one of the two methods above).

This mirrors how the paper measures things: total execution time from the
wall clock and the iowait *ratio* from ``iostat`` (Fig. 6).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SimulationError


@dataclass(frozen=True)
class ClockState:
    """Opaque snapshot of a :class:`SimClock` (checkpoint protocol)."""

    now: float
    start: float
    compute_time: float
    iowait_time: float
    compute_by_category: Dict[str, float] = field(default_factory=dict)


class SimClock:
    """Monotonic simulated clock for one engine execution."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)
        self._start = float(start)
        self._compute_time = 0.0
        self._iowait_time = 0.0
        self._compute_by_category: Dict[str, float] = defaultdict(float)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def elapsed(self) -> float:
        """Simulated seconds since the clock was created."""
        return self._now - self._start

    @property
    def compute_time(self) -> float:
        """Total seconds charged as CPU work."""
        return self._compute_time

    @property
    def iowait_time(self) -> float:
        """Total seconds the engine spent blocked on device completions."""
        return self._iowait_time

    @property
    def iowait_ratio(self) -> float:
        """iowait as a fraction of elapsed time (0.0 when nothing ran)."""
        if self.elapsed <= 0.0:
            return 0.0
        return self._iowait_time / self.elapsed

    def compute_breakdown(self) -> Dict[str, float]:
        """Copy of the per-category compute-time totals."""
        return dict(self._compute_by_category)

    def charge_compute(self, seconds: float, category: str = "compute") -> None:
        """Advance the clock by ``seconds`` of CPU work."""
        if seconds < 0:
            raise SimulationError(f"cannot charge negative compute time {seconds}")
        self._now += seconds
        self._compute_time += seconds
        self._compute_by_category[category] += seconds

    def wait_until(self, t: float) -> float:
        """Block (account iowait) until simulated time ``t``.

        Returns the waited duration.  Waiting for a time already in the past
        is a no-op — the request completed while the engine was computing.
        """
        if t > self._now:
            waited = t - self._now
            self._iowait_time += waited
            self._now = t
            return waited
        return 0.0

    def snapshot(self) -> ClockState:
        """Capture the clock's full state for a later :meth:`restore`."""
        return ClockState(
            now=self._now,
            start=self._start,
            compute_time=self._compute_time,
            iowait_time=self._iowait_time,
            compute_by_category=dict(self._compute_by_category),
        )

    def restore(self, state: ClockState) -> None:
        """Roll the clock back to a snapshot.

        This is the one sanctioned violation of forward-only time: the
        Machine checkpoint/restore protocol resets the clock between query
        sessions so every query starts from the identical post-staging
        instant.  Outside that protocol the clock never moves backwards.
        """
        if state.now > self._now:
            raise SimulationError(
                f"cannot restore the clock forward ({self._now} -> {state.now})"
            )
        self._now = state.now
        self._start = state.start
        self._compute_time = state.compute_time
        self._iowait_time = state.iowait_time
        self._compute_by_category = defaultdict(float, state.compute_by_category)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimClock(now={self._now:.6f}, compute={self._compute_time:.6f}, "
            f"iowait={self._iowait_time:.6f})"
        )
