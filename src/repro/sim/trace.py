"""ASCII Gantt rendering of device timelines.

The whole FastBFS argument is about *when* streams occupy which spindle —
stay writes hiding under scatter compute, update reads queueing behind
them, the two-disk rotation separating read and write passes.  With tracing
enabled (``Machine(..., trace=True)``), :func:`render_gantt` draws exactly
that: one lane per (device, stream role), time on the x axis.

::

    hdd0/edges    R ▕██████▁▁████▁▁██████
    hdd0/stay     W ▕▁▁▁▁▁▁██▁▁▁▁██▁▁▁▁▁▁
    hdd1/updates  W ▕▁▁████▁▁▁▁██▁▁▁▁██▁▁
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.timeline import ScheduledRequest, Timeline
from repro.utils.units import format_seconds

_FULL = "█"
_PARTIAL = "▒"
_IDLE = "·"


def lane_key(request: ScheduledRequest) -> Tuple[str, str]:
    role = Timeline.role_of(request.group)
    return role, request.kind


def render_timeline_gantt(
    timeline: Timeline,
    start: float = 0.0,
    end: Optional[float] = None,
    width: int = 80,
) -> str:
    """Render one device's trace as per-role lanes."""
    if not timeline.keep_trace:
        raise SimulationError(
            f"timeline {timeline.name!r} was not tracing; construct the "
            "Machine with trace=True"
        )
    requests = [r for r in timeline.trace if not r.cancelled]
    if end is None:
        end = max((r.end for r in requests), default=start + 1.0)
    if end <= start:
        raise SimulationError(f"empty window [{start}, {end})")
    if width < 10:
        raise SimulationError("width must be >= 10 characters")

    lanes: Dict[Tuple[str, str], List[ScheduledRequest]] = {}
    for req in requests:
        lanes.setdefault(lane_key(req), []).append(req)

    cell = (end - start) / width
    lines = [
        f"{timeline.name}: [{format_seconds(start)} .. {format_seconds(end)}]"
        f"  ({format_seconds(cell)}/cell)"
    ]
    label_width = max(
        (len(f"{role}[{kind[0].upper()}]") for role, kind in lanes), default=8
    )
    for (role, kind), reqs in sorted(lanes.items()):
        coverage = [0.0] * width
        for req in reqs:
            lo = max(req.start, start)
            hi = min(req.end, end)
            if hi <= lo:
                continue
            first = int((lo - start) / cell)
            last = min(int((hi - start) / cell), width - 1)
            for i in range(first, last + 1):
                cell_lo = start + i * cell
                cell_hi = cell_lo + cell
                coverage[i] += max(
                    0.0, min(hi, cell_hi) - max(lo, cell_lo)
                ) / cell
        chars = "".join(
            _FULL if c >= 0.75 else (_PARTIAL if c > 0.05 else _IDLE)
            for c in coverage
        )
        label = f"{role}[{kind[0].upper()}]".ljust(label_width)
        lines.append(f"  {label} {chars}")
    if len(lines) == 1:
        lines.append("  (no requests in window)")
    return "\n".join(lines)


def render_gantt(
    machine,
    start: float = 0.0,
    end: Optional[float] = None,
    width: int = 80,
    include_ram: bool = False,
) -> str:
    """Render every device of a traced machine, on a shared time axis."""
    devices = machine.disks + ([machine.ram] if include_ram else [])
    if end is None:
        ends = [
            r.end
            for dev in devices
            for r in dev.timeline.trace
            if not r.cancelled
        ]
        end = max(ends, default=start + 1.0)
    blocks = [
        render_timeline_gantt(dev.timeline, start=start, end=end, width=width)
        for dev in devices
    ]
    return "\n".join(blocks)
