"""ASCII Gantt rendering of device timelines and span traces.

The whole FastBFS argument is about *when* streams occupy which spindle —
stay writes hiding under scatter compute, update reads queueing behind
them, the two-disk rotation separating read and write passes.  Two data
sources record exactly that, and both render here through one shared lane
renderer so their timelines tell one story:

* **device request traces** (``Machine(..., trace=True)``) — one lane per
  (stream role, request kind), via :func:`render_timeline_gantt` /
  :func:`render_gantt`;
* **obs span traces** (``machine.attach_tracer(Tracer())``) — one lane
  per span name, via :func:`render_span_gantt`, accepting a live
  ``Tracer``, a list of :class:`~repro.obs.tracer.Span` (e.g. loaded from
  a JSONL trace file), or a machine with a tracer attached.

::

    hdd0/edges    R ▕██████▁▁████▁▁██████
    hdd0/stay     W ▕▁▁▁▁▁▁██▁▁▁▁██▁▁▁▁▁▁
    hdd1/updates  W ▕▁▁████▁▁▁▁██▁▁▁▁██▁▁
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.timeline import ScheduledRequest, Timeline
from repro.utils.units import format_seconds

_FULL = "█"
_PARTIAL = "▒"
_IDLE = "·"

#: Preferred lane ordering for span-trace rendering (taxonomy order).
SPAN_LANE_ORDER = (
    "stage",
    "query",
    "iteration",
    "scatter",
    "gather",
    "shuffle",
    "stay_flush",
    "stay_cancel",
    "interval",
)

Interval = Tuple[float, float]


def lane_key(request: ScheduledRequest) -> Tuple[str, str]:
    """Canonical (role, kind) lane of a request (see ``Timeline.lane_of``)."""
    return Timeline.lane_of(request)


def _coverage_chars(
    intervals: Iterable[Interval], start: float, end: float, width: int
) -> str:
    """Render interval coverage of [start, end) into ``width`` cells."""
    cell = (end - start) / width
    coverage = [0.0] * width
    for lo, hi in intervals:
        lo = max(lo, start)
        hi = min(hi, end)
        if hi <= lo:
            continue
        first = int((lo - start) / cell)
        last = min(int((hi - start) / cell), width - 1)
        for i in range(first, last + 1):
            cell_lo = start + i * cell
            cell_hi = cell_lo + cell
            coverage[i] += max(0.0, min(hi, cell_hi) - max(lo, cell_lo)) / cell
    return "".join(
        _FULL if c >= 0.75 else (_PARTIAL if c > 0.05 else _IDLE)
        for c in coverage
    )


def render_lanes(
    title: str,
    lanes: Sequence[Tuple[str, List[Interval]]],
    start: float,
    end: float,
    width: int = 80,
) -> str:
    """Shared lane renderer: labelled interval sets on one time axis."""
    if end <= start:
        raise SimulationError(f"empty window [{start}, {end})")
    if width < 10:
        raise SimulationError("width must be >= 10 characters")
    cell = (end - start) / width
    lines = [
        f"{title}: [{format_seconds(start)} .. {format_seconds(end)}]"
        f"  ({format_seconds(cell)}/cell)"
    ]
    label_width = max((len(label) for label, _ in lanes), default=8)
    for label, intervals in lanes:
        chars = _coverage_chars(intervals, start, end, width)
        lines.append(f"  {label.ljust(label_width)} {chars}")
    if len(lines) == 1:
        lines.append("  (no requests in window)")
    return "\n".join(lines)


def render_timeline_gantt(
    timeline: Timeline,
    start: float = 0.0,
    end: Optional[float] = None,
    width: int = 80,
) -> str:
    """Render one device's request trace as per-(role, kind) lanes."""
    if not timeline.keep_trace:
        raise SimulationError(
            f"timeline {timeline.name!r} was not tracing; construct the "
            "Machine with trace=True"
        )
    requests = [r for r in timeline.trace if not r.cancelled]
    if end is None:
        end = max((r.end for r in requests), default=start + 1.0)

    by_lane: Dict[Tuple[str, str], List[Interval]] = {}
    for req in requests:
        by_lane.setdefault(lane_key(req), []).append((req.start, req.end))
    lanes = [
        (f"{role}[{kind[0].upper()}]", intervals)
        for (role, kind), intervals in sorted(by_lane.items())
    ]
    return render_lanes(timeline.name, lanes, start, end, width)


def render_gantt(
    machine,
    start: float = 0.0,
    end: Optional[float] = None,
    width: int = 80,
    include_ram: bool = False,
) -> str:
    """Render every device of a traced machine, on a shared time axis."""
    devices = machine.disks + ([machine.ram] if include_ram else [])
    if end is None:
        ends = [
            r.end
            for dev in devices
            for r in dev.timeline.trace
            if not r.cancelled
        ]
        end = max(ends, default=start + 1.0)
    blocks = [
        render_timeline_gantt(dev.timeline, start=start, end=end, width=width)
        for dev in devices
    ]
    return "\n".join(blocks)


def _extract_spans(source) -> List:
    """Spans from a Tracer, a machine with a tracer, or a span iterable."""
    spans = getattr(source, "spans", None)
    if spans is not None:
        return list(spans)
    tracer = getattr(source, "tracer", None)
    if tracer is not None:
        if not tracer.enabled:
            raise SimulationError(
                "machine has no span tracer attached; call "
                "machine.attach_tracer(Tracer()) before the run"
            )
        return list(tracer.spans)
    return list(source)


def span_lanes(
    source, names: Optional[Sequence[str]] = None
) -> List[Tuple[str, List[Interval]]]:
    """Group spans into (name, intervals) lanes in taxonomy order."""
    spans = [s for s in _extract_spans(source) if s.finished]
    by_name: Dict[str, List[Interval]] = {}
    for sp in spans:
        if names is not None and sp.name not in names:
            continue
        by_name.setdefault(sp.name, []).append((sp.start, sp.end))
    order = {name: i for i, name in enumerate(SPAN_LANE_ORDER)}
    return [
        (name, by_name[name])
        for name in sorted(by_name, key=lambda n: (order.get(n, len(order)), n))
    ]


def render_span_gantt(
    source,
    start: float = 0.0,
    end: Optional[float] = None,
    width: int = 80,
    names: Optional[Sequence[str]] = None,
    title: str = "spans",
) -> str:
    """Render an obs span trace as one lane per span name.

    ``source`` is a :class:`~repro.obs.tracer.Tracer`, a machine with an
    attached tracer, or any iterable of :class:`~repro.obs.tracer.Span`
    (e.g. ``read_spans_jsonl(path)``) — the ``--trace`` JSONL world and the
    ``Machine(trace=True)`` request world share this renderer's axis and
    glyphs, so their timelines are directly comparable.  ``names`` limits
    the lanes (e.g. ``("scatter", "gather", "stay_flush")``).
    """
    lanes = span_lanes(source, names=names)
    if end is None:
        ends = [hi for _, intervals in lanes for _, hi in intervals]
        end = max(ends, default=start + 1.0)
    return render_lanes(title, lanes, start, end, width)
