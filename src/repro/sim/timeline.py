"""FIFO device timeline with cancellation.

Each simulated block device owns one :class:`Timeline`.  Requests are
submitted with a *service time* (seek + transfer, computed by the device
model) and packed first-come-first-served: a request submitted at time ``t``
starts at ``max(t, end of the previous request)``.

Submissions must be non-decreasing in time.  This holds by construction:
every submitter shares the engine's single :class:`~repro.sim.clock.SimClock`
and that clock is monotonic.

Cancellation removes *queued, not-yet-started* requests and repacks the ones
behind them, which is exactly the semantics the paper gives for abandoning an
unfinished stay-file write: buffers already being written complete, queued
buffers are dropped, and later requests move up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import TimelineError


@dataclass
class ScheduledRequest:
    """One device request as placed on a timeline.

    ``group`` labels a logical stream (e.g. ``"stay:p3:i2"``) so related
    requests can be queried or cancelled together.  ``start``/``end`` may
    shift earlier if a request queued ahead of this one is cancelled, so
    always read them from the live object rather than caching.
    """

    group: str
    kind: str  # "read" | "write"
    nbytes: int
    submit: float
    service: float
    start: float = 0.0
    end: float = 0.0
    cancelled: bool = False
    #: Non-raising injected fault applied to this request, if any
    #: ("torn_write" | "latency" | "stall"); see repro.storage.faults.
    fault: Optional[str] = None

    @property
    def queue_delay(self) -> float:
        """Seconds the request waited behind earlier requests."""
        return self.start - self.submit


class Timeline:
    """FIFO schedule of requests for a single device."""

    def __init__(self, name: str = "device", keep_trace: bool = False) -> None:
        self.name = name
        #: When enabled, every accepted request is retained in ``trace``
        #: (cancelled ones stay, flagged) for post-run Gantt rendering.
        self.keep_trace = keep_trace
        self.trace: List[ScheduledRequest] = []
        self._queue: List[ScheduledRequest] = []
        # End time of the last request pruned from the queue head.
        self._settled_end = 0.0
        # Accounting for pruned requests (live ones are scanned on demand).
        self._settled_busy = 0.0
        self._settled_count = 0
        self._bytes_by_kind: Dict[str, int] = {"read": 0, "write": 0}
        # (role, kind) -> bytes, where role is the stream-group prefix.
        self._bytes_by_role: Dict[tuple, int] = {}
        self._last_submit = 0.0

    @staticmethod
    def role_of(group: str) -> str:
        """Stream role: the group label's prefix ('stay:p3:i2' -> 'stay')."""
        return group.split(":", 1)[0] if group else "other"

    @classmethod
    def lane_of(cls, request: ScheduledRequest) -> tuple:
        """Canonical (role, kind) lane of a request.

        The single definition shared by the byte ledger below and every
        lane-keyed consumer (the Gantt renderer, per-role reports) — keep
        them keyed identically or per-role accounting and rendering drift
        apart.
        """
        return cls.role_of(request.group), request.kind

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        submit: float,
        service: float,
        nbytes: int,
        kind: str,
        group: str = "",
    ) -> ScheduledRequest:
        """Append a request, returning its scheduled placement."""
        if service < 0:
            raise TimelineError(f"negative service time {service}")
        if nbytes < 0:
            raise TimelineError(f"negative request size {nbytes}")
        if kind not in ("read", "write"):
            raise TimelineError(f"request kind must be 'read' or 'write', got {kind!r}")
        if submit < self._last_submit - 1e-12:
            raise TimelineError(
                f"submissions must be monotonic: {submit} after {self._last_submit}"
            )
        self._last_submit = max(self._last_submit, submit)
        self._prune(submit)
        free_at = self._queue[-1].end if self._queue else self._settled_end
        start = max(submit, free_at)
        req = ScheduledRequest(
            group=group,
            kind=kind,
            nbytes=nbytes,
            submit=submit,
            service=service,
            start=start,
            end=start + service,
        )
        self._queue.append(req)
        if self.keep_trace:
            self.trace.append(req)
        self._bytes_by_kind[kind] = self._bytes_by_kind.get(kind, 0) + nbytes
        role_key = self.lane_of(req)
        self._bytes_by_role[role_key] = self._bytes_by_role.get(role_key, 0) + nbytes
        return req

    def _prune(self, watermark: float) -> None:
        """Retire queue-head requests that finished at or before ``watermark``.

        Retired requests can never be affected by a future cancellation
        (cancellation only touches requests starting at or after the current
        engine time, and engine time >= watermark).
        """
        idx = 0
        for req in self._queue:
            if req.end <= watermark:
                self._settled_end = req.end
                self._settled_busy += req.service
                self._settled_count += 1
                idx += 1
            else:
                break
        if idx:
            del self._queue[:idx]

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(
        self,
        now: float,
        predicate: Callable[[ScheduledRequest], bool],
    ) -> List[ScheduledRequest]:
        """Cancel queued requests matching ``predicate`` that haven't started.

        A request with ``start < now`` is in service (or done) and is left
        alone.  Requests behind a cancelled one are repacked earlier.
        Returns the cancelled requests (marked ``cancelled=True``).
        """
        cancelled: List[ScheduledRequest] = []
        kept: List[ScheduledRequest] = []
        for req in self._queue:
            if req.start >= now and predicate(req):
                req.cancelled = True
                self._bytes_by_kind[req.kind] -= req.nbytes
                self._bytes_by_role[self.lane_of(req)] -= req.nbytes
                cancelled.append(req)
            else:
                kept.append(req)
        if cancelled:
            self._queue = kept
            self._repack(now)
        return cancelled

    def _repack(self, now: float) -> None:
        """Re-run FIFO packing for requests that haven't started by ``now``."""
        free_at = self._settled_end
        for req in self._queue:
            if req.start < now:
                # In service or already finished; its placement is history.
                free_at = max(free_at, req.end)
                continue
            req.start = max(req.submit, free_at, now)
            req.end = req.start + req.service
            free_at = req.end

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Capture the timeline's mutable state for a later :meth:`restore`.

        Live queue entries are shared by reference: a snapshot is only
        valid for restore while every request in it has already *ended* at
        snapshot time (a quiescent device), because later cancellations and
        repacks never touch requests whose start precedes the current
        engine time.  The Machine checkpoint protocol guarantees this by
        checkpointing at the post-staging barrier.
        """
        return {
            "queue": list(self._queue),
            "settled_end": self._settled_end,
            "settled_busy": self._settled_busy,
            "settled_count": self._settled_count,
            "bytes_by_kind": dict(self._bytes_by_kind),
            "bytes_by_role": dict(self._bytes_by_role),
            "last_submit": self._last_submit,
            "trace_len": len(self.trace),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Roll the timeline back to a snapshot (drops later requests)."""
        self._queue = list(state["queue"])  # type: ignore[arg-type]
        self._settled_end = state["settled_end"]  # type: ignore[assignment]
        self._settled_busy = state["settled_busy"]  # type: ignore[assignment]
        self._settled_count = state["settled_count"]  # type: ignore[assignment]
        self._bytes_by_kind = dict(state["bytes_by_kind"])  # type: ignore[arg-type]
        self._bytes_by_role = dict(state["bytes_by_role"])  # type: ignore[arg-type]
        self._last_submit = state["last_submit"]  # type: ignore[assignment]
        del self.trace[state["trace_len"] :]  # type: ignore[misc]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def free_at(self) -> float:
        """Time at which the device has no queued or in-service work."""
        return self._queue[-1].end if self._queue else self._settled_end

    def group_end(self, group: str) -> Optional[float]:
        """Completion time of the latest *live* request in ``group``.

        Returns None when the group has no requests still in the queue —
        either none were ever submitted or they all settled (finished long
        enough ago to be pruned).  Callers that need "done by time t"
        semantics should combine this with their own submitted-count
        bookkeeping; the storage layer's write tickets do exactly that.
        """
        end: Optional[float] = None
        for req in self._queue:
            if req.group == group:
                end = req.end if end is None else max(end, req.end)
        return end

    def busy_time_until(self, t: float) -> float:
        """Total seconds the device was busy in ``[0, t]``."""
        busy = min(self._settled_busy, t) if self._settled_end > t else self._settled_busy
        # Settled requests never overlap t in practice (they settled before
        # the latest submit); the min() above is a cheap guard.
        for req in self._queue:
            if req.start >= t:
                break
            busy += min(req.end, t) - req.start
        return busy

    def bytes_by_role(self) -> Dict[tuple, int]:
        """Copy of (stream role, kind) -> bytes accounting."""
        return {k: v for k, v in self._bytes_by_role.items() if v}

    @property
    def bytes_read(self) -> int:
        return self._bytes_by_kind.get("read", 0)

    @property
    def bytes_written(self) -> int:
        return self._bytes_by_kind.get("write", 0)

    @property
    def request_count(self) -> int:
        """Requests accepted and not cancelled (settled + live)."""
        return self._settled_count + len(self._queue)

    def pending_requests(self) -> List[ScheduledRequest]:
        """Snapshot of live (unsettled, uncancelled) requests, FIFO order."""
        return list(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Timeline({self.name!r}, live={len(self._queue)}, "
            f"free_at={self.free_at:.6f})"
        )
