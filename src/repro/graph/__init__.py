"""Graph substrate: record dtypes, containers, generators, partitioning, I/O.

Everything the engines consume comes from here: a :class:`Graph` is an
in-memory raw edge list (the same representation FastBFS stores on disk as a
binary file plus a config sidecar), generators produce the paper's synthetic
and social-network workloads at configurable scale, and
:class:`VertexPartitioning` implements the disjoint vertex-interval split
shared by FastBFS and X-Stream.
"""

from repro.graph.types import (
    EDGE_DTYPE,
    UPDATE_DTYPE,
    WEIGHTED_EDGE_DTYPE,
    empty_edges,
    make_edges,
)
from repro.graph.graph import Graph
from repro.graph.generators import (
    grid_graph,
    path_graph,
    powerlaw_graph,
    random_graph,
    rmat_graph,
    star_graph,
)
from repro.graph.partition import VertexPartitioning
from repro.graph.csr import CSRGraph
from repro.graph.io import (
    load_edge_list_text,
    load_graph,
    save_edge_list_text,
    save_graph,
)
from repro.graph.datasets import DATASETS, DatasetSpec, build_dataset

__all__ = [
    "EDGE_DTYPE",
    "UPDATE_DTYPE",
    "WEIGHTED_EDGE_DTYPE",
    "empty_edges",
    "make_edges",
    "Graph",
    "rmat_graph",
    "random_graph",
    "powerlaw_graph",
    "grid_graph",
    "path_graph",
    "star_graph",
    "VertexPartitioning",
    "CSRGraph",
    "load_graph",
    "save_graph",
    "load_edge_list_text",
    "save_edge_list_text",
    "DATASETS",
    "DatasetSpec",
    "build_dataset",
]
