"""Disjoint vertex-interval partitioning (paper §II-B, Fig. 3).

FastBFS and X-Stream split the vertex id space into contiguous, balanced,
mutually disjoint intervals; partition *p* owns the vertices in
``[boundary[p], boundary[p+1])`` and the out-edges whose *source* falls in
that interval.  "The balance of the vertices becomes the priority" — edges
are streamed, only the vertex set must fit in memory.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import PartitionError


class VertexPartitioning:
    """Balanced contiguous split of ``[0, num_vertices)`` into ``count`` parts."""

    def __init__(self, num_vertices: int, count: int) -> None:
        if num_vertices <= 0:
            raise PartitionError(f"num_vertices must be positive, got {num_vertices}")
        if count <= 0:
            raise PartitionError(f"partition count must be positive, got {count}")
        if count > num_vertices:
            count = num_vertices  # no point in empty partitions
        self.num_vertices = num_vertices
        self.count = count
        # Balanced boundaries: sizes differ by at most one vertex.
        self.boundaries = np.linspace(0, num_vertices, count + 1).astype(np.int64)
        self.boundaries[0] = 0
        self.boundaries[-1] = num_vertices

    def range_of(self, p: int) -> Tuple[int, int]:
        """Half-open vertex range ``[lo, hi)`` of partition ``p``."""
        if not 0 <= p < self.count:
            raise PartitionError(f"partition {p} out of range [0, {self.count})")
        return int(self.boundaries[p]), int(self.boundaries[p + 1])

    def size_of(self, p: int) -> int:
        lo, hi = self.range_of(p)
        return hi - lo

    def partition_of(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized partition lookup for an array of vertex ids."""
        return np.searchsorted(self.boundaries[1:], vertices, side="right")

    def split_by_partition(self, vertices: np.ndarray, *arrays) -> Iterator[Tuple[int, tuple]]:
        """Group ``vertices`` (and parallel arrays) by owning partition.

        Yields ``(p, (vertices_p, *arrays_p))`` for partitions that received
        at least one element, in partition order.  One stable argsort — this
        is the scatter phase's update shuffle.
        """
        parts = self.partition_of(vertices)
        order = np.argsort(parts, kind="stable")
        sorted_parts = parts[order]
        cut = np.searchsorted(sorted_parts, np.arange(self.count + 1))
        for p in range(self.count):
            lo, hi = cut[p], cut[p + 1]
            if lo == hi:
                continue
            sel = order[lo:hi]
            yield p, (vertices[sel], *(a[sel] for a in arrays))

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.count))

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"VertexPartitioning(V={self.num_vertices}, P={self.count})"


def plan_partition_count(
    num_vertices: int,
    vertex_record_bytes: int,
    memory_bytes: int,
    vertex_memory_fraction: float = 0.25,
    max_partitions: int = 4096,
) -> int:
    """Number of partitions so one partition's vertex state fits the budget.

    Mirrors X-Stream's rule: vertices (not edges) drive the split, and only
    a fraction of working memory is available for them (the rest holds
    stream buffers).
    """
    if memory_bytes <= 0:
        raise PartitionError("memory budget must be positive")
    if not 0 < vertex_memory_fraction <= 1:
        raise PartitionError(
            f"vertex_memory_fraction must be in (0, 1], got {vertex_memory_fraction}"
        )
    budget = memory_bytes * vertex_memory_fraction
    total = num_vertices * vertex_record_bytes
    count = max(1, int(np.ceil(total / budget)))
    if count > max_partitions:
        raise PartitionError(
            f"graph needs {count} partitions (> {max_partitions}); "
            "memory budget too small for its vertex set"
        )
    return count
