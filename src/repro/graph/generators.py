"""Synthetic graph generators for the paper's workloads.

* :func:`rmat_graph` — the Graph500 R-MAT/Kronecker generator (the paper's
  rmat22/25/27 datasets), fully vectorized: one pass over ``scale`` bit
  positions instead of a per-edge recursion.
* :func:`powerlaw_graph` — directed graph with Zipf-like in-degrees, the
  stand-in for the twitter follower graph.
* :func:`random_graph` — uniform G(n, m) with replacement.
* :func:`grid_graph` / :func:`path_graph` — high-diameter graphs, the
  regime where the paper says eager trimming wastes effort (§II-C3).
* :func:`star_graph` — degenerate hub graph for edge-case tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.types import make_edges
from repro.utils.rng import SeedLike, rng_from_seed


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    d: float = 0.05,
    seed: SeedLike = 0,
    permute: bool = True,
    name: Optional[str] = None,
) -> Graph:
    """Graph500-specification R-MAT generator.

    ``2**scale`` vertices, ``edge_factor * 2**scale`` directed edges drawn by
    recursively descending a 2x2 probability matrix ``[[a, b], [c, d]]``.
    Graph500 defaults (a=0.57, b=c=0.19, d=0.05) give the heavy-tailed degree
    distribution that makes BFS converge sharply — the effect FastBFS
    exploits.  ``permute`` relabels vertices randomly (Graph500 requires it
    so locality can't be gamed); multi-edges and self-loops are kept, as the
    benchmark specifies.
    """
    if scale < 0 or scale > 31:
        raise GraphError(f"scale must be in [0, 31], got {scale}")
    if edge_factor <= 0:
        raise GraphError(f"edge_factor must be positive, got {edge_factor}")
    total = abs(a) + abs(b) + abs(c) + abs(d)
    if total <= 0 or abs(total - 1.0) > 1e-6:
        raise GraphError(f"R-MAT probabilities must sum to 1, got {total}")
    rng = rng_from_seed(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.uint32)
    dst = np.zeros(m, dtype=np.uint32)
    # Descend one bit position at a time across all edges simultaneously.
    p_src1 = c + d  # probability the source bit is 1
    for _ in range(scale):
        r_src = rng.random(m)
        src_bit = r_src < p_src1
        # Conditional probability that dst bit is 1 given the src bit.
        p_dst1 = np.where(src_bit, d / (c + d) if c + d > 0 else 0.0,
                          b / (a + b) if a + b > 0 else 0.0)
        dst_bit = rng.random(m) < p_dst1
        src = (src << np.uint32(1)) | src_bit.astype(np.uint32)
        dst = (dst << np.uint32(1)) | dst_bit.astype(np.uint32)
    if permute and scale > 0:
        relabel = rng.permutation(n).astype(np.uint32)
        src = relabel[src]
        dst = relabel[dst]
    return Graph(
        num_vertices=n,
        edges=make_edges(src, dst),
        name=name or f"rmat{scale}",
        meta={"generator": "rmat", "scale": scale, "edge_factor": edge_factor},
    )


def random_graph(
    num_vertices: int,
    num_edges: int,
    seed: SeedLike = 0,
    name: Optional[str] = None,
) -> Graph:
    """Uniform directed multigraph: each edge endpoint drawn independently."""
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    rng = rng_from_seed(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.uint32)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.uint32)
    return Graph(
        num_vertices,
        make_edges(src, dst),
        name=name or f"random-{num_vertices}",
        meta={"generator": "random"},
    )


def _lomax_ranks(
    rng: np.random.Generator,
    count: int,
    exponent: float,
    shift: float,
    num_vertices: int,
) -> np.ndarray:
    """Vertex ranks from a shifted-Pareto (Lomax) inverse transform.

    CCDF(x) = (1 + x/shift)^-(exponent-1): pmf decays like rank^-exponent
    beyond a ~``shift``-vertex flattened head.
    """
    u = rng.random(count)
    lomax = shift * (u ** (-1.0 / (exponent - 1.0)) - 1.0)
    return np.minimum(np.floor(lomax).astype(np.int64), num_vertices - 1)


def powerlaw_graph(
    num_vertices: int,
    num_edges: int,
    exponent: float = 1.8,
    head_shift: Optional[float] = None,
    out_exponent: Optional[float] = None,
    out_shift: Optional[float] = None,
    seed: SeedLike = 0,
    name: Optional[str] = None,
) -> Graph:
    """Directed graph with power-law in-degree (twitter-follower shape).

    Destinations are drawn by vertex rank from a shifted-Pareto (Lomax)
    distribution — tail pmf ~ ``rank^-exponent`` but with the head flattened
    over roughly ``head_shift`` hub vertices, matching real follower graphs
    where the top account holds ~0.1% of all edges, not ~50% as an
    unshifted Zipf head would.  Sources are uniform unless ``out_exponent``
    is given, in which case out-degrees follow their own (rank-correlated)
    Lomax law.  ``exponent`` ~1.5-2.2 covers social networks; ``head_shift``
    defaults to ``num_vertices/64``.
    """
    if num_vertices <= 1:
        raise GraphError("powerlaw_graph needs at least 2 vertices")
    if exponent <= 1.0:
        raise GraphError(f"exponent must be > 1, got {exponent}")
    if head_shift is None:
        head_shift = max(1.0, num_vertices / 64.0)
    if head_shift <= 0:
        raise GraphError(f"head_shift must be positive, got {head_shift}")
    rng = rng_from_seed(seed)
    relabel = rng.permutation(num_vertices).astype(np.uint32)
    dst = relabel[_lomax_ranks(rng, num_edges, exponent, head_shift, num_vertices)]
    if out_exponent is None:
        src = rng.integers(0, num_vertices, size=num_edges, dtype=np.uint32)
    else:
        if out_exponent <= 1.0:
            raise GraphError(f"out_exponent must be > 1, got {out_exponent}")
        shift = out_shift if out_shift is not None else max(1.0, num_vertices / 8.0)
        # Same relabel for src and dst ranks: popular accounts also follow
        # more, so edges concentrate inside the reachable core (real
        # follower graphs are rank-correlated; without this, a large share
        # of edges would originate from never-visited vertices).
        src = relabel[_lomax_ranks(rng, num_edges, out_exponent, shift, num_vertices)]
    return Graph(
        num_vertices,
        make_edges(src, dst),
        name=name or f"powerlaw-{num_vertices}",
        meta={"generator": "powerlaw", "exponent": exponent},
    )


def grid_graph(width: int, height: int, name: Optional[str] = None) -> Graph:
    """2-D grid with edges in both directions; diameter = width+height-2.

    The canonical high-diameter workload: the frontier is always tiny, so
    per-iteration trimming gains little — the regime motivating the paper's
    trim-threshold policy.
    """
    if width <= 0 or height <= 0:
        raise GraphError("grid dimensions must be positive")
    n = width * height
    ids = np.arange(n, dtype=np.uint32).reshape(height, width)
    horiz_src = ids[:, :-1].ravel()
    horiz_dst = ids[:, 1:].ravel()
    vert_src = ids[:-1, :].ravel()
    vert_dst = ids[1:, :].ravel()
    src = np.concatenate([horiz_src, horiz_dst, vert_src, vert_dst])
    dst = np.concatenate([horiz_dst, horiz_src, vert_dst, vert_src])
    return Graph(
        n,
        make_edges(src, dst),
        name=name or f"grid-{width}x{height}",
        directed=False,
        meta={"generator": "grid", "width": width, "height": height},
    )


def path_graph(num_vertices: int, name: Optional[str] = None) -> Graph:
    """Directed path 0 -> 1 -> ... -> n-1 (maximum-diameter worst case)."""
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    src = np.arange(num_vertices - 1, dtype=np.uint32)
    return Graph(
        num_vertices,
        make_edges(src, src + 1),
        name=name or f"path-{num_vertices}",
        meta={"generator": "path"},
    )


def star_graph(num_leaves: int, out: bool = True, name: Optional[str] = None) -> Graph:
    """Hub vertex 0 connected to ``num_leaves`` leaves (direction per ``out``)."""
    if num_leaves < 0:
        raise GraphError("num_leaves must be >= 0")
    leaves = np.arange(1, num_leaves + 1, dtype=np.uint32)
    hub = np.zeros(num_leaves, dtype=np.uint32)
    src, dst = (hub, leaves) if out else (leaves, hub)
    return Graph(
        num_leaves + 1,
        make_edges(src, dst),
        name=name or f"star-{num_leaves}",
        meta={"generator": "star"},
    )


def attach_whiskers(
    graph: Graph,
    num_whiskers: int,
    min_length: int = 3,
    max_length: int = 10,
    bidirectional: Optional[bool] = None,
    relabel: bool = True,
    seed: SeedLike = 0,
    name: Optional[str] = None,
) -> Graph:
    """Attach sparse path "whiskers" to random vertices of ``graph``.

    Real web/social graphs are core-periphery: a dense core plus long
    sparse chains ("whiskers") hanging off it, which is what gives their
    BFS a long thin tail of levels after the core converges.  Uniformly
    down-scaling a graph shrinks that tail logarithmically, under-stating
    how many nearly-empty iterations a non-trimming engine must pay for.
    Attaching whiskers restores the full-scale BFS depth while adding only
    a few percent of vertices/edges; the scaled dataset stand-ins use it
    (parameters recorded in graph metadata).

    Each whisker is a directed path ``anchor -> w1 -> ... -> wk`` with
    ``k`` uniform in [min_length, max_length]; ``bidirectional`` (default:
    follow ``graph.directed == False``) adds the reverse arcs.  ``relabel``
    randomly permutes all vertex ids so whisker vertices spread across
    engine partitions instead of clustering at the end of the id space.
    """
    if num_whiskers < 0:
        raise GraphError("num_whiskers must be >= 0")
    if not 1 <= min_length <= max_length:
        raise GraphError(
            f"need 1 <= min_length <= max_length, got {min_length}, {max_length}"
        )
    if bidirectional is None:
        bidirectional = not graph.directed
    rng = rng_from_seed(seed)
    if num_whiskers == 0:
        return graph
    lengths = rng.integers(min_length, max_length + 1, size=num_whiskers)
    anchors = rng.integers(0, graph.num_vertices, size=num_whiskers, dtype=np.int64)
    total_new = int(lengths.sum())
    n_new = graph.num_vertices + total_new
    # Vectorized path construction: new vertex ids are consecutive per
    # whisker; each path edge goes id-1 -> id except the first (anchor -> id).
    new_ids = graph.num_vertices + np.arange(total_new, dtype=np.int64)
    starts = np.zeros(num_whiskers, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    is_first = np.zeros(total_new, dtype=bool)
    is_first[starts] = True
    src_new = new_ids - 1
    src_new[is_first] = anchors
    dst_new = new_ids
    if bidirectional:
        src_all = np.concatenate([graph.edges["src"], src_new, dst_new])
        dst_all = np.concatenate([graph.edges["dst"], dst_new, src_new])
    else:
        src_all = np.concatenate([graph.edges["src"], src_new])
        dst_all = np.concatenate([graph.edges["dst"], dst_new])
    if relabel:
        perm = rng.permutation(n_new).astype(np.uint32)
        src_all = perm[src_all]
        dst_all = perm[dst_all]
    out = Graph(
        n_new,
        make_edges(src_all, dst_all),
        name=name or f"{graph.name}+whiskers",
        directed=graph.directed,
        meta=dict(graph.meta),
    )
    out.meta.update(
        {
            "whiskers": num_whiskers,
            "whisker_min_length": min_length,
            "whisker_max_length": max_length,
        }
    )
    return out
