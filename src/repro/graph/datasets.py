"""Scaled stand-ins for the paper's datasets (Table II).

The paper evaluates on rmat22/25/27 (Graph500 spec), the twitter follower
graph (61.62M vertices / 1.5B edges) and the friendster social graph
(124.8M vertices / 1.8B edges).  Billion-edge inputs are not tractable for a
pure-Python reproduction, so each dataset is regenerated at ``1/divisor``
scale (default 256) with the generator that preserves its relevant shape:

* rmatNN  -> R-MAT at ``scale - log2(divisor)``, same edge factor & skew;
* twitter -> directed power-law in-degree graph (follower shape);
* friendster -> mildly-skewed R-MAT, symmetrized (undirected convention).

What must survive scaling is the *convergence profile* (fraction of edges
whose source is newly visited per BFS level) and the *BFS depth* (the
number of scatter/gather iterations, which drives a non-trimming engine's
waste).  The degree distribution scales freely, but depth shrinks
logarithmically with size, so every stand-in gets sparse path "whiskers"
attached (:func:`repro.graph.generators.attach_whiskers`, ~2% extra
vertices) to restore the full-scale level count — real web/social graphs
have exactly this core-plus-whiskers structure.  The divisor and whisker
parameters are recorded in each graph's metadata and in EXPERIMENTS.md.

Set ``REPRO_SCALE_DIVISOR`` (power of two >= 16) to trade fidelity for
speed; tests use a large divisor, benchmarks the default.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.graph.generators import attach_whiskers, powerlaw_graph, rmat_graph
from repro.utils.units import GB, MB

DEFAULT_SCALE_DIVISOR = 256


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the paper's Table II plus our regeneration recipe."""

    name: str
    paper_vertices: int
    paper_edges: int
    paper_size_bytes: int
    description: str
    builder: Callable[[int, int], Graph]  # (divisor, seed) -> Graph

    def build(self, divisor: int, seed: int = 1) -> Graph:
        graph = self.builder(divisor, seed)
        graph.meta.update(
            {
                "dataset": self.name,
                "scale_divisor": divisor,
                "paper_vertices": self.paper_vertices,
                "paper_edges": self.paper_edges,
            }
        )
        graph.name = self.name
        return graph


def _shift(divisor: int) -> int:
    shift = int(math.log2(divisor))
    if 1 << shift != divisor:
        raise ConfigError(f"scale divisor must be a power of two, got {divisor}")
    return shift


def _add_depth_whiskers(graph: Graph, seed: int) -> Graph:
    """Restore full-scale BFS depth with ~2% sparse periphery (see module doc)."""
    count = max(4, graph.num_vertices // 400)
    return attach_whiskers(
        graph,
        num_whiskers=count,
        min_length=3,
        max_length=9,
        seed=seed + 7919,
        name=graph.name,
    )


def _rmat_builder(scale: int) -> Callable[[int, int], Graph]:
    def build(divisor: int, seed: int) -> Graph:
        reduced = scale - _shift(divisor)
        if reduced < 4:
            raise ConfigError(
                f"divisor {divisor} reduces rmat{scale} below scale 4; "
                "use a smaller REPRO_SCALE_DIVISOR"
            )
        core = rmat_graph(scale=reduced, edge_factor=16, seed=seed)
        return _add_depth_whiskers(core, seed)

    return build


def _twitter_builder(divisor: int, seed: int) -> Graph:
    n = max(1024, 61_620_000 // divisor)
    m = max(4096, 1_468_365_182 // divisor)
    core = powerlaw_graph(
        n, m, exponent=1.9, out_exponent=2.0, seed=seed, name="twitter_rv"
    )
    return _add_depth_whiskers(core, seed)


def _friendster_builder(divisor: int, seed: int) -> Graph:
    # Undirected: generate half the arcs, then add the reverse direction.
    n_target = max(1024, 124_800_000 // divisor)
    scale = max(10, int(round(math.log2(n_target))))
    half_edges = max(4096, 1_806_067_135 // (2 * divisor))
    edge_factor = max(1, int(round(half_edges / (1 << scale))))
    base = rmat_graph(
        scale=scale, edge_factor=edge_factor, a=0.45, b=0.22, c=0.22, d=0.11, seed=seed
    )
    return _add_depth_whiskers(base.symmetrized(name="friendster"), seed)


DATASETS: Dict[str, DatasetSpec] = {
    "rmat22": DatasetSpec(
        "rmat22", 4_200_000, 67_100_000, 768 * MB,
        "Graph500 R-MAT scale 22 (tuning dataset)", _rmat_builder(22),
    ),
    "rmat25": DatasetSpec(
        "rmat25", 33_600_000, 536_800_000, 6 * GB,
        "Graph500 R-MAT scale 25", _rmat_builder(25),
    ),
    "rmat27": DatasetSpec(
        "rmat27", 134_200_000, 2_100_000_000, 24 * GB,
        "Graph500 R-MAT scale 27", _rmat_builder(27),
    ),
    "twitter_rv": DatasetSpec(
        "twitter_rv", 61_620_000, 1_468_365_182, 11 * GB,
        "Twitter follower graph (Kwak et al. 2010)", _twitter_builder,
    ),
    "friendster": DatasetSpec(
        "friendster", 124_800_000, 1_806_067_135, 14 * GB,
        "Friendster social network (SNAP), undirected", _friendster_builder,
    ),
}

#: The four datasets of the paper's headline comparisons (Figs. 4-7, 10).
BIG_DATASETS = ("rmat25", "rmat27", "twitter_rv", "friendster")

_cache: Dict[Tuple[str, int, int], Graph] = {}


def scale_divisor() -> int:
    """Active dataset scale divisor (env-overridable)."""
    raw = os.environ.get("REPRO_SCALE_DIVISOR", "")
    if not raw:
        return DEFAULT_SCALE_DIVISOR
    try:
        divisor = int(raw)
    except ValueError:
        raise ConfigError(f"REPRO_SCALE_DIVISOR must be an int, got {raw!r}")
    if divisor < 16:
        raise ConfigError(f"REPRO_SCALE_DIVISOR must be >= 16, got {divisor}")
    _shift(divisor)  # validates power of two
    return divisor


def build_dataset(
    name: str, divisor: Optional[int] = None, seed: int = 1, cache: bool = True
) -> Graph:
    """Build (and memoize) a scaled stand-in dataset by Table II name."""
    if name not in DATASETS:
        raise ConfigError(f"unknown dataset {name!r}; options: {sorted(DATASETS)}")
    divisor = divisor if divisor is not None else scale_divisor()
    key = (name, divisor, seed)
    if cache and key in _cache:
        return _cache[key]
    graph = DATASETS[name].build(divisor, seed)
    if cache:
        _cache[key] = graph
    return graph
