"""The :class:`Graph` container: a named raw edge list.

This is the dataset object handed to engines.  It mirrors FastBFS's input
format — a flat binary edge list plus a config describing vertex count and
directedness — held in memory (our reproductions run at reduced scale; the
*engines* still stream it through the simulated storage layer partition by
partition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.types import EDGE_DTYPE, make_edges
from repro.utils.units import format_bytes


@dataclass
class Graph:
    """An immutable-by-convention directed edge list.

    ``directed=False`` means the edge list already contains both directions
    of every undirected edge (the friendster convention); engines always
    treat edges as directed arcs.
    """

    num_vertices: int
    edges: np.ndarray
    name: str = "graph"
    directed: bool = True
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_vertices <= 0:
            raise GraphError(f"num_vertices must be positive, got {self.num_vertices}")
        if self.edges.dtype != EDGE_DTYPE:
            raise GraphError(
                f"edges must have EDGE_DTYPE, got {self.edges.dtype}; "
                "use make_edges()/Graph.from_arrays()"
            )
        if len(self.edges):
            top = max(int(self.edges["src"].max()), int(self.edges["dst"].max()))
            if top >= self.num_vertices:
                raise GraphError(
                    f"edge endpoint {top} out of range for {self.num_vertices} vertices"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_arrays(
        num_vertices: int,
        src,
        dst,
        name: str = "graph",
        directed: bool = True,
    ) -> "Graph":
        return Graph(num_vertices, make_edges(src, dst), name=name, directed=directed)

    @staticmethod
    def from_edge_pairs(num_vertices: int, pairs, name: str = "graph") -> "Graph":
        """Build from an iterable of (src, dst) tuples (tests/examples)."""
        pairs = list(pairs)
        if pairs:
            src, dst = zip(*pairs)
        else:
            src, dst = [], []
        return Graph.from_arrays(num_vertices, src, dst, name=name)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def nbytes(self) -> int:
        """On-disk size of the raw edge list."""
        return self.edges.nbytes

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.edges["src"], minlength=self.num_vertices)

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.edges["dst"], minlength=self.num_vertices)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def symmetrized(self, name: Optional[str] = None) -> "Graph":
        """Add the reverse of every edge (undirected-graph convention)."""
        fwd = self.edges
        rev = np.empty(len(fwd), dtype=EDGE_DTYPE)
        rev["src"] = fwd["dst"]
        rev["dst"] = fwd["src"]
        both = np.concatenate([fwd, rev])
        return Graph(
            self.num_vertices,
            both,
            name=name or f"{self.name}-sym",
            directed=False,
            meta=dict(self.meta),
        )

    def deduplicated(self, drop_self_loops: bool = False) -> "Graph":
        """Remove duplicate edges (and optionally self loops)."""
        edges = self.edges
        if drop_self_loops:
            edges = edges[edges["src"] != edges["dst"]]
        keys = edges["src"].astype(np.uint64) * self.num_vertices + edges["dst"]
        _, idx = np.unique(keys, return_index=True)
        return Graph(
            self.num_vertices,
            edges[np.sort(idx)],
            name=self.name,
            directed=self.directed,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:
        return (
            f"Graph({self.name!r}, V={self.num_vertices:,}, E={self.num_edges:,}, "
            f"{format_bytes(self.nbytes)}, {'directed' if self.directed else 'undirected'})"
        )
