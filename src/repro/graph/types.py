"""On-disk record layouts shared by every engine.

FastBFS stores graphs as raw binary edge lists (paper §III) — 8 bytes per
edge, two little-endian u32s.  Updates are the same size (destination +
payload, where the payload is the BFS parent, a WCC label, or an SSSP
distance).  These dtypes define both the data path (numpy structured arrays)
and the byte accounting (``arr.nbytes`` is what devices charge for).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError

#: Unweighted directed edge: (source, destination), 8 bytes.
EDGE_DTYPE = np.dtype([("src", "<u4"), ("dst", "<u4")])

#: Weighted edge for the SSSP extension, 12 bytes.
WEIGHTED_EDGE_DTYPE = np.dtype([("src", "<u4"), ("dst", "<u4"), ("weight", "<f4")])

#: Update record: destination vertex + algorithm payload, 8 bytes.
UPDATE_DTYPE = np.dtype([("dst", "<u4"), ("payload", "<u4")])

#: Sentinel parent for roots / unreached vertices.
NO_PARENT = np.uint32(0xFFFFFFFF)

#: Sentinel level for unreached vertices.
UNVISITED = np.int32(-1)


def make_edges(src, dst) -> np.ndarray:
    """Build an EDGE_DTYPE array from two integer sequences."""
    src = np.asarray(src, dtype=np.uint32)
    dst = np.asarray(dst, dtype=np.uint32)
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphError(
            f"src/dst must be equal-length 1-D arrays, got {src.shape} and {dst.shape}"
        )
    edges = np.empty(len(src), dtype=EDGE_DTYPE)
    edges["src"] = src
    edges["dst"] = dst
    return edges


def empty_edges(weighted: bool = False) -> np.ndarray:
    """Zero-length edge array of the right dtype."""
    return np.empty(0, dtype=WEIGHTED_EDGE_DTYPE if weighted else EDGE_DTYPE)


def make_updates(dst, payload) -> np.ndarray:
    """Build an UPDATE_DTYPE array from destination + payload sequences."""
    dst = np.asarray(dst, dtype=np.uint32)
    payload = np.asarray(payload, dtype=np.uint32)
    if payload.ndim == 0:
        payload = np.broadcast_to(payload, dst.shape)
    if dst.shape != payload.shape:
        raise GraphError("dst/payload length mismatch")
    updates = np.empty(len(dst), dtype=UPDATE_DTYPE)
    updates["dst"] = dst
    updates["payload"] = payload
    return updates
