"""Graph statistics used to check dataset-stand-in fidelity.

The reproduction replaces the paper's real datasets with generated
stand-ins; these statistics (degree distribution shape, reachability,
effective diameter) are what must survive the substitution — they are
asserted in tests and reported by the dataset benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.utils.rng import rng_from_seed


@dataclass
class DegreeStats:
    """Summary of one degree distribution."""

    mean: float
    median: float
    maximum: int
    zero_fraction: float
    gini: float

    @property
    def skew_ratio(self) -> float:
        """max/mean — crude heavy-tail indicator (>>1 for power laws)."""
        return self.maximum / self.mean if self.mean else 0.0


def degree_stats(degrees: np.ndarray) -> DegreeStats:
    """Summary statistics of a degree array."""
    degrees = np.asarray(degrees, dtype=np.float64)
    if len(degrees) == 0:
        raise GraphError("empty degree array")
    total = degrees.sum()
    sorted_deg = np.sort(degrees)
    n = len(degrees)
    if total > 0:
        # Gini coefficient of the degree distribution (0=uniform, ->1=hub).
        cumulative = np.cumsum(sorted_deg)
        gini = float(
            (n + 1 - 2 * (cumulative / total).sum()) / n
        )
    else:
        gini = 0.0
    return DegreeStats(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        maximum=int(degrees.max()),
        zero_fraction=float((degrees == 0).mean()),
        gini=gini,
    )


def degree_histogram(degrees: np.ndarray, bins: int = 32) -> Dict[int, int]:
    """Log-binned degree histogram {bin lower bound: count}."""
    degrees = np.asarray(degrees)
    out: Dict[int, int] = {0: int((degrees == 0).sum())}
    positive = degrees[degrees > 0]
    if len(positive) == 0:
        return out
    top = int(positive.max())
    edges = np.unique(
        np.logspace(0, np.log10(max(top, 1)) + 1e-9, bins).astype(np.int64)
    )
    counts, _ = np.histogram(positive, bins=np.append(edges, top + 1))
    for lo, count in zip(edges, counts):
        if count:
            out[int(lo)] = int(count)
    return out


def effective_diameter(
    graph: Union[Graph, CSRGraph],
    quantile: float = 0.9,
    sample_roots: int = 8,
    seed: int = 0,
) -> float:
    """Approximate effective diameter: the ``quantile`` of pairwise hop
    distances, estimated by BFS from a few sampled roots (standard
    practice for graphs too big for all-pairs)."""
    from repro.algorithms.reference import bfs_levels  # local: avoid cycle

    if not 0 < quantile <= 1:
        raise GraphError(f"quantile must be in (0, 1], got {quantile}")
    if isinstance(graph, CSRGraph):
        csr = graph
        n = csr.num_vertices
    else:
        csr = CSRGraph.from_graph(graph)
        n = graph.num_vertices
    rng = rng_from_seed(seed)
    out_deg = csr.indptr[1:] - csr.indptr[:-1]
    candidates = np.flatnonzero(out_deg > 0)
    if len(candidates) == 0:
        return 0.0
    roots = rng.choice(candidates, size=min(sample_roots, len(candidates)),
                       replace=False)
    distances = []
    for root in roots:
        levels = bfs_levels(csr, int(root))
        distances.append(levels[levels >= 0])
    all_d = np.concatenate(distances)
    return float(np.quantile(all_d, quantile))


def summarize(graph: Graph) -> Dict[str, object]:
    """One-call fidelity summary of a graph (used by dataset reports)."""
    out_stats = degree_stats(graph.out_degrees())
    in_stats = degree_stats(graph.in_degrees())
    return {
        "name": graph.name,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "bytes": graph.nbytes,
        "out_degree": out_stats,
        "in_degree": in_stats,
        "effective_diameter": effective_diameter(graph),
    }
