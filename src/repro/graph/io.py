"""Graph file I/O.

The primary format is the paper's (§III): "FastBFS organizes the original
graph in a raw edge list format, which is stored as a binary file ... with
an associated configuration file to describe the graph characteristics."
``<path>`` holds little-endian (u32 src, u32 dst) pairs and ``<path>.json``
records vertex count, directedness and provenance metadata.

A SNAP-style text format (one ``src<TAB>dst`` pair per line, ``#`` comment
headers) is also supported — the paper's twitter_rv and friendster
downloads ship in it — including relabeling of sparse vertex ids.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph
from repro.graph.types import EDGE_DTYPE

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: Union[str, os.PathLike]) -> None:
    """Write ``graph`` as a raw binary edge list + JSON config sidecar."""
    path = os.fspath(path)
    graph.edges.tofile(path)
    config = {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "directed": graph.directed,
        "record": "u32le src, u32le dst",
        "meta": _jsonable(graph.meta),
    }
    with open(path + ".json", "w", encoding="utf-8") as fh:
        json.dump(config, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_graph(path: Union[str, os.PathLike]) -> Graph:
    """Read a graph written by :func:`save_graph`, validating the sidecar."""
    path = os.fspath(path)
    config_path = path + ".json"
    if not os.path.exists(config_path):
        raise GraphFormatError(f"missing config sidecar {config_path}")
    with open(config_path, "r", encoding="utf-8") as fh:
        try:
            config = json.load(fh)
        except json.JSONDecodeError as exc:
            raise GraphFormatError(f"config {config_path} is not valid JSON: {exc}")
    for key in ("num_vertices", "num_edges", "name"):
        if key not in config:
            raise GraphFormatError(f"config {config_path} missing key {key!r}")
    edges = np.fromfile(path, dtype=EDGE_DTYPE)
    if len(edges) != config["num_edges"]:
        raise GraphFormatError(
            f"{path}: expected {config['num_edges']} edges, file holds {len(edges)}"
        )
    return Graph(
        num_vertices=int(config["num_vertices"]),
        edges=edges,
        name=str(config["name"]),
        directed=bool(config.get("directed", True)),
        meta=dict(config.get("meta", {})),
    )


def _jsonable(obj):
    """Best-effort conversion of metadata values to JSON-safe types."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def save_edge_list_text(graph: Graph, path: Union[str, os.PathLike]) -> None:
    """Write a SNAP-style text edge list (``src<TAB>dst`` per line)."""
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# {graph.name}\n")
        fh.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        fh.write("# FromNodeId\tToNodeId\n")
        np.savetxt(
            fh,
            np.column_stack([graph.edges["src"], graph.edges["dst"]]),
            fmt="%d",
            delimiter="\t",
        )


def load_edge_list_text(
    path: Union[str, os.PathLike],
    name: Optional[str] = None,
    relabel: bool = False,
    num_vertices: Optional[int] = None,
) -> Graph:
    """Read a SNAP-style text edge list.

    Lines starting with ``#`` are comments.  Vertex ids must fit u32;
    ``relabel=True`` compacts sparse ids to ``0..V-1`` (recording the count
    of distinct vertices), otherwise ``num_vertices`` defaults to
    ``max id + 1``.
    """
    path = os.fspath(path)
    try:
        data = np.loadtxt(path, comments="#", dtype=np.int64, ndmin=2)
    except ValueError as exc:
        raise GraphFormatError(f"{path}: cannot parse edge list: {exc}")
    if data.size == 0:
        data = np.empty((0, 2), dtype=np.int64)
    if data.shape[1] < 2:
        raise GraphFormatError(
            f"{path}: expected 2+ columns (src, dst), got {data.shape[1]}"
        )
    src, dst = data[:, 0], data[:, 1]
    if len(src) and (src.min() < 0 or dst.min() < 0):
        raise GraphFormatError(f"{path}: negative vertex ids")
    if relabel:
        uniq = np.unique(np.concatenate([src, dst]))
        src = np.searchsorted(uniq, src)
        dst = np.searchsorted(uniq, dst)
        n = max(len(uniq), 1)
    else:
        top = int(max(src.max(), dst.max())) if len(src) else 0
        if top >= 2**32:
            raise GraphFormatError(f"{path}: vertex id {top} exceeds u32")
        n = num_vertices if num_vertices is not None else top + 1
    graph_name = name if name is not None else os.path.basename(path)
    return Graph(
        num_vertices=int(n),
        edges=_pairs_to_edges(src, dst),
        name=graph_name,
        meta={"source": path, "format": "snap-text", "relabeled": relabel},
    )


def _pairs_to_edges(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    from repro.graph.types import make_edges

    return make_edges(src.astype(np.uint32), dst.astype(np.uint32))
