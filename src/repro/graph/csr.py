"""Compressed-sparse-row adjacency, used by the in-memory reference BFS.

Built fully vectorized (counting sort on sources); the engines never touch
this — it exists so every out-of-core result can be checked against a
straightforward in-memory traversal.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph


class CSRGraph:
    """Out-adjacency in CSR form: ``indices[indptr[v]:indptr[v+1]]``."""

    def __init__(self, num_vertices: int, indptr: np.ndarray, indices: np.ndarray):
        if len(indptr) != num_vertices + 1:
            raise GraphError("indptr length must be num_vertices + 1")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise GraphError("indptr must start at 0 and end at len(indices)")
        self.num_vertices = num_vertices
        self.indptr = indptr
        self.indices = indices

    @staticmethod
    def from_graph(graph: Graph) -> "CSRGraph":
        src = graph.edges["src"]
        dst = graph.edges["dst"]
        counts = np.bincount(src, minlength=graph.num_vertices)
        indptr = np.zeros(graph.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(src, kind="stable")
        indices = dst[order].astype(np.int64)
        return CSRGraph(graph.num_vertices, indptr, indices)

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def out_degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def frontier_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Concatenated neighbor lists of every vertex in ``frontier``.

        Vectorized slice-gather: no Python-level loop over vertices.
        """
        starts = self.indptr[frontier]
        stops = self.indptr[frontier + 1]
        lengths = stops - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Classic repeat/cumsum gather of ragged slices.
        out_offsets = np.zeros(len(frontier) + 1, dtype=np.int64)
        np.cumsum(lengths, out=out_offsets[1:])
        idx = np.arange(total, dtype=np.int64)
        which = np.searchsorted(out_offsets[1:], idx, side="right")
        within = idx - out_offsets[which]
        return self.indices[starts[which] + within]
