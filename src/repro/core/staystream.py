"""Stay-stream lifecycle: the asynchronous trimming machinery (paper §III).

Every trimming scatter over partition *p* produces a new stay file through
an :class:`~repro.storage.streams.AsyncStreamWriter` (the "dedicated thread"
with private edge buffers).  The file is *not* drained when the partition
finishes — its writes keep flushing in the background across the rest of the
pass and into the next iteration.  When scatter reaches *p* again, exactly
one of two things happens:

* **swap** — the stay file is durable (or will be within the cancellation
  grace): it replaces *p*'s edge file as input, and the displaced file is
  deleted;
* **cancel** — the write-back is still queued: drop the unstarted requests,
  discard the partial file, and keep streaming the previous edge file
  ("pull out in time from expensive data writing").

The manager tracks both generations — the writer currently producing
("stay stream out") and the writer pending from last iteration ("stay
stream in" candidate) — mirroring the two stay stream sets the paper swaps
each iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.core.config import FastBFSConfig
from repro.errors import EngineError
from repro.obs.tracer import NULL_TRACER
from repro.sim.clock import SimClock
from repro.storage.device import Device
from repro.storage.streams import AsyncStreamWriter
from repro.storage.vfs import VFS, VirtualFile


@dataclass
class StayStats:
    """Cumulative trimming counters for one run.

    ``cancellations`` counts every mid-run degradation to the previous
    edge file — the timing cancels of paper §IV.B plus the fault-driven
    ones broken out below (``integrity_failures`` for checksum mismatches
    at swap-in, ``write_failures`` for flushes that kept failing after
    retries).  Each mid-run cancellation emits one ``stay_cancel`` span
    with ``end_of_run=False``, so the two countings always agree.
    """

    files_written: int = 0
    swaps: int = 0
    cancellations: int = 0
    records_written: int = 0
    bytes_written: int = 0
    pool_waits: int = 0
    end_of_run_discards: int = 0
    integrity_failures: int = 0
    write_failures: int = 0


class StayStreamManager:
    """Owns every stay writer of a run."""

    def __init__(
        self,
        clock: SimClock,
        vfs: VFS,
        device: Device,
        config: FastBFSConfig,
        protected: FrozenSet[str] = frozenset(),
        tracer=NULL_TRACER,
    ) -> None:
        self.clock = clock
        self.vfs = vfs
        self.device = device
        self.config = config
        #: VFS names a swap must not displace (staged-artifact edge files
        #: owned by a shared StagedGraph, not by this query).
        self.protected = protected
        self._current: Dict[int, AsyncStreamWriter] = {}
        self._pending: Dict[int, AsyncStreamWriter] = {}
        self.stats = StayStats()
        # Stay flushes outlive the iteration span that opened them, so
        # their spans are emitted retroactively under the span open at
        # construction time — the enclosing query span.
        self.tracer = tracer
        self._span_anchor = tracer.current_id
        self._iteration_of: Dict[int, int] = {}  # id(writer) -> iteration

    # ------------------------------------------------------------------
    # input resolution (start of a partition's scatter)
    # ------------------------------------------------------------------
    def resolve_input(
        self, p: int, current_file: VirtualFile
    ) -> Tuple[VirtualFile, str]:
        """Swap in partition ``p``'s pending stay file, or cancel it.

        Returns ``(input_file, outcome)`` with outcome one of ``"keep"``
        (no pending stay), ``"swap"``, or ``"cancel"``.
        """
        writer = self._pending.pop(p, None)
        if writer is None:
            return current_file, "keep"
        if writer.write_failed:
            # The flush path gave up after retries: the stay file is
            # incomplete on the medium.  Degrade exactly like a timing
            # cancellation — the previous edge file is still valid input.
            self.stats.write_failures += 1
            return self._cancel(p, writer, current_file, reason="write_failure")
        if writer.is_ready(grace=self.config.cancellation_grace):
            # Possibly a short wait inside the grace window.
            self.clock.wait_until(writer.ready_at())
            if writer.verify_integrity():
                # Durable but damaged (torn write): a checksum mismatch at
                # swap-in degrades to the previous edge file rather than
                # ever serving corrupt edges.
                self.stats.integrity_failures += 1
                return self._cancel(
                    p, writer, current_file, reason="checksum_mismatch"
                )
            self._emit_span("stay_flush", p, writer, end=writer.ready_at())
            new_file = writer.file
            old_name = current_file.name
            if old_name in self.protected:
                # The displaced file belongs to a shared staged artifact:
                # serve the stay file under its own name and leave the
                # artifact intact for the next query session.
                self.stats.swaps += 1
                return new_file, "swap"
            self.vfs.replace(new_file.name, old_name)
            self.stats.swaps += 1
            return new_file, "swap"
        return self._cancel(p, writer, current_file, reason="not_ready")

    def _cancel(
        self,
        p: int,
        writer: AsyncStreamWriter,
        current_file: VirtualFile,
        reason: str,
    ) -> Tuple[VirtualFile, str]:
        """Mid-run cancellation: drop the stay file, keep the previous input."""
        writer.cancel()
        self._emit_span(
            "stay_cancel", p, writer, end=self.clock.now,
            end_of_run=False, reason=reason,
        )
        self.stats.cancellations += 1
        self.vfs.delete(writer.file.name)
        return current_file, "cancel"

    def _emit_span(
        self,
        name: str,
        p: int,
        writer: AsyncStreamWriter,
        end: float,
        **attrs,
    ) -> None:
        """Retroactive span for one stay writer's lifetime (see __init__)."""
        self.tracer.emit(
            name,
            start=writer.opened_at,
            end=max(end, writer.opened_at),
            parent_id=self._span_anchor,
            partition=p,
            iteration=self._iteration_of.pop(id(writer), -1),
            records=writer.records_written,
            bytes=writer.file.nbytes,
            **attrs,
        )

    # ------------------------------------------------------------------
    # output production (during a partition's scatter)
    # ------------------------------------------------------------------
    def open(
        self, p: int, iteration: int, device: Optional[Device] = None
    ) -> AsyncStreamWriter:
        """Create the stay-out writer for partition ``p`` this iteration.

        ``device`` overrides the manager's default target (used by the
        two-disk rotation, which alternates the stay-out disk per
        iteration).
        """
        if p in self._current:
            raise EngineError(f"stay writer for partition {p} already open")
        file = self.vfs.create(f"stay:p{p}:i{iteration}", device or self.device)
        writer = AsyncStreamWriter(
            self.clock,
            file,
            self.config.stay_buffer_bytes,
            num_buffers=self.config.num_stay_buffers,
            group=f"stay:p{p}:i{iteration}",
            retry=self.config.retry,
        )
        self._current[p] = writer
        self._iteration_of[id(writer)] = iteration
        self.stats.files_written += 1
        return writer

    def current(self, p: int) -> Optional[AsyncStreamWriter]:
        return self._current.get(p)

    def append(self, p: int, records: np.ndarray) -> None:
        writer = self._current.get(p)
        if writer is None:
            raise EngineError(f"no open stay writer for partition {p}")
        writer.append(records)
        self.stats.records_written += len(records)
        self.stats.bytes_written += records.nbytes

    def finish_partition(self, p: int) -> None:
        """Close ``p``'s stay-out writer *without* draining (async flush)."""
        writer = self._current.pop(p, None)
        if writer is None:
            return
        writer.close(drain=False)
        self.stats.pool_waits += writer.pool_waits
        self._pending[p] = writer

    # ------------------------------------------------------------------
    # end of run
    # ------------------------------------------------------------------
    def discard_all(self) -> None:
        """Cancel every outstanding stay write (traversal finished).

        The in-flight buffers still complete and stay charged — wasted
        write-back is a real cost of trimming near the end of a traversal.
        """
        for p, writer in list(self._pending.items()) + list(self._current.items()):
            writer.cancel()
            self._emit_span(
                "stay_cancel", p, writer, end=self.clock.now,
                end_of_run=True, reason="end_of_run",
            )
            self.vfs.delete_if_exists(writer.file.name)
            self.stats.end_of_run_discards += 1
        self._pending.clear()
        self._current.clear()

    def finalize(self) -> None:
        """End-of-run teardown: the public name for :meth:`discard_all`.

        Delegates through the instance attribute so a sanitizer that
        wrapped ``discard_all`` still observes the terminal transition.
        """
        self.discard_all()

    @property
    def pending_partitions(self) -> Dict[int, AsyncStreamWriter]:
        return dict(self._pending)
