"""The FastBFS engine: edge-centric traversal with asynchronous trimming.

Implements the paper's execution loop (Fig. 2) on top of the shared
X-Stream scaffolding by overriding its partition hooks:

* ``_edge_input_file`` — the cross-iteration swap: take the stay file
  written during the *previous* iteration as this scatter's input, or
  cancel it if it isn't durable yet (§II-C2);
* ``_pre/_on/_post_partition_scatter`` — produce the stay-out stream for
  surviving edges through the dedicated asynchronous writer (§III);
* ``_should_process_partition`` / ``_should_scatter`` — selective
  scheduling: converged partitions (no updates received) are skipped
  entirely (§II-C3).

Running a non-trimmable algorithm (e.g. WCC) degrades gracefully: the trim
policy disables stay streams and only selective scheduling remains.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.streaming import AlgoContext
from repro.core.config import FastBFSConfig
from repro.core.policies import TrimPolicy
from repro.core.staystream import StayStreamManager
from repro.engines.base import EdgeCentricEngine, _RunState
from repro.engines.result import IterationStats
from repro.storage.vfs import VirtualFile


class FastBFSEngine(EdgeCentricEngine):
    """FastBFS (paper §II-§III)."""

    name = "fastbfs"

    def __init__(self, config: Optional[FastBFSConfig] = None) -> None:
        super().__init__(config if config is not None else FastBFSConfig())
        if not isinstance(self.config, FastBFSConfig):
            # Accept a plain EngineConfig by upgrading it with defaults.
            base = self.config
            self.config = FastBFSConfig(
                **{
                    f: getattr(base, f)
                    for f in base.__dataclass_fields__  # type: ignore[attr-defined]
                }
            )

    # ------------------------------------------------------------------
    # run lifecycle
    # ------------------------------------------------------------------
    def _before_run(self, rt: _RunState) -> None:
        cfg: FastBFSConfig = self.config  # type: ignore[assignment]
        machine = rt.machine
        if rt.in_memory:
            stay_device = machine.ram
        else:
            stay_index = cfg.stay_disk if cfg.stay_disk is not None else cfg.edge_disk
            stay_device = machine.disk(stay_index)
        rt.stay = StayStreamManager(
            machine.clock, machine.vfs, stay_device, cfg,
            protected=rt.protected_files,
            tracer=machine.tracer,
        )
        sanitizer = getattr(machine, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.watch_staystream(rt.stay)
        rt.trim_policy = TrimPolicy(cfg, rt.algo.supports_trimming)
        rt.trim_active_iteration = -1
        rt.trim_active = False

    def _after_run(self, rt: _RunState) -> None:
        rt.stay.finalize()
        stats = rt.stay.stats
        rt.extras.update(
            {
                "stay_files_written": float(stats.files_written),
                "stay_swaps": float(stats.swaps),
                "stay_cancellations": float(stats.cancellations),
                "stay_records_written": float(stats.records_written),
                "stay_bytes_written": float(stats.bytes_written),
                "stay_pool_waits": float(stats.pool_waits),
                "stay_end_of_run_discards": float(stats.end_of_run_discards),
                "stay_integrity_failures": float(stats.integrity_failures),
                "stay_write_failures": float(stats.write_failures),
            }
        )

    # ------------------------------------------------------------------
    # selective scheduling (§II-C3)
    # ------------------------------------------------------------------
    def _should_process_partition(
        self, rt: _RunState, p: int, has_updates: bool, initial_active: int
    ) -> bool:
        cfg: FastBFSConfig = self.config  # type: ignore[assignment]
        if not cfg.selective_scheduling:
            return True
        return has_updates or initial_active > 0

    def _should_scatter(self, rt: _RunState, p: int, activated: int) -> bool:
        cfg: FastBFSConfig = self.config  # type: ignore[assignment]
        if not cfg.selective_scheduling:
            return True
        return activated > 0

    # ------------------------------------------------------------------
    # trimming hooks
    # ------------------------------------------------------------------
    def _trimming_active(self, rt: _RunState, iteration: int) -> bool:
        """Per-iteration policy decision, evaluated once per pass."""
        if rt.trim_active_iteration != iteration:
            previous = rt.iterations[-2] if len(rt.iterations) >= 2 else None
            rt.trim_active = rt.trim_policy.trimming_active(iteration, previous)
            rt.trim_active_iteration = iteration
        return rt.trim_active

    def _edge_input_file(
        self, rt: _RunState, p: int, ctx: AlgoContext, stats: IterationStats
    ) -> VirtualFile:
        input_file, outcome = rt.stay.resolve_input(p, rt.edge_files[p])
        if outcome == "swap":
            rt.edge_files[p] = input_file
            stats.stay_swaps += 1
        elif outcome == "cancel":
            stats.stay_cancellations += 1
        return input_file

    def _write_disk(self, rt: _RunState, iteration: int):
        """Target disk for streams produced during ``iteration``.

        With ``rotate_streams`` every write of iteration *i* lands on disk
        ``(i+1) % 2`` and is read back from there in iteration *i+1*, so on
        a two-disk machine reads and writes never contend (paper Fig. 10).
        """
        cfg: FastBFSConfig = self.config  # type: ignore[assignment]
        if rt.in_memory or not cfg.rotate_streams:
            return None
        return rt.machine.disk((iteration + 1) % 2)

    def _update_device(self, rt: _RunState, iteration: int):
        rotated = self._write_disk(rt, iteration)
        return rotated if rotated is not None else rt.dev_updates

    def _pre_partition_scatter(self, rt: _RunState, p: int, ctx: AlgoContext) -> None:
        if self._trimming_active(rt, ctx.iteration):
            rt.stay.open(p, ctx.iteration, device=self._write_disk(rt, ctx.iteration))

    def _on_scatter_buffer(
        self,
        rt: _RunState,
        p: int,
        ctx: AlgoContext,
        buf: np.ndarray,
        src_local: np.ndarray,
        eliminate: Optional[np.ndarray],
        stats: IterationStats,
    ) -> None:
        writer = rt.stay.current(p)
        if writer is None or eliminate is None:
            return
        cfg: FastBFSConfig = self.config  # type: ignore[assignment]
        lo, hi = rt.partitioning.range_of(p)
        if cfg.extended_trim:
            eliminate = rt.algo.extended_eliminate(
                rt.state[lo:hi], src_local, eliminate
            )
        survivors = buf[~eliminate]
        stats.edges_eliminated += int(eliminate.sum())
        stats.stay_records_written += len(survivors)
        cfg.cost_model.charge(
            rt.machine.clock,
            "trim",
            cfg.cost_model.trim_per_edge,
            len(survivors),
            cfg.threads,
            rt.machine.cores,
        )
        rt.stay.append(p, survivors)

    def _post_partition_scatter(self, rt: _RunState, p: int, ctx: AlgoContext) -> None:
        rt.stay.finish_partition(p)
