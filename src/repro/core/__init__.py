"""FastBFS — the paper's contribution.

:class:`FastBFSEngine` extends the shared edge-centric scaffolding with the
three mechanisms of §II/§III:

1. **asynchronous trimming** — update-generating edges are dropped; the
   survivors stream to a per-partition *stay file* through a dedicated
   writer with private buffers (:mod:`repro.core.staystream`);
2. **cross-iteration latency hiding with cancellation** — a stay file from
   iteration *i* is swapped in when scatter reaches its partition in
   iteration *i+1*, or cancelled if it still isn't durable after a short
   grace wait;
3. **policy knobs** — deferred trimming for slow-converging graphs and
   selective scheduling of converged partitions
   (:mod:`repro.core.policies`), plus multi-disk stream placement.
"""

from repro.core.config import FastBFSConfig
from repro.core.engine import FastBFSEngine
from repro.core.policies import TrimPolicy
from repro.core.staystream import StayStreamManager

__all__ = ["FastBFSEngine", "FastBFSConfig", "TrimPolicy", "StayStreamManager"]
