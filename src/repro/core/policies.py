"""Trimming activation policy (paper §II-C3).

Eager trimming can lose: on a slow-converging graph the frontier stays tiny,
almost nothing is eliminated, and every iteration rewrites nearly the whole
edge list for no reduction.  :class:`TrimPolicy` decides, once per
iteration, whether the stay stream should be produced at all:

* never before ``trim_start_iteration``;
* when ``trim_trigger_fraction`` > 0, only once the *previous* iteration
  eliminated at least that fraction of the edges it scanned (the measurable
  proxy for "the stay list shrinks to a relatively small proportion").

The decision is sticky upward: once triggered, trimming stays on — the
eliminated fraction of the (already trimmed) stream only grows as the
traversal converges.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import FastBFSConfig
from repro.engines.result import IterationStats


class TrimPolicy:
    """Per-iteration decision: produce stay streams or not."""

    def __init__(self, config: FastBFSConfig, algorithm_supports_trimming: bool):
        self.config = config
        self.supported = bool(algorithm_supports_trimming and config.trim_enabled)
        self._triggered = config.trim_trigger_fraction <= 0.0

    def trimming_active(
        self, iteration: int, previous: Optional[IterationStats]
    ) -> bool:
        """Should scatter iteration ``iteration`` write stay streams?"""
        if not self.supported:
            return False
        if iteration < self.config.trim_start_iteration:
            return False
        if not self._triggered and previous is not None and previous.edges_scanned:
            # Updates generated per edge scanned is the eliminable fraction
            # under the paper's rule (generate => eliminate), and is counted
            # whether or not trimming ran last iteration.
            fraction = previous.updates_generated / previous.edges_scanned
            if fraction >= self.config.trim_trigger_fraction:
                self._triggered = True
        return self._triggered
