"""FastBFS configuration: the base engine knobs plus trimming controls."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.engines.base import EngineConfig
from repro.errors import ConfigError
from repro.utils.units import KB, parse_bytes


@dataclass
class FastBFSConfig(EngineConfig):
    """All the FastBFS-specific knobs from paper §II-C and §III.

    * ``trim_enabled`` — master switch (off = behaves like X-Stream plus
      selective scheduling).
    * ``trim_start_iteration`` / ``trim_trigger_fraction`` — the deferred
      trimming policy for slow-converging (high-diameter) graphs: trimming
      begins at the given iteration AND once the previous iteration
      eliminated at least the given fraction of scanned edges ("start the
      graph trimming several iterations later, till the stay list shrinks
      to a relatively small proportion", §II-C3).
    * ``extended_trim`` — ablation: also drop edges from already-visited
      sources (stricter than the paper's generate=>eliminate rule).
    * ``selective_scheduling`` — skip partitions that received no updates
      (§II-C3 coarse-granularity scheduling).
    * ``stay_buffer_bytes`` / ``num_stay_buffers`` — the dedicated writer's
      private edge buffers ("user can utilize larger memory space and more
      edge buffers", §III).
    * ``cancellation_grace`` — how long scatter waits for an unfinished stay
      file before cancelling it and reusing the previous edge file.
    * ``stay_disk`` — fixed disk index for the *stay stream out*; ``None``
      keeps it with the edge files.
    * ``rotate_streams`` — the paper's Fig. 10 placement: FastBFS "switches
      the roles of stay stream in and stay stream out at the beginning of
      each iteration, which guarantees that the largest amount of read and
      write operation are separated onto different disks".  With two disks,
      everything *written* during iteration *i* (stay-out + the outgoing
      update stream set) goes to disk ``(i+1) % 2`` and is *read* from there
      during iteration *i+1*, so reads and writes never share a spindle.
      Overrides ``stay_disk``/``update_disk``; a no-op on one disk.
    """

    trim_enabled: bool = True
    trim_start_iteration: int = 0
    trim_trigger_fraction: float = 0.0
    extended_trim: bool = False
    selective_scheduling: bool = True
    stay_buffer_bytes: Union[int, str] = 32 * KB
    num_stay_buffers: int = 4
    cancellation_grace: float = 0.005
    stay_disk: Optional[int] = None
    rotate_streams: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        self.stay_buffer_bytes = parse_bytes(self.stay_buffer_bytes)
        if self.stay_buffer_bytes <= 0:
            raise ConfigError("stay_buffer_bytes must be positive")
        if self.num_stay_buffers < 1:
            raise ConfigError("num_stay_buffers must be >= 1")
        if self.trim_start_iteration < 0:
            raise ConfigError("trim_start_iteration must be >= 0")
        if not 0.0 <= self.trim_trigger_fraction < 1.0:
            raise ConfigError("trim_trigger_fraction must be in [0, 1)")
        if self.cancellation_grace < 0:
            raise ConfigError("cancellation_grace must be >= 0")
        if self.stay_disk is not None and self.stay_disk < 0:
            raise ConfigError("stay_disk must be >= 0 or None")

    @staticmethod
    def two_disk(**kwargs) -> "FastBFSConfig":
        """The Fig. 10 placement: alternate write streams across two disks."""
        kwargs.setdefault("rotate_streams", True)
        return FastBFSConfig(**kwargs)
