"""Command-line interface: ``fastbfs`` (or ``python -m repro``).

Subcommands:

* ``generate`` — build a synthetic graph (rmat/powerlaw/random/grid or a
  Table II dataset stand-in) and write it as a binary edge list + config;
* ``run`` — run BFS (or WCC) on a graph file or named dataset with a chosen
  engine and simulated machine, printing the execution report;
* ``batch`` — stage a graph once and run one BFS query per given root,
  printing per-query and staging-amortized timings;
* ``compare`` — run all three engines on one input and print the
  paper-style comparison (time / input data / iowait / speedups);
* ``profile`` — analyze a span-trace JSONL file (stage breakdowns, stay
  overlap; ``--host`` adds the dual-clock host-cost table for traces
  recorded with ``--host-profile``) or, with ``--graph``/``--dataset``,
  print the per-level convergence profile (Fig. 1 data);
* ``top`` — poll a running graph service's ``/debug/timeseries`` ring
  and render a live per-graph RPS / queue-depth / latency-quantile
  view (``--once`` for a single CI-friendly sample);
* ``bench`` — collect a ``BENCH_<seq>.json`` benchmark snapshot
  (``bench run``) or diff the two newest under the tolerance policy
  (``bench compare``, nonzero exit on regression);
* ``chaos`` — sweep seeded fault-injection schedules across engines and
  disk placements; every surviving run must produce bit-identical BFS
  levels (nonzero exit on any violation);
* ``lint`` — per-file repo lint pass (rules FB1xx; text/JSON/SARIF);
* ``analyze`` — whole-program effect & determinism analyzer (rules
  FB2xx; shares findings, baselines and exit codes with ``lint``);
* ``datasets`` — list the Table II registry.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.algorithms.reference import level_profile
from repro.algorithms.streaming import WCCAlgorithm
from repro.algorithms.validation import teps, validate_bfs_result
from repro.analysis.calibration import (
    scaled_engine_config,
    scaled_fastbfs_config,
    scaled_graphchi_config,
    scaled_machine,
)
from repro.analysis.harness import default_root
from repro.analysis.tables import format_table
from repro.api import ENGINES, AnyEngine, export_observability, make_engine
from repro.errors import ReproError
from repro.graph.datasets import DATASETS, build_dataset
from repro.graph.graph import Graph
from repro.storage.machine import Machine
from repro.graph.generators import (
    grid_graph,
    powerlaw_graph,
    random_graph,
    rmat_graph,
)
from repro.graph.io import load_graph, save_graph
from repro.utils.units import format_bytes, format_seconds


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fastbfs",
        description="FastBFS (IPDPS 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic graph file")
    gen.add_argument("kind", choices=["rmat", "powerlaw", "random", "grid", "dataset"])
    gen.add_argument("output", help="output path (binary edge list)")
    gen.add_argument("--scale", type=int, default=14, help="rmat scale")
    gen.add_argument("--edge-factor", type=int, default=16)
    gen.add_argument("--vertices", type=int, default=1 << 16)
    gen.add_argument("--edges", type=int, default=1 << 20)
    gen.add_argument("--width", type=int, default=256)
    gen.add_argument("--height", type=int, default=256)
    gen.add_argument("--dataset", choices=sorted(DATASETS), default="rmat22")
    gen.add_argument("--seed", type=int, default=1)

    run = sub.add_parser("run", help="run an engine on a graph")
    _add_input_args(run)
    run.add_argument("--engine", choices=list(ENGINES), default="fastbfs")
    run.add_argument("--algorithm", choices=["bfs", "wcc", "sssp"],
                     default="bfs")
    run.add_argument("--max-weight", type=int, default=8,
                     help="sssp: synthetic edge weights in [1, max]")
    run.add_argument("--root", type=int, default=None,
                     help="BFS root (default: highest-out-degree vertex)")
    run.add_argument("--roots", type=int, nargs="+", default=None,
                     help="multi-source traversal: start from all of these")
    run.add_argument("--validate", action="store_true",
                     help="validate the BFS tree against the in-memory reference")
    run.add_argument("--verbose", action="store_true",
                     help="print the per-iteration breakdown")
    _add_machine_args(run)
    _add_obs_args(run)

    batch = sub.add_parser(
        "batch",
        help="stage a graph once and run one BFS query per root",
    )
    _add_input_args(batch)
    batch.add_argument("--engine", choices=list(ENGINES), default="fastbfs")
    batch.add_argument("--roots", type=int, nargs="+", required=True,
                       help="one BFS query is run per root")
    batch.add_argument("--batch", action="store_true",
                       help="MS-BFS batched scheduling: advance up to 64 "
                            "queries per shared edge scan (bit-identical "
                            "per-query results; see docs/batched_bfs.md)")
    batch.add_argument("--verbose", action="store_true",
                       help="print each query's per-iteration breakdown")
    _add_machine_args(batch)
    _add_obs_args(batch)

    cmp_ = sub.add_parser("compare", help="compare all engines on one graph")
    _add_input_args(cmp_)
    cmp_.add_argument("--root", type=int, default=None)
    _add_machine_args(cmp_)

    prof = sub.add_parser(
        "profile",
        help="analyze a span trace (or print the BFS convergence profile)",
    )
    prof.add_argument(
        "trace", nargs="?", default=None,
        help="span-trace JSONL (e.g. from 'run --trace'); omit to profile "
             "convergence of --graph/--dataset instead",
    )
    prof.add_argument("--width", type=int, default=100,
                      help="trace report width (columns)")
    prof.add_argument("--host", action="store_true",
                      help="append the dual-clock host-cost section "
                           "(needs a trace recorded with --host-profile)")
    _add_input_args(prof, required=False)
    prof.add_argument("--root", type=int, default=None)

    bench = sub.add_parser(
        "bench",
        help="benchmark snapshots (BENCH_<seq>.json) and the regression gate",
    )
    bsub = bench.add_subparsers(dest="bench_command", required=True)
    brun = bsub.add_parser("run", help="collect a new snapshot file")
    brun.add_argument("--dir", default=".", dest="bench_dir",
                      help="directory holding BENCH_*.json (default: .)")
    brun.add_argument("--scale-divisor", type=int, default=None,
                      help="scale divisor (default: REPRO_SCALE_DIVISOR)")
    brun.add_argument("--seed", type=int, default=1)
    bcmp = bsub.add_parser(
        "compare",
        help="diff the two newest snapshots; exit 1 on regression",
    )
    bcmp.add_argument("--dir", default=".", dest="bench_dir",
                      help="directory holding BENCH_*.json (default: .)")

    chaos = sub.add_parser(
        "chaos",
        help="sweep seeded fault schedules; exit 1 on any violation",
    )
    chaos.add_argument(
        "--profile", choices=["smoke", "full", "serve"], default="smoke",
        help="sweep size: smoke (CI gate), full (acceptance, >=50 seeds) "
             "or serve (live GraphService under seeded faults)",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="master seed; trials derive their schedules from it")
    chaos.add_argument("--trials", type=int, default=None,
                       help="override the profile's trial count")
    chaos.add_argument("--verbose", action="store_true",
                       help="print every trial, not just failures")

    sub.add_parser("datasets", help="list the Table II dataset registry")

    lint_p = sub.add_parser(
        "lint",
        help="repo-specific per-file lint pass (rules FB1xx)",
    )
    _add_report_args(lint_p)
    an = sub.add_parser(
        "analyze",
        help="whole-program effect analyzer (rules FB2xx)",
    )
    _add_report_args(an)
    an.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of intentionally-accepted findings "
             "(default: analyzer_baseline.json if present)",
    )
    an.add_argument(
        "--effects", action="store_true",
        help="print the inferred per-function effect table and exit",
    )

    gantt = sub.add_parser(
        "gantt",
        help="run one BFS with request tracing and draw the device Gantt",
    )
    _add_input_args(gantt)
    gantt.add_argument("--engine", choices=list(ENGINES), default="fastbfs")
    gantt.add_argument("--root", type=int, default=None)
    gantt.add_argument("--width", type=int, default=100)
    _add_machine_args(gantt)

    shapes = sub.add_parser(
        "shapes",
        help="run the executable shape claims (the EXPERIMENTS scoreboard)",
    )
    shapes.add_argument("--divisor", type=int, default=1024,
                        help="scale divisor (default 1024 for speed)")
    shapes.add_argument("--datasets", nargs="*", default=["rmat25"])

    serve_p = sub.add_parser(
        "serve",
        help="boot the long-lived graph query service (docs/serving.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8080,
                         help="bind port; 0 picks an ephemeral port")
    serve_p.add_argument(
        "--warmup", nargs="*", default=[], metavar="SPEC",
        help="graph specs staged at boot: a dataset name ('rmat22'), a "
             "generator spec ('rmat:scale=12,edge_factor=8,seed=7'), or "
             "'name@spec' to alias",
    )
    serve_p.add_argument("--engine", choices=["fastbfs", "x-stream"],
                         default="fastbfs",
                         help="engine staged artifacts are built for")
    serve_p.add_argument("--capacity", type=int, default=128,
                         help="per-graph admission queue capacity")
    serve_p.add_argument("--max-graphs", type=int, default=4,
                         help="artifact registry LRU size")
    serve_p.add_argument(
        "--fault-profile", choices=["transient", "crashy", "hostile"],
        default=None, metavar="NAME",
        help="attach a seeded serve fault plan to every registered "
             "graph's machine (transient | crashy | hostile; see "
             "docs/serving.md#serving-under-faults)",
    )
    serve_p.add_argument("--fault-seed", type=int, default=0,
                         help="seed the --fault-profile plan is drawn with")
    serve_p.add_argument(
        "--default-deadline-ms", type=float, default=None, metavar="MS",
        help="server-wide per-request deadline; expired requests get "
             "typed 504s (default: no deadline)",
    )
    serve_p.add_argument("--flush-retries", type=int, default=2,
                         help="batched flush attempts before the serial "
                              "fallback (default 2)")

    top = sub.add_parser(
        "top",
        help="live per-graph view of a running service (/debug/timeseries)",
    )
    top.add_argument("--url", default="http://127.0.0.1:8080",
                     help="service base URL (default http://127.0.0.1:8080)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="poll interval in seconds (default 2)")
    top.add_argument("--once", action="store_true",
                     help="print a single sample and exit (CI mode)")

    rep = sub.add_parser(
        "reproduce",
        help="run the paper's experiments and write a markdown report",
    )
    rep.add_argument("--figures", nargs="*", default=None,
                     help="subset, e.g. fig4 fig5 (default: all)")
    rep.add_argument("--datasets", nargs="*", default=None,
                     help="subset of the big datasets (default: all four)")
    rep.add_argument("--divisor", type=int, default=None,
                     help="scale divisor override (default: env or 256)")
    rep.add_argument("--output", default=None,
                     help="write the report here (default: stdout)")
    return parser


def _add_input_args(p: argparse.ArgumentParser, required: bool = True) -> None:
    group = p.add_mutually_exclusive_group(required=required)
    group.add_argument("--graph", help="path to a binary edge-list file")
    group.add_argument("--dataset", choices=sorted(DATASETS),
                       help="Table II dataset stand-in")
    p.add_argument("--seed", type=int, default=1)


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--memory", default="4GB",
                   help="paper-scale memory budget (scaled by the divisor)")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--disks", type=int, default=1)
    p.add_argument("--disk-kind", choices=["hdd", "ssd"], default="hdd")
    p.add_argument("--threads", type=int, default=4)


def _add_report_args(p: argparse.ArgumentParser) -> None:
    """Arguments shared by the ``lint`` and ``analyze`` report CLIs."""
    from repro.tooling.report import OUTPUT_FORMATS

    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to check (default: src/repro)")
    p.add_argument("--format", choices=OUTPUT_FORMATS, default="text",
                   dest="fmt", help="report format (default: text)")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="write the report to this file instead of stdout")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue")


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write the span trace as JSONL (repro.obs)")
    p.add_argument("--metrics", metavar="PATH", default=None,
                   help="write a Prometheus-style counter snapshot")
    p.add_argument("--host-profile", action="store_true",
                   help="bind the host wall clock to the tracer so spans "
                        "carry host stamps ('profile --host' reads them; "
                        "simulated results are unaffected)")


def _obs_attach(machine: Machine, args: argparse.Namespace) -> None:
    """Install a tracer before the run when ``--trace``/``--host-profile``
    was given; ``--host-profile`` additionally binds the host clock."""
    host_profile = getattr(args, "host_profile", False)
    if getattr(args, "trace", None) is not None or host_profile:
        from repro.obs import Tracer

        machine.attach_tracer(Tracer())
    if host_profile:
        from repro.obs import HOST_CLOCK

        machine.tracer.bind_host_clock(HOST_CLOCK)


def _obs_export(machine: Machine, result, args: argparse.Namespace) -> None:
    """Write ``--trace``/``--metrics`` exports after the run, if requested."""
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path is None and metrics_path is None:
        return
    export_observability(machine, result, trace_path, metrics_path)
    if trace_path is not None:
        print(f"trace: {len(machine.tracer.spans)} spans -> {trace_path}")
    if metrics_path is not None:
        print(f"metrics: {len(result.metrics)} series -> {metrics_path}")


def _load_input(args: argparse.Namespace) -> Graph:
    if args.graph:
        return load_graph(args.graph)
    return build_dataset(args.dataset, seed=args.seed)


def _machine(args: argparse.Namespace) -> Machine:
    return scaled_machine(
        memory=args.memory,
        cores=args.cores,
        num_disks=args.disks,
        disk_kind=args.disk_kind,
    )


def _engine(name: str, args: argparse.Namespace) -> AnyEngine:
    if name == "graphchi":
        return make_engine(name, scaled_graphchi_config(threads=args.threads))
    if name == "fastbfs":
        return make_engine(name, scaled_fastbfs_config(threads=args.threads))
    return make_engine(name, scaled_engine_config(threads=args.threads))


def _root(args: argparse.Namespace, graph: Graph) -> int:
    return args.root if args.root is not None else default_root(graph)


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "rmat":
        g = rmat_graph(scale=args.scale, edge_factor=args.edge_factor,
                       seed=args.seed)
    elif args.kind == "powerlaw":
        g = powerlaw_graph(args.vertices, args.edges, out_exponent=2.0,
                           seed=args.seed)
    elif args.kind == "random":
        g = random_graph(args.vertices, args.edges, seed=args.seed)
    elif args.kind == "grid":
        g = grid_graph(args.width, args.height)
    else:
        g = build_dataset(args.dataset, seed=args.seed)
    save_graph(g, args.output)
    print(f"wrote {g!r} -> {args.output} (+ .json config)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    graph = _load_input(args)
    machine = _machine(args)
    _obs_attach(machine, args)
    engine = _engine(args.engine, args)

    def run_engine(**kwargs):
        result = engine.run(graph, machine, **kwargs)
        _obs_export(machine, result, args)
        return result

    if args.algorithm in ("wcc", "sssp"):
        if args.engine == "graphchi" and args.algorithm == "sssp":
            print("error: the GraphChi baseline implements bfs and wcc only",
                  file=sys.stderr)
            return 2
        if args.algorithm == "wcc":
            if args.engine == "graphchi":
                result = run_engine(algorithm="wcc")
            else:
                result = run_engine(algorithm=WCCAlgorithm(), root=0)
            labels = result.output["label"]
            print(result.summary())
            print(f"components: {len(np.unique(labels)):,}")
            return 0
        from repro.algorithms.sssp import (
            UNREACHED,
            WeightedSSSPAlgorithm,
            hash_weights,
        )

        root = _root(args, graph)
        result = run_engine(
            algorithm=WeightedSSSPAlgorithm(hash_weights(args.max_weight)),
            root=root,
        )
        dist = result.output["distance"]
        reached = dist != UNREACHED
        print(result.summary())
        print(f"root: {root}  reached: {int(reached.sum()):,}  "
              f"max distance: {int(dist[reached].max()) if reached.any() else 0}")
        return 0
    if args.roots is not None:
        if args.validate:
            print("error: --validate needs a single --root traversal",
                  file=sys.stderr)
            return 2
        result = run_engine(roots=args.roots)
        print(result.summary())
        print(f"roots: {args.roots}  visited: {(result.levels >= 0).sum():,} "
              f"of {graph.num_vertices:,}  depth: {result.levels.max()}")
        print(f"TEPS: {teps(graph, result.levels, result.execution_time):,.0f}")
        if args.verbose:
            print()
            print(result.iteration_table())
        return 0
    root = _root(args, graph)
    result = run_engine(root=root)
    print(result.summary())
    print(f"root: {root}  visited: {(result.levels >= 0).sum():,} "
          f"of {graph.num_vertices:,}  depth: {result.levels.max()}")
    print(f"TEPS: {teps(graph, result.levels, result.execution_time):,.0f}")
    if args.verbose:
        print()
        print(result.iteration_table())
    if args.validate:
        from repro.algorithms.reference import bfs_levels

        report = validate_bfs_result(
            graph, root, result.levels, result.parents, bfs_levels(graph, root)
        )
        if report.ok:
            print("validation: OK (Graph500 rules + reference levels)")
        else:
            print(f"validation: FAILED — {report.errors}", file=sys.stderr)
            return 1
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    graph = _load_input(args)
    machine = _machine(args)
    _obs_attach(machine, args)
    engine = _engine(args.engine, args)
    mode = "batched" if args.batch else "serial"
    batch = engine.run_many(graph, machine, roots=args.roots, mode=mode)
    _obs_export(machine, batch, args)
    rows: List[List[object]] = [
        [
            "staging",
            "-",
            format_seconds(batch.staging_time),
            format_bytes(batch.staging_report.bytes_total),
            "-",
            "-",
        ]
    ]
    for i, q in enumerate(batch.queries):
        rows.append(
            [
                f"query {i}",
                args.roots[i],
                format_seconds(q.execution_time),
                format_bytes(q.report.bytes_total),
                f"{(q.levels >= 0).sum():,}",
                q.num_iterations,
            ]
        )
    print(format_table(
        ["phase", "root", "time", "I/O", "visited", "iterations"],
        rows,
        title=f"{graph.name}: {batch.num_queries} queries on {args.engine}, "
              f"staged once",
    ))
    print(f"\ntotal: {format_seconds(batch.total_time)}  "
          f"amortized/query: {format_seconds(batch.amortized_time)}  "
          f"(staging amortized to "
          f"{format_seconds(batch.staging_time / batch.num_queries)}/query)")
    if batch.mode == "batched":
        print(f"batched: {len(batch.batch_times)} shared-scan batch(es), "
              f"{batch.edges_scanned:,} edges scanned "
              f"({batch.edge_scans_per_query:,.0f}/query amortized)")
    elif args.batch:
        print("batched mode unavailable for this engine/algorithm; "
              "ran serial fallback")
    if args.verbose:
        for i, q in enumerate(batch.queries):
            print(f"\nquery {i} (root {args.roots[i]}):")
            print(q.iteration_table())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_input(args)
    root = _root(args, graph)
    rows: List[List[object]] = []
    times = {}
    for name in ("graphchi", "x-stream", "fastbfs"):
        machine = _machine(args)
        engine = _engine(name, args)
        result = engine.run(graph, machine, root=root)
        times[name] = result.execution_time
        rows.append(
            [
                name,
                format_seconds(result.execution_time),
                format_bytes(result.report.bytes_read),
                format_bytes(result.report.bytes_total),
                f"{result.report.iowait_ratio:.1%}",
                result.num_iterations,
            ]
        )
    print(format_table(
        ["engine", "time", "input", "total I/O", "iowait", "iterations"],
        rows,
        title=f"{graph.name}: root {root}, {args.disks}x{args.disk_kind}, "
              f"{args.memory} memory (paper scale)",
    ))
    print(f"\nFastBFS speedup vs X-Stream: "
          f"{times['x-stream'] / times['fastbfs']:.2f}x (paper: 1.6-2.1x HDD)")
    print(f"FastBFS speedup vs GraphChi: "
          f"{times['graphchi'] / times['fastbfs']:.2f}x (paper: 2.4-3.9x HDD)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    if args.trace is not None:
        from repro.api import profile_trace

        prof = profile_trace(args.trace)
        print(prof.report_text(width=args.width, host=args.host))
        return 0
    if args.graph is None and args.dataset is None:
        print(
            "error: give a span-trace JSONL path, or --graph/--dataset for "
            "the convergence profile",
            file=sys.stderr,
        )
        return 2
    graph = _load_input(args)
    root = _root(args, graph)
    prof = level_profile(graph, root)
    rows = []
    for level, (frontier, scattered, remaining) in enumerate(
        zip(prof.frontier_sizes, prof.scatter_edges, prof.remaining_edges)
    ):
        rows.append(
            [
                level,
                frontier,
                scattered,
                remaining,
                f"{remaining / max(prof.num_edges, 1):.1%}",
            ]
        )
    print(format_table(
        ["level", "frontier", "edges scattered", "stay list", "useful"],
        rows,
        title=f"{graph.name}: convergence from root {root} (Fig. 1 data)",
    ))
    saved = 1 - prof.total_scanned_with_trimming() / max(
        prof.total_scanned_without_trimming(), 1
    )
    print(f"\nedge scans saved by trimming: {saved:.1%}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        collect_snapshot,
        compare_latest,
        snapshot_files,
        write_snapshot,
    )

    if args.bench_command == "run":
        snapshot = collect_snapshot(divisor=args.scale_divisor, seed=args.seed)
        path = write_snapshot(snapshot, root=args.bench_dir)
        scenarios = snapshot["scenarios"]
        print(f"wrote {path} ({len(scenarios)} scenarios, "
              f"divisor {snapshot['divisor']})")
        for name in sorted(scenarios):
            doc = scenarios[name]
            if doc.get("kind") == "multi-query":
                print(f"  {name}: {format_seconds(doc['batched_time'])} "
                      f"batched, {doc['queries']} queries, edge-scan "
                      f"amortization {doc['edge_scan_amortization']:.1%}")
            else:
                print(f"  {name}: {format_seconds(doc['execution_time'])}, "
                      f"{format_bytes(doc['total_bytes'])} total I/O, "
                      f"{doc['iterations']} iterations")
        return 0
    files = snapshot_files(args.bench_dir)
    if len(files) < 2:
        print(
            f"bench compare: found {len(files)} snapshot(s) in "
            f"{args.bench_dir!r}; nothing to compare",
            file=sys.stderr,
        )
        return 2
    comparison = compare_latest(args.bench_dir)
    print(comparison.render())
    return 0 if comparison.ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.tooling.chaos import run_chaos

    report = run_chaos(
        profile=args.profile, seed=args.seed, trials=args.trials
    )
    print(report.render())
    if args.verbose:
        for trial in report.trials:
            print("  " + trial.describe())
    if not report.ok:
        print(
            f"chaos: {len(report.violations)} violation(s) — a fault "
            "schedule produced wrong output or an untyped failure",
            file=sys.stderr,
        )
        return 1
    print("chaos: every surviving run matched the reference bit-for-bit")
    return 0


def cmd_datasets(_args: argparse.Namespace) -> int:
    rows = [
        [
            name,
            f"{spec.paper_vertices/1e6:.1f}M",
            f"{spec.paper_edges/1e6:.0f}M",
            format_bytes(spec.paper_size_bytes),
            spec.description,
        ]
        for name, spec in DATASETS.items()
    ]
    print(format_table(
        ["name", "vertices", "edges", "size", "description"],
        rows,
        title="Table II datasets (paper scale; stand-ins are generated "
              "at 1/REPRO_SCALE_DIVISOR)",
    ))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.tooling import lint

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    argv += ["--format", args.fmt]
    if args.output is not None:
        argv += ["--output", args.output]
    return lint.main(argv)


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.tooling.analyzer import main as analyzer_main

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    argv += ["--format", args.fmt]
    if args.output is not None:
        argv += ["--output", args.output]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.effects:
        argv.append("--effects")
    return analyzer_main(argv)


def cmd_gantt(args: argparse.Namespace) -> int:
    from repro.sim.trace import render_gantt

    graph = _load_input(args)
    machine = scaled_machine(
        memory=args.memory,
        cores=args.cores,
        num_disks=args.disks,
        disk_kind=args.disk_kind,
        trace=True,
    )
    engine = _engine(args.engine, args)
    if args.engine == "fastbfs" and args.disks > 1:
        engine = make_engine(
            "fastbfs", scaled_fastbfs_config(threads=args.threads,
                                             rotate_streams=True)
        )
    root = _root(args, graph)
    result = engine.run(graph, machine, root=root)
    print(result.summary())
    print()
    print(render_gantt(machine, width=args.width))
    return 0


def cmd_shapes(args: argparse.Namespace) -> int:
    from repro.analysis.harness import ExperimentRunner
    from repro.analysis.shapes import check_all, scoreboard

    results = check_all(
        ExperimentRunner(divisor=args.divisor), datasets=args.datasets
    )
    print(scoreboard(results))
    failed = [r for r in results if not r.passed]
    print(f"\n{len(results) - len(failed)}/{len(results)} claims hold")
    return 1 if failed else 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.analysis.harness import ExperimentRunner
    from repro.analysis.report import ALL_FIGURES, build_report

    runner = ExperimentRunner(divisor=args.divisor)
    report = build_report(
        runner,
        figures=args.figures if args.figures else ALL_FIGURES,
        datasets=args.datasets,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote report to {args.output}")
    else:
        print(report)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import serve

    service = serve(
        host=args.host,
        port=args.port,
        warmup=args.warmup,
        engine=args.engine,
        capacity=args.capacity,
        max_graphs=args.max_graphs,
        block=False,
        fault_profile=args.fault_profile,
        fault_seed=args.fault_seed,
        default_deadline_ms=args.default_deadline_ms,
        flush_retries=args.flush_retries,
    )
    graphs = ", ".join(sorted(service.registry.names())) or "(none)"
    print(f"serving on {service.address}  graphs: {graphs}")
    if args.fault_profile:
        print(f"fault profile: {args.fault_profile} (seed {args.fault_seed})")
    print("endpoints: /healthz /metrics /graphs "
          "/graphs/<name>/{bfs,sssp,pagerank,stats}")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("draining...")
    finally:
        service.shutdown()
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    import json
    import time  # wall clock for the poll cadence only — never simulated
    from urllib.error import URLError
    from urllib.request import urlopen

    base = args.url.rstrip("/")
    url = base + "/debug/timeseries?windows=1"
    while True:
        try:
            with urlopen(url, timeout=10) as resp:
                doc = json.loads(resp.read().decode("utf-8"))
        except (URLError, OSError, ValueError) as exc:
            print(f"top: cannot read {url}: {exc}", file=sys.stderr)
            return 1
        windows = doc.get("windows", [])
        graphs = windows[-1]["graphs"] if windows else {}
        rows: List[List[object]] = []
        for name in sorted(graphs):
            g = graphs[name]
            wait, svc = g["queue_wait"], g["service_time"]
            rows.append([
                name,
                f"{g['rps']:.1f}",
                g["requests"],
                g["errors"],
                f"{g['queue_depth_last']}/{g['queue_depth_max']}",
                f"{wait['p50'] * 1e3:.2f}",
                f"{wait['p95'] * 1e3:.2f}",
                f"{wait['p99'] * 1e3:.2f}",
                format_seconds(svc["p50"]),
                format_seconds(svc["p99"]),
            ])
        title = (f"{base}  window {doc['window_seconds']:g}s  "
                 f"({len(doc.get('windows', []))} of {doc['capacity']} kept)")
        if rows:
            print(format_table(
                ["graph", "rps", "req", "err", "depth",
                 "wait p50 ms", "p95 ms", "p99 ms",
                 "sim p50", "sim p99"],
                rows,
                title=title,
            ))
        else:
            print(f"{title}\n  (no requests in the current window)")
        if args.once:
            return 0
        time.sleep(args.interval)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "run": cmd_run,
        "batch": cmd_batch,
        "compare": cmd_compare,
        "profile": cmd_profile,
        "bench": cmd_bench,
        "chaos": cmd_chaos,
        "datasets": cmd_datasets,
        "lint": cmd_lint,
        "analyze": cmd_analyze,
        "gantt": cmd_gantt,
        "shapes": cmd_shapes,
        "serve": cmd_serve,
        "top": cmd_top,
        "reproduce": cmd_reproduce,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
