"""The simulated single server: clock, devices, RAM, memory budget, cores.

One :class:`Machine` corresponds to one engine execution on the paper's test
bed.  Engines get their clock, their disks, a RAM pseudo-device (for the
in-memory processing mode of Fig. 9), and the working-memory budget that
drives partitioning decisions.  :meth:`Machine.report` snapshots everything
the evaluation section measures: execution time, per-device byte counts,
iowait time and ratio, and the compute breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.obs.tracer import NULL_TRACER
from repro.sim.clock import SimClock
from repro.storage.device import Device, DeviceSpec
from repro.storage.vfs import VFS
from repro.utils.units import format_bytes, format_seconds, parse_bytes


@dataclass
class DeviceReport:
    """I/O accounting for one device over a run."""

    name: str
    kind: str
    bytes_read: int
    bytes_written: int
    seek_count: int
    busy_time: float
    #: (stream role, "read"/"write") -> bytes, e.g. ("stay", "write").
    bytes_by_role: Dict[tuple, int] = field(default_factory=dict)

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written


@dataclass
class IOReport:
    """Everything the paper's evaluation measures, for one engine run."""

    execution_time: float
    compute_time: float
    iowait_time: float
    compute_breakdown: Dict[str, float] = field(default_factory=dict)
    devices: List[DeviceReport] = field(default_factory=list)

    @property
    def iowait_ratio(self) -> float:
        if self.execution_time <= 0:
            return 0.0
        return self.iowait_time / self.execution_time

    def _disk_devices(self) -> List[DeviceReport]:
        return [d for d in self.devices if d.kind != "ram"]

    @property
    def bytes_read(self) -> int:
        """Bytes read from persistent devices (the paper's 'input data amount')."""
        return sum(d.bytes_read for d in self._disk_devices())

    @property
    def bytes_written(self) -> int:
        return sum(d.bytes_written for d in self._disk_devices())

    @property
    def bytes_total(self) -> int:
        """Overall data amount moved to/from persistent devices."""
        return self.bytes_read + self.bytes_written

    def bytes_by_role(self) -> Dict[tuple, int]:
        """Aggregate (stream role, kind) -> bytes over persistent devices.

        Roles are stream-group prefixes: ``edges``, ``updates``, ``stay``,
        ``vertices``, ``input``, ``partition`` — the attribution behind the
        Fig. 5 discussion of where FastBFS's savings and extra writes live.
        """
        totals: Dict[tuple, int] = {}
        for dev in self._disk_devices():
            for key, value in dev.bytes_by_role.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def minus(self, baseline: "IOReport") -> "IOReport":
        """This report with ``baseline``'s counters subtracted.

        The per-query accounting of the session protocol: ``baseline`` is
        the machine's report at session start (e.g. right after staging)
        and the difference is what the query itself cost.  Devices are
        matched by name; both reports must come from the same machine.
        """
        base_devs = {d.name: d for d in baseline.devices}
        devices = []
        for dev in self.devices:
            base = base_devs.get(dev.name)
            if base is None:
                devices.append(dev)
                continue
            roles = {
                key: value - base.bytes_by_role.get(key, 0)
                for key, value in dev.bytes_by_role.items()
            }
            roles = {k: v for k, v in roles.items() if v}
            devices.append(
                DeviceReport(
                    name=dev.name,
                    kind=dev.kind,
                    bytes_read=dev.bytes_read - base.bytes_read,
                    bytes_written=dev.bytes_written - base.bytes_written,
                    seek_count=dev.seek_count - base.seek_count,
                    busy_time=dev.busy_time - base.busy_time,
                    bytes_by_role=roles,
                )
            )
        breakdown = {
            key: value - baseline.compute_breakdown.get(key, 0.0)
            for key, value in self.compute_breakdown.items()
        }
        breakdown = {k: v for k, v in breakdown.items() if v}
        return IOReport(
            execution_time=self.execution_time - baseline.execution_time,
            compute_time=self.compute_time - baseline.compute_time,
            iowait_time=self.iowait_time - baseline.iowait_time,
            compute_breakdown=breakdown,
            devices=devices,
        )

    def to_dict(self) -> Dict:
        """JSON-safe dict (role tuples become ``"role/kind"`` strings)."""
        return {
            "execution_time": self.execution_time,
            "compute_time": self.compute_time,
            "iowait_time": self.iowait_time,
            "compute_breakdown": dict(self.compute_breakdown),
            "devices": [
                {
                    "name": d.name,
                    "kind": d.kind,
                    "bytes_read": d.bytes_read,
                    "bytes_written": d.bytes_written,
                    "seek_count": d.seek_count,
                    "busy_time": d.busy_time,
                    "bytes_by_role": {
                        f"{role}/{kind}": value
                        for (role, kind), value in sorted(d.bytes_by_role.items())
                    },
                }
                for d in self.devices
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "IOReport":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        devices = [
            DeviceReport(
                name=d["name"],
                kind=d["kind"],
                bytes_read=int(d["bytes_read"]),
                bytes_written=int(d["bytes_written"]),
                seek_count=int(d["seek_count"]),
                busy_time=float(d["busy_time"]),
                bytes_by_role={
                    tuple(key.split("/", 1)): int(value)
                    for key, value in d.get("bytes_by_role", {}).items()
                },
            )
            for d in data.get("devices", [])
        ]
        return cls(
            execution_time=float(data["execution_time"]),
            compute_time=float(data["compute_time"]),
            iowait_time=float(data["iowait_time"]),
            compute_breakdown=dict(data.get("compute_breakdown", {})),
            devices=devices,
        )

    def summary(self) -> str:
        lines = [
            f"time={format_seconds(self.execution_time)} "
            f"(compute={format_seconds(self.compute_time)}, "
            f"iowait={format_seconds(self.iowait_time)}, "
            f"iowait_ratio={self.iowait_ratio:.1%})",
            f"read={format_bytes(self.bytes_read)} "
            f"written={format_bytes(self.bytes_written)}",
        ]
        for d in self.devices:
            lines.append(
                f"  {d.name}[{d.kind}]: read={format_bytes(d.bytes_read)} "
                f"written={format_bytes(d.bytes_written)} seeks={d.seek_count} "
                f"busy={format_seconds(d.busy_time)}"
            )
        return "\n".join(lines)


def merge_reports(reports: Sequence[IOReport]) -> IOReport:
    """Sum a sequence of per-phase reports into one cumulative report.

    Devices are matched by name (byte counts, seeks, busy time and
    ``bytes_by_role`` all add); times and compute breakdowns add.  This is
    the inverse direction of :meth:`IOReport.minus`: summing the staging
    report with every per-query report of a rewound machine reconstructs
    exactly what a counter registry fed the same parts saw — the identity
    the serving metrics endpoint relies on for exact reconciliation.
    """
    devices: Dict[str, DeviceReport] = {}
    order: List[str] = []
    execution = compute = iowait = 0.0
    breakdown: Dict[str, float] = {}
    for report in reports:
        execution += report.execution_time
        compute += report.compute_time
        iowait += report.iowait_time
        for key, value in report.compute_breakdown.items():
            breakdown[key] = breakdown.get(key, 0.0) + value
        for dev in report.devices:
            acc = devices.get(dev.name)
            if acc is None:
                devices[dev.name] = DeviceReport(
                    name=dev.name,
                    kind=dev.kind,
                    bytes_read=dev.bytes_read,
                    bytes_written=dev.bytes_written,
                    seek_count=dev.seek_count,
                    busy_time=dev.busy_time,
                    bytes_by_role=dict(dev.bytes_by_role),
                )
                order.append(dev.name)
            else:
                acc.bytes_read += dev.bytes_read
                acc.bytes_written += dev.bytes_written
                acc.seek_count += dev.seek_count
                acc.busy_time += dev.busy_time
                for key, value in dev.bytes_by_role.items():
                    acc.bytes_by_role[key] = (
                        acc.bytes_by_role.get(key, 0) + value
                    )
    return IOReport(
        execution_time=execution,
        compute_time=compute,
        iowait_time=iowait,
        compute_breakdown=breakdown,
        devices=[devices[name] for name in order],
    )


@dataclass
class MachineCheckpoint:
    """Opaque snapshot of a machine's mutable simulation state.

    Produced by :meth:`Machine.checkpoint` and consumed by
    :meth:`Machine.restore` — the protocol that lets one machine serve many
    query sessions against a shared staged artifact instead of demanding a
    fresh machine per traversal.
    """

    clock_state: object
    vfs_state: object
    device_states: List[object] = field(default_factory=list)
    cache_state: Optional[object] = None
    fault_state: Optional[object] = None


class Machine:
    """A simulated commodity server.

    Historically one machine served exactly one engine run ("build a fresh
    one per run"); the :meth:`checkpoint`/:meth:`restore` protocol relaxes
    that into explicit snapshots, so a batch front door can stage a graph
    once and rewind the clock/VFS/device state between queries.
    """

    def __init__(
        self,
        disks: Sequence[DeviceSpec],
        memory: Union[int, str] = "4GB",
        cores: int = 4,
        trace: bool = False,
        page_cache: Union[int, str, None] = None,
        sanitize: bool = False,
        fault_plan=None,
    ) -> None:
        if not disks:
            raise ConfigError("a machine needs at least one persistent disk")
        if cores < 1:
            raise ConfigError(f"cores must be >= 1, got {cores}")
        names = [spec.name for spec in disks]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate device names: {names}")
        self.clock = SimClock()
        self.disks: List[Device] = [Device(spec) for spec in disks]
        self.ram = Device(DeviceSpec.ram())
        self.trace = trace
        if trace:
            for dev in [*self.disks, self.ram]:
                dev.timeline.keep_trace = True
        self.page_cache = None
        if page_cache is not None:
            from repro.storage.pagecache import PageCache

            cache_bytes = parse_bytes(page_cache)
            if cache_bytes > 0:
                # One shared cache across all disks, like the OS's.
                self.page_cache = PageCache(cache_bytes)
                for dev in self.disks:
                    dev.cache = self.page_cache
        self.memory_bytes = parse_bytes(memory)
        if self.memory_bytes <= 0:
            raise ConfigError("memory budget must be positive")
        self.cores = cores
        self.vfs = VFS()
        self._disk_specs = list(disks)
        self._sanitize = sanitize
        #: Deterministic fault schedule (see repro.storage.faults), if any.
        self.fault_plan = fault_plan
        self.fault_injector = None
        if fault_plan is not None:
            from repro.storage.faults import FaultInjector

            # One injector shared by the persistent disks; the RAM
            # pseudo-device is exempt (faults model persistent media).
            self.fault_injector = FaultInjector(fault_plan, clock=self.clock)
            for dev in self.disks:
                dev.injector = self.fault_injector
        #: Span tracer (repro.obs); the shared no-op unless one is attached.
        self.tracer = NULL_TRACER
        #: Installed runtime checker, if any (see repro.tooling.sanitizer).
        self.sanitizer = None
        if sanitize:
            from repro.tooling.sanitizer import Sanitizer

            Sanitizer().install(self)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def commodity_server(
        memory: Union[int, str] = "4GB",
        cores: int = 4,
        num_disks: int = 1,
        disk_kind: str = "hdd",
        sanitize: bool = False,
        fault_plan=None,
    ) -> "Machine":
        """The paper's test bed: Xeon X5472-class box, 4GB working memory.

        ``disk_kind`` is ``"hdd"`` or ``"ssd"``; ``num_disks`` is 1 or 2 in
        the paper's experiments but any positive count is accepted.
        """
        if disk_kind == "hdd":
            specs = [DeviceSpec.hdd(f"hdd{i}") for i in range(num_disks)]
        elif disk_kind == "ssd":
            specs = [DeviceSpec.ssd(f"ssd{i}") for i in range(num_disks)]
        else:
            raise ConfigError(f"unknown disk kind {disk_kind!r}")
        return Machine(
            specs, memory=memory, cores=cores, sanitize=sanitize,
            fault_plan=fault_plan,
        )

    def fresh(self) -> "Machine":
        """A new machine with identical hardware and a zeroed clock/VFS.

        A fault plan carries over as a *fresh* injector: same seed, same
        schedule, replayed from the beginning.
        """
        return Machine(
            self._disk_specs,
            memory=self.memory_bytes,
            cores=self.cores,
            sanitize=self._sanitize,
            fault_plan=self.fault_plan,
        )

    # ------------------------------------------------------------------
    # device access
    # ------------------------------------------------------------------
    @property
    def num_disks(self) -> int:
        return len(self.disks)

    def disk(self, index: int) -> Device:
        """Persistent disk by index; out-of-range indices clamp to the last
        disk so single-disk machines accept configs written for two."""
        if index < 0:
            raise ConfigError(f"disk index must be >= 0, got {index}")
        return self.disks[min(index, len(self.disks) - 1)]

    def all_devices(self) -> List[Device]:
        return [*self.disks, self.ram]

    # ------------------------------------------------------------------
    # observability (see repro.obs)
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> "Machine":
        """Install a span tracer and bind it to this machine's clock.

        The tracer is the explicit observability handle engines reach as
        ``machine.tracer`` — there is no global registry.  Pass the shared
        ``NULL_TRACER`` (or a fresh ``NullTracer``) to detach.
        """
        self.tracer = tracer.bind_clock(self.clock)
        if self.fault_injector is not None:
            self.fault_injector.tracer = self.tracer
        return self

    def counters(self):
        """Sample every counter source into a fresh ``CounterRegistry``."""
        from repro.obs.counters import CounterRegistry

        return CounterRegistry.from_machine(self)

    def attach_fault_plan(self, fault_plan) -> "Machine":
        """Install a fault schedule on a machine built without one.

        The serving registry's hook: graphs are staged on a *clean*
        machine (staging must stay deterministic and fault-free), then the
        plan is attached just before the post-staging checkpoint is taken
        — so every query replays under the schedule and the checkpoint
        carries the injector's initial state.  Call only at a quiescent
        point, before any checkpoint that should observe the injector;
        re-attaching replaces the previous injector wholesale.
        """
        if fault_plan is None:
            return self
        from repro.storage.faults import FaultInjector

        self.fault_plan = fault_plan
        self.fault_injector = FaultInjector(fault_plan, clock=self.clock)
        self.fault_injector.tracer = self.tracer
        for dev in self.disks:
            dev.injector = self.fault_injector
        return self

    # ------------------------------------------------------------------
    # checkpoint / restore (the query-session protocol)
    # ------------------------------------------------------------------
    def checkpoint(self) -> MachineCheckpoint:
        """Snapshot clock, VFS, devices and page cache.

        Take checkpoints only at a quiescent point — no device request may
        still be in flight (end > clock.now).  The engines' staging phase
        ends with exactly such a barrier.
        """
        return MachineCheckpoint(
            clock_state=self.clock.snapshot(),
            vfs_state=self.vfs.snapshot(),
            device_states=[dev.snapshot() for dev in self.all_devices()],
            cache_state=(
                self.page_cache.snapshot() if self.page_cache is not None else None
            ),
            fault_state=(
                self.fault_injector.snapshot()
                if self.fault_injector is not None
                else None
            ),
        )

    def restore(self, cp: MachineCheckpoint) -> None:
        """Roll the machine back to a checkpoint.

        Files created since the checkpoint are deleted, the clock and every
        device timeline rewind, and an installed sanitizer is told the
        rollback is sanctioned (so its monotonicity checker re-anchors).
        """
        self.clock.restore(cp.clock_state)
        self.vfs.restore(cp.vfs_state)
        for dev, state in zip(self.all_devices(), cp.device_states):
            dev.restore(state)
        if self.page_cache is not None and cp.cache_state is not None:
            self.page_cache.restore(cp.cache_state)
        if self.fault_injector is not None and cp.fault_state is not None:
            self.fault_injector.restore(cp.fault_state)
        if self.sanitizer is not None:
            self.sanitizer.notify_restore(self.clock.now)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> IOReport:
        now = self.clock.now
        return IOReport(
            execution_time=self.clock.elapsed,
            compute_time=self.clock.compute_time,
            iowait_time=self.clock.iowait_time,
            compute_breakdown=self.clock.compute_breakdown(),
            devices=[
                DeviceReport(
                    name=dev.name,
                    kind=dev.spec.kind,
                    bytes_read=dev.bytes_read,
                    bytes_written=dev.bytes_written,
                    seek_count=dev.seek_count,
                    busy_time=dev.busy_time_until(now),
                    bytes_by_role=dev.timeline.bytes_by_role(),
                )
                for dev in self.all_devices()
            ],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(d.spec.kind for d in self.disks)
        return (
            f"Machine(disks=[{kinds}], memory={format_bytes(self.memory_bytes)}, "
            f"cores={self.cores})"
        )
