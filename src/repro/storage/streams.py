"""Buffered sequential streams over virtual files.

These classes are where the data path (numpy record arrays) meets the time
path (device timelines + the engine clock):

* :class:`StreamReader` — iterate a file in buffer-sized views with a
  configurable prefetch depth.  With depth >= 2 the next buffer's read is in
  flight while the engine computes on the current one, which is exactly the
  edge-streaming pipeline X-Stream (and FastBFS) use to overlap I/O and
  compute.
* :class:`StreamWriter` — buffered appends whose flushes are queued on the
  device without blocking the engine; :meth:`StreamWriter.drain` is the
  barrier ("updates must be durable before the gather phase starts").
* :class:`AsyncStreamWriter` — the dedicated stay-list writer thread of
  FastBFS §III: a private pool of edge buffers, fire-and-forget flushes that
  only block when the pool is exhausted, a readiness query, and
  cancellation.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import IOFaultError, StorageError
from repro.sim.clock import SimClock
from repro.sim.timeline import ScheduledRequest
from repro.storage.faults import RetryPolicy, submit_with_retry
from repro.storage.vfs import VirtualFile


class StreamReader:
    """Sequential buffered reader with prefetch.

    Iterating yields zero-copy views of at most ``records_per_buffer``
    records.  Each view's read request was charged to the file's device; the
    engine clock blocks (iowait) until that request completes.
    """

    def __init__(
        self,
        clock: SimClock,
        file: VirtualFile,
        buffer_bytes: int,
        prefetch: int = 2,
        group: str = "",
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if buffer_bytes <= 0:
            raise StorageError(f"buffer_bytes must be positive, got {buffer_bytes}")
        if prefetch < 1:
            raise StorageError(f"prefetch depth must be >= 1, got {prefetch}")
        self.clock = clock
        self.file = file
        self.group = group or f"read:{file.name}"
        self.retry = retry
        self.prefetch = prefetch
        record_size = file.record_size
        self.records_per_buffer = (
            max(1, buffer_bytes // record_size) if record_size else 0
        )
        self._total = file.num_records
        self._next_submit = 0  # next record index to request
        self._pending: Deque[tuple] = deque()  # (request, start_record, count)
        self.buffers_read = 0

    def _fill(self) -> None:
        while len(self._pending) < self.prefetch and self._next_submit < self._total:
            count = min(self.records_per_buffer, self._total - self._next_submit)
            offset = self._next_submit * self.file.record_size
            req = submit_with_retry(
                self.clock,
                self.file,
                kind="read",
                nbytes=count * self.file.record_size,
                offset=offset,
                group=self.group,
                retry=self.retry,
            )
            self._pending.append((req, self._next_submit, count))
            self._next_submit += count

    def __iter__(self) -> Iterator[np.ndarray]:
        return self

    def __next__(self) -> np.ndarray:
        self._fill()
        if not self._pending:
            raise StopIteration
        req, start, count = self._pending.popleft()
        self.clock.wait_until(req.end)
        self._fill()  # keep the pipeline full while we go compute
        self.buffers_read += 1
        return self.file.read_records(start, count)


class StreamWriter:
    """Buffered appender; flushes are queued writes, ``drain()`` is a barrier."""

    def __init__(
        self,
        clock: SimClock,
        file: VirtualFile,
        buffer_bytes: int,
        group: str = "",
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if buffer_bytes <= 0:
            raise StorageError(f"buffer_bytes must be positive, got {buffer_bytes}")
        self.clock = clock
        self.file = file
        self.buffer_bytes = buffer_bytes
        self.group = group or f"write:{file.name}"
        self.retry = retry
        #: Simulated time the writer was opened (span anchoring only).
        self.opened_at = clock.now
        self._pending: List[np.ndarray] = []
        self._pending_bytes = 0
        self._requests: List[ScheduledRequest] = []
        self.records_written = 0
        self.flush_count = 0
        self.closed = False

    def append(self, arr: np.ndarray) -> None:
        if self.closed:
            raise StorageError(f"writer for {self.file.name!r} is closed")
        if len(arr) == 0:
            return
        self._pending.append(arr)
        self._pending_bytes += arr.nbytes
        self.records_written += len(arr)
        if self._pending_bytes >= self.buffer_bytes:
            self.flush()

    def flush(self) -> Optional[ScheduledRequest]:
        """Submit buffered records as one device write (non-blocking)."""
        if not self._pending:
            return None
        chunk = (
            self._pending[0]
            if len(self._pending) == 1
            else np.concatenate(self._pending)
        )
        offset = self.file.nbytes
        self._on_chunk(chunk, offset)
        self.file.append_records(chunk)
        req = self._submit(chunk.nbytes, offset)
        self._pending = []
        self._pending_bytes = 0
        self.flush_count += 1
        return req

    def _on_chunk(self, chunk: np.ndarray, offset: int) -> None:
        """Hook: called with each chunk about to be written (pre-submit).

        The stay writer overrides this to record per-chunk checksums of
        what was *sent*, so a torn write (which damages what *landed*) is
        detectable at swap-in.
        """

    def _submit(self, nbytes: int, offset: int) -> ScheduledRequest:
        req = submit_with_retry(
            self.clock,
            self.file,
            kind="write",
            nbytes=nbytes,
            offset=offset,
            group=self.group,
            retry=self.retry,
        )
        self._requests.append(req)
        if req.fault == "torn_write":
            # The device acknowledged the write but it did not land intact:
            # damage the stored copy so readers see what the medium holds.
            self.file.corrupt_at(offset)
        return req

    def drain(self) -> None:
        """Flush and block until every submitted write has completed."""
        self.flush()
        end = self.last_end
        if end is not None:
            self.clock.wait_until(end)

    @property
    def last_end(self) -> Optional[float]:
        """Completion time of the latest uncancelled write, if any."""
        ends = [r.end for r in self._requests if not r.cancelled]
        return max(ends) if ends else None

    def close(self, drain: bool = True) -> None:
        """Flush remaining records; optionally barrier; seal the file."""
        if self.closed:
            return
        if drain:
            self.drain()
        else:
            self.flush()
        self.closed = True
        self.file.seal()


class AsyncStreamWriter(StreamWriter):
    """Stay-list writer: private buffer pool, asynchronous flushes.

    The engine only blocks here when all ``num_buffers`` private buffers hold
    writes still in flight (paper §III condition 1).  Readiness of the whole
    file and cancellation of the not-yet-started tail are exposed for the
    cross-iteration swap logic (condition 2).

    Because a stay file is advisory (an optimization, never the only copy
    of the data), this writer is also where I/O faults degrade instead of
    propagate: a per-chunk CRC ledger detects torn writes at swap-in, and
    a write that keeps failing after retries flips :attr:`write_failed` —
    both degrade the swap to the previous edge file exactly like a
    cancellation.
    """

    def __init__(
        self,
        clock: SimClock,
        file: VirtualFile,
        buffer_bytes: int,
        num_buffers: int = 4,
        group: str = "",
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if num_buffers < 1:
            raise StorageError(f"num_buffers must be >= 1, got {num_buffers}")
        super().__init__(
            clock, file, buffer_bytes, group or f"stay:{file.name}", retry=retry
        )
        self.num_buffers = num_buffers
        self.pool_waits = 0  # times the engine stalled on buffer exhaustion
        self.cancelled = False
        #: Flipped when a flush keeps failing after retries; the manager
        #: treats a failed writer exactly like a cancellation candidate.
        self.write_failed = False
        self.write_failure: Optional[IOFaultError] = None
        # (offset, nbytes, crc32 of the bytes sent) per flushed chunk.
        self._chunk_sums: List[Tuple[int, int, int]] = []

    def _live_requests(self) -> List[ScheduledRequest]:
        now = self.clock.now
        return [r for r in self._requests if not r.cancelled and r.end > now]

    @property
    def buffers_in_flight(self) -> int:
        return len(self._live_requests())

    def append(self, arr: np.ndarray) -> None:
        if self.write_failed:
            # Degraded: the file will be discarded at swap time anyway, so
            # stop spending buffers and device bandwidth on it.
            return
        super().append(arr)

    def _on_chunk(self, chunk: np.ndarray, offset: int) -> None:
        self._chunk_sums.append(
            (offset, chunk.nbytes, zlib.crc32(chunk.view(np.uint8).tobytes()))
        )

    def _submit(self, nbytes: int, offset: int) -> ScheduledRequest:
        live = self._live_requests()
        if len(live) >= self.num_buffers:
            # All private buffers are tied to in-flight writes: wait for the
            # oldest to land (this is the only sync point in the fast path).
            self.pool_waits += 1
            self.clock.wait_until(min(r.end for r in live))
        try:
            return super()._submit(nbytes, offset)
        except IOFaultError as exc:
            # Stay data is never the only copy; a lost flush costs the
            # trimming opportunity, not correctness.  Record the failure
            # and hand back an already-dead pseudo-request so accounting
            # ignores it; the manager cancels the writer at swap time.
            self.write_failed = True
            self.write_failure = exc
            now = self.clock.now
            dead = ScheduledRequest(
                group=self.group, kind="write", nbytes=0,
                submit=now, service=0.0, start=now, end=now,
            )
            dead.cancelled = True
            return dead

    def verify_integrity(self) -> List[int]:
        """Re-checksum every flushed chunk; return offsets that mismatch.

        Compares the CRC of what each flush *sent* against the bytes the
        file holds now — a torn write shows up as exactly one damaged
        chunk.  An empty list means the file is intact.
        """
        bad: List[int] = []
        if not self._chunk_sums:
            return bad
        data = self.file.records().view(np.uint8)
        for offset, nbytes, crc in self._chunk_sums:
            stored = zlib.crc32(data[offset : offset + nbytes].tobytes())
            if stored != crc:
                bad.append(offset)
        return bad

    def ready_at(self) -> float:
        """Time at which every submitted write will have completed."""
        end = self.last_end
        return end if end is not None else self.clock.now

    def is_ready(self, grace: float = 0.0) -> bool:
        """Would the file be durable within ``grace`` seconds from now?"""
        return self.ready_at() <= self.clock.now + grace

    def cancel(self) -> int:
        """Abort the write-back: drop queued (unstarted) requests.

        In-flight requests finish (the head is already committed to them);
        their time and bytes stay charged — that is the cost the paper's
        cancellation mechanism accepts.  Returns the number of requests
        cancelled.  The caller is expected to discard the output file.
        """
        self._pending = []  # never-submitted records die with the file
        self._pending_bytes = 0
        now = self.clock.now
        mine = {id(r) for r in self._requests}
        dropped = self.file.device.timeline.cancel(
            now, lambda r: id(r) in mine and not r.cancelled
        )
        self.cancelled = True
        self.closed = True
        return len(dropped)
