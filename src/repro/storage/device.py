"""Block-device timing model.

A device turns a request (kind, size, file, offset) into a service time:

``service = seeks * seek_time + nbytes / bandwidth``

A *seek* is charged whenever the request does not continue sequentially from
the previous request on the same device (different file, or a jump within the
file).  That single rule reproduces the phenomena the paper leans on: long
sequential streams run at full bandwidth, interleaving two streams on one
spindle thrashes the head, and SSDs barely care.

Presets are calibrated to the paper's hardware generation (2016 commodity
parts); see ``repro.analysis.calibration`` for how they combine with the
compute model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import OutOfSpaceError, StorageError
from repro.sim.timeline import ScheduledRequest, Timeline
from repro.utils.units import GB, MB


@dataclass(frozen=True)
class DeviceSpec:
    """Static performance parameters of one device."""

    name: str
    seek_time: float  # seconds per non-sequential access
    read_bandwidth: float  # bytes/second
    write_bandwidth: float  # bytes/second
    kind: str = "hdd"  # "hdd" | "ssd" | "ram" (reporting only)
    #: Modeled capacity in bytes; ``None`` means unbounded (the default —
    #: the paper's experiments never fill a disk, but a fault plan or an
    #: explicit capacity lets out-of-space behaviour be exercised).
    capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.seek_time < 0:
            raise StorageError(f"seek_time must be >= 0, got {self.seek_time}")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise StorageError("bandwidths must be positive")
        if self.capacity is not None and self.capacity <= 0:
            raise StorageError(f"capacity must be positive, got {self.capacity}")

    # ------------------------------------------------------------------
    # presets (2016-era commodity parts, matching the paper's test bed)
    # ------------------------------------------------------------------
    @staticmethod
    def hdd(name: str = "hdd0") -> "DeviceSpec":
        """7200RPM SATA3 disk (Seagate Barracuda class)."""
        return DeviceSpec(
            name=name,
            seek_time=8.5e-3,
            read_bandwidth=140 * MB,
            write_bandwidth=130 * MB,
            kind="hdd",
        )

    @staticmethod
    def ssd(name: str = "ssd0") -> "DeviceSpec":
        """SATA2 SSD (EJITEC EJS1125A class)."""
        return DeviceSpec(
            name=name,
            seek_time=0.08e-3,
            read_bandwidth=260 * MB,
            write_bandwidth=210 * MB,
            kind="ssd",
        )

    @staticmethod
    def ram(name: str = "ram") -> "DeviceSpec":
        """Main-memory 'device' for in-memory processing mode."""
        return DeviceSpec(
            name=name,
            seek_time=0.0,
            read_bandwidth=8 * GB,
            write_bandwidth=8 * GB,
            kind="ram",
        )

    def renamed(self, name: str) -> "DeviceSpec":
        return replace(self, name=name)


class Device:
    """A block device: a :class:`DeviceSpec` plus a request timeline."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.timeline = Timeline(spec.name)
        # (file id, next sequential offset) of the last scheduled request.
        self._head: Optional[Tuple[int, int]] = None
        self._seek_count = 0
        self._used_bytes = 0
        #: Optional shared OS page cache (see repro.storage.pagecache).
        self.cache = None
        #: Optional fault injector (see repro.storage.faults); installed by
        #: ``Machine(fault_plan=...)``, shared across the machine's disks.
        self.injector = None

    @property
    def name(self) -> str:
        return self.spec.name

    def service_time(self, kind: str, nbytes: int, seeks: int) -> float:
        bandwidth = (
            self.spec.read_bandwidth if kind == "read" else self.spec.write_bandwidth
        )
        return seeks * self.spec.seek_time + nbytes / bandwidth

    # ------------------------------------------------------------------
    # capacity model
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently reserved by live file data on this device."""
        return self._used_bytes

    @property
    def available_bytes(self) -> Optional[int]:
        """Free capacity in bytes; ``None`` when the device is unbounded."""
        if self.spec.capacity is None:
            return None
        return max(0, self.spec.capacity - self._used_bytes)

    def reserve(self, nbytes: int) -> None:
        """Claim ``nbytes`` of capacity for file data (VFS append path)."""
        available = self.available_bytes
        if available is not None and nbytes > available:
            self._out_of_space(nbytes, available)
        self._used_bytes += nbytes

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` of capacity (VFS delete path)."""
        self._used_bytes = max(0, self._used_bytes - nbytes)

    def _out_of_space(self, requested: int, available: Optional[int] = None) -> None:
        """The single choke point every out-of-space condition goes through.

        Both real capacity exhaustion (:meth:`reserve`) and an injected
        ``out_of_space`` fault raise here, so the error message is uniform:
        device name, requested bytes, available bytes.
        """
        if available is None:
            avail = self.available_bytes
            available = avail if avail is not None else 0
        raise OutOfSpaceError(
            f"device {self.name!r} is out of space: "
            f"requested {requested} bytes, {available} bytes available"
        )

    def submit(
        self,
        submit_time: float,
        kind: str,
        nbytes: int,
        file_id: int,
        offset: int,
        group: str = "",
    ) -> ScheduledRequest:
        """Queue one request; returns its placement on the timeline.

        Sequential continuation (same file, offset where the head was left)
        costs no seek.  Approximation: cancellations do not restore the head
        position — a cancelled queued write still counts as having moved the
        head for the *next* request's seek decision.  This slightly overcounts
        seeks (pessimistic for FastBFS), never under.

        With an attached page cache, reads only pay the disk for the blocks
        not resident; a fully-cached read completes instantly without
        touching the timeline (and without counting as device bytes — the
        paper's "input data amount" is what reaches the disk).

        With an installed fault injector, the request is first judged
        against the machine's fault plan: error faults raise before any
        state changes, latency/stall faults inflate the service time, a
        torn write tags the returned request (the stream layer applies the
        corruption), and an injected out-of-space goes through the same
        choke point as real capacity exhaustion.
        """
        outcome = None
        if self.injector is not None:
            # Evaluated before any cache/head mutation so a raised fault
            # leaves the device exactly as it was (retries re-judge).
            outcome = self.injector.on_submit(self, kind, nbytes, group)
            if outcome is not None and outcome.out_of_space:
                self._out_of_space(nbytes)
        disk_bytes = nbytes
        if self.cache is not None:
            if kind == "read":
                disk_bytes = self.cache.read(file_id, offset, nbytes)
                if disk_bytes == 0:
                    # RAM-speed hit: an already-complete pseudo-request.
                    return ScheduledRequest(
                        group=group, kind=kind, nbytes=0,
                        submit=submit_time, service=0.0,
                        start=submit_time, end=submit_time,
                    )
            else:
                self.cache.write(file_id, offset, nbytes)
        seeks = 0
        if self.spec.seek_time > 0.0:
            if self._head is None or self._head != (file_id, offset):
                seeks = 1
        self._head = (file_id, offset + nbytes)
        self._seek_count += seeks
        service = self.service_time(kind, disk_bytes, seeks)
        if outcome is not None and outcome.delay > 0.0:
            service += outcome.delay
        req = self.timeline.schedule(
            submit=submit_time,
            service=service,
            nbytes=disk_bytes,
            kind=kind,
            group=group,
        )
        if outcome is not None and outcome.torn and kind == "write":
            req.fault = "torn_write"
        return req

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture head position, seek count, capacity use, timeline state."""
        return {
            "head": self._head,
            "seek_count": self._seek_count,
            "used_bytes": self._used_bytes,
            "timeline": self.timeline.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Roll the device back to a snapshot (see Machine.restore)."""
        self._head = state["head"]
        self._seek_count = state["seek_count"]
        self._used_bytes = state["used_bytes"]
        self.timeline.restore(state["timeline"])

    # ------------------------------------------------------------------
    # accounting passthroughs
    # ------------------------------------------------------------------
    def counter_samples(self):
        """Yield (name, labels, value) samples for the counter registry.

        Sourced from the timeline's per-role ledger — the ledger the
        per-kind totals (``bytes_read``/``bytes_written``) are reconciled
        against — plus the seek count, which lives on the device itself.
        """
        for (role, kind), nbytes in self.timeline.bytes_by_role().items():
            yield (
                "device_bytes_total",
                {"device": self.name, "kind": kind, "role": role},
                float(nbytes),
            )
        yield "device_seeks_total", {"device": self.name}, float(self._seek_count)

    @property
    def bytes_read(self) -> int:
        return self.timeline.bytes_read

    @property
    def bytes_written(self) -> int:
        return self.timeline.bytes_written

    @property
    def seek_count(self) -> int:
        return self._seek_count

    @property
    def free_at(self) -> float:
        return self.timeline.free_at

    def busy_time_until(self, t: float) -> float:
        return self.timeline.busy_time_until(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.spec.name!r}, kind={self.spec.kind})"
