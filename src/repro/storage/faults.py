"""Deterministic fault injection for the storage substrate.

Out-of-core engines live or die on how they behave when the disk
misbehaves, yet a simulator only ever models the happy path unless faults
are part of the model.  This module makes device misbehaviour a
first-class, *seeded* input: a :class:`FaultPlan` is a reproducible
schedule of faults, a :class:`FaultInjector` evaluates it at the single
choke point every I/O goes through (:meth:`Device.submit
<repro.storage.device.Device.submit>`), and a :class:`RetryPolicy` is the
stream-layer answer to the transient subset.

Fault taxonomy (``FaultSpec.kind``):

``transient_error``
    The request fails with :class:`~repro.errors.TransientIOError`; a
    retry may succeed.  Absorbed by :func:`submit_with_retry` under the
    engine's :class:`RetryPolicy`.
``persistent_error``
    The request fails with :class:`~repro.errors.PersistentIOError`;
    retrying is pointless and the error propagates as a typed failure.
``latency`` / ``stall``
    The request succeeds but its service time is inflated by
    ``delay_seconds`` (a spike) or by a long device hiccup (a stall).
    Purely a timing fault — data is unaffected.
``torn_write``
    The write is acknowledged but what lands on the medium differs from
    what was sent (one byte of the chunk is flipped via
    :meth:`VirtualFile.corrupt_at <repro.storage.vfs.VirtualFile.corrupt_at>`).
    Only checksummed consumers (the stay writer) can detect this.
``out_of_space``
    The write fails through the device's out-of-space choke point exactly
    as if modeled capacity ran out (:class:`~repro.errors.OutOfSpaceError`).
``crash``
    The whole run dies mid-flight with :class:`~repro.errors.CrashError`
    (a *CrashPoint*); :meth:`QuerySession.recover
    <repro.engines.session.QuerySession.recover>` replays from the staged
    artifact plus the last machine checkpoint.

Determinism: the injector draws from one ``numpy`` generator seeded via
:func:`repro.utils.rng.rng_from_seed`, and the simulated workload issues
requests in a deterministic order, so the same seed and plan produce the
same faults, the same retries, and the same spans — bit for bit.  The
checkpoint protocol snapshots the rng state and per-device request
indices (so a replay sees the same schedule) but deliberately **not**
fire budgets or counters: a ``max_fires=1`` crash does not re-fire after
recovery, and fault counters remain lifetime totals that reconcile with
the (never-truncated) span trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    ConfigError,
    CrashError,
    IOFaultError,
    PersistentIOError,
    TransientIOError,
)
from repro.obs.tracer import NULL_TRACER
from repro.sim.timeline import ScheduledRequest, Timeline
from repro.utils.backoff import exponential_backoff
from repro.utils.rng import rng_from_seed

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.sim.clock import SimClock
    from repro.storage.device import Device
    from repro.storage.vfs import VirtualFile

#: Every fault kind a FaultSpec may carry.
FAULT_KINDS = frozenset(
    {
        "transient_error",
        "persistent_error",
        "latency",
        "stall",
        "torn_write",
        "out_of_space",
        "crash",
    }
)

#: Kinds that only make sense for write requests.
_WRITE_ONLY_KINDS = frozenset({"torn_write", "out_of_space"})

#: Kinds that inflate service time instead of raising.
_DELAY_KINDS = frozenset({"latency", "stall"})


@dataclass(frozen=True)
class FaultSpec:
    """One rule of a fault plan: *what* fails, *where*, and *how often*.

    A spec matches a request when every set filter agrees: ``device``
    (device name), ``io_kind`` (``"read"``/``"write"``), ``role`` (the
    stream-group prefix, e.g. ``"stay"``), and ``after_index`` (the
    per-device request ordinal).  A matching spec then fires with
    ``probability`` (one rng draw), bounded by ``max_fires`` over the
    machine's lifetime.
    """

    kind: str
    probability: float = 1.0
    device: Optional[str] = None
    io_kind: Optional[str] = None
    role: Optional[str] = None
    after_index: int = 0
    max_fires: Optional[int] = None
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.io_kind not in (None, "read", "write"):
            raise ConfigError(f"io_kind must be 'read' or 'write', got {self.io_kind!r}")
        if self.kind in _WRITE_ONLY_KINDS and self.io_kind == "read":
            raise ConfigError(f"{self.kind} faults only apply to writes")
        if self.after_index < 0:
            raise ConfigError(f"after_index must be >= 0, got {self.after_index}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigError(f"max_fires must be >= 1, got {self.max_fires}")
        if self.delay_seconds < 0:
            raise ConfigError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )
        if self.kind in _DELAY_KINDS and self.delay_seconds <= 0:
            raise ConfigError(f"{self.kind} faults need delay_seconds > 0")

    def matches(self, device_name: str, io_kind: str, role: str, index: int) -> bool:
        if self.device is not None and self.device != device_name:
            return False
        if self.io_kind is not None and self.io_kind != io_kind:
            return False
        if self.io_kind is None and self.kind in _WRITE_ONLY_KINDS and io_kind != "write":
            return False
        if self.role is not None and self.role != role:
            return False
        return index >= self.after_index


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of faults for one machine.

    Attach through ``Machine(fault_plan=...)``; the machine builds one
    :class:`FaultInjector` shared by its persistent disks (the RAM
    pseudo-device is exempt — faults model persistent media).
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any sequence of specs; freeze to a tuple for hashability.
        object.__setattr__(self, "specs", tuple(self.specs))

    @staticmethod
    def crash_point(
        after_index: int, device: Optional[str] = None, seed: int = 0
    ) -> "FaultPlan":
        """A plan with exactly one deterministic mid-run crash."""
        return FaultPlan(
            specs=(
                FaultSpec(
                    kind="crash", after_index=after_index, device=device, max_fires=1
                ),
            ),
            seed=seed,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential simulated-clock backoff.

    ``max_attempts`` counts the first try: 3 means one submit plus at most
    two retries.  The ``n``-th retry waits
    ``backoff_base * backoff_multiplier ** (n - 1)`` simulated seconds
    before resubmitting, so recovery cost is visible in the iowait ledger
    like any other stall.
    """

    max_attempts: int = 3
    backoff_base: float = 0.002
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ConfigError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    def backoff(self, retry_number: int) -> float:
        """Seconds to wait before retry ``retry_number`` (1-based)."""
        return exponential_backoff(
            self.backoff_base, self.backoff_multiplier, retry_number
        )


@dataclass
class FaultOutcome:
    """A non-raising fault decision for one request."""

    delay: float = 0.0
    torn: bool = False
    out_of_space: bool = False


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at every device submit.

    One injector serves all of a machine's disks; it keeps a per-device
    request ordinal (the schedule's clock), one seeded rng (the
    schedule's randomness), lifetime fire budgets, and the fault/retry
    counters that :meth:`counter_samples` exposes to the
    :class:`~repro.obs.counters.CounterRegistry`.
    """

    def __init__(self, plan: FaultPlan, clock: Optional["SimClock"] = None) -> None:
        self.plan = plan
        self.clock = clock
        self.tracer = NULL_TRACER
        self._rng = rng_from_seed(plan.seed)
        self._indices: Dict[str, int] = {}
        self._fires: List[int] = [0] * len(plan.specs)
        # (counter name, device) -> lifetime count; never rewound.
        self._counts: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # evaluation (called from Device.submit)
    # ------------------------------------------------------------------
    def on_submit(
        self, device: "Device", kind: str, nbytes: int, group: str
    ) -> Optional[FaultOutcome]:
        """Decide this request's fate; raises for error faults.

        Returns ``None`` (no fault) or a :class:`FaultOutcome` the device
        applies (extra delay, torn flag, forced out-of-space).
        """
        name = device.name
        index = self._indices.get(name, 0)
        self._indices[name] = index + 1
        role = Timeline.role_of(group)
        outcome: Optional[FaultOutcome] = None
        for i, spec in enumerate(self.plan.specs):
            if not spec.matches(name, kind, role, index):
                continue
            if spec.max_fires is not None and self._fires[i] >= spec.max_fires:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            self._fires[i] += 1
            self._count(f"fault_{spec.kind}", name)
            where = f"{kind} #{index} on {name!r} (group {group!r}, {nbytes} bytes)"
            if spec.kind == "transient_error":
                raise TransientIOError(f"injected transient fault: {where}")
            if spec.kind == "persistent_error":
                raise PersistentIOError(f"injected persistent fault: {where}")
            if spec.kind == "crash":
                # Trace the crash point itself so the span trace reconciles
                # with fault_crash_total even though the error unwinds the
                # whole query (closing every open span on the way out).
                now = self.clock.now if self.clock is not None else 0.0
                self.tracer.emit(
                    "crash",
                    start=now,
                    end=now,
                    parent_id=self.tracer.current_id,
                    device=name,
                    group=group,
                    index=index,
                )
                raise CrashError(f"injected crash point: {where}")
            if outcome is None:
                outcome = FaultOutcome()
            if spec.kind in _DELAY_KINDS:
                outcome.delay += spec.delay_seconds
            elif spec.kind == "torn_write":
                outcome.torn = True
            elif spec.kind == "out_of_space":
                outcome.out_of_space = True
        return outcome

    # ------------------------------------------------------------------
    # retry / recovery accounting (called from the stream + session layers)
    # ------------------------------------------------------------------
    def record_retry(
        self, device_name: str, group: str, attempt: int, start: float, end: float
    ) -> None:
        """Count one retry and trace its backoff window as an ``io_retry`` span."""
        self._count("io_retries", device_name)
        self.tracer.emit(
            "io_retry",
            start=start,
            end=end,
            parent_id=self.tracer.current_id,
            device=device_name,
            group=group,
            attempt=attempt,
        )

    def record_giveup(self, device_name: str, group: str, attempts: int, now: float) -> None:
        """Count one exhausted retry loop and trace it as an ``io_giveup`` span."""
        self._count("io_giveups", device_name)
        self.tracer.emit(
            "io_giveup",
            start=now,
            end=now,
            parent_id=self.tracer.current_id,
            device=device_name,
            group=group,
            attempts=attempts,
        )

    def record_recovery(self) -> None:
        """Count one successful crash/resume recovery."""
        self._count("crash_recoveries", "-")

    def _count(self, name: str, device_name: str) -> None:
        key = (name, device_name)
        self._counts[key] = self._counts.get(key, 0) + 1

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def counter_samples(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        """Yield (name, labels, value) fault counters for the registry."""
        for (name, device_name), count in sorted(self._counts.items()):
            labels = {} if device_name == "-" else {"device": device_name}
            yield f"{name}_total", labels, float(count)

    def total(self, name: str) -> int:
        """Lifetime count of one event class summed over devices."""
        return sum(v for (n, _), v in self._counts.items() if n == name)

    def counts_snapshot(self) -> Dict[Tuple[str, str], int]:
        """Copy of the lifetime counters, for windowed delta sampling.

        The serving layer takes one snapshot per admission flush and
        merges only the *delta* into the ``/metrics`` registry via
        :meth:`delta_samples` — lifetime totals merged repeatedly would
        double-count.
        """
        return dict(self._counts)

    def delta_samples(
        self, base: Dict[Tuple[str, str], int]
    ) -> Iterator[Tuple[str, Dict[str, str], float]]:
        """Yield counters grown since ``base`` (a :meth:`counts_snapshot`).

        Same ``(name_total, labels, value)`` shape as
        :meth:`counter_samples`, restricted to nonzero growth.  Because
        lifetime counters are never rewound, a flush window's delta also
        covers faults fired by executions that were later rolled back.
        """
        for (name, device_name), count in sorted(self._counts.items()):
            grown = count - base.get((name, device_name), 0)
            if grown <= 0:
                continue
            labels = {} if device_name == "-" else {"device": device_name}
            yield f"{name}_total", labels, float(grown)

    @property
    def faults_injected(self) -> int:
        return sum(
            v for (n, _), v in self._counts.items() if n.startswith("fault_")
        )

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture schedule position (indices + rng); budgets/counters stay.

        Restoring replays the same fault schedule from the checkpoint
        (bit-identical recovery), while lifetime fire budgets and counters
        survive — a consumed ``max_fires=1`` crash point does not re-fire,
        and counters keep reconciling with the never-truncated trace.
        """
        return {
            "indices": dict(self._indices),
            "rng": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        self._indices = dict(state["indices"])
        self._rng.bit_generator.state = state["rng"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(specs={len(self.plan.specs)}, seed={self.plan.seed}, "
            f"injected={self.faults_injected})"
        )


def submit_with_retry(
    clock: "SimClock",
    file: "VirtualFile",
    kind: str,
    nbytes: int,
    offset: int,
    group: str,
    retry: Optional[RetryPolicy],
) -> ScheduledRequest:
    """Submit one device request, absorbing transient faults under ``retry``.

    The stream layer's recovery loop: a :class:`~repro.errors.TransientIOError`
    from the device triggers a simulated-clock backoff
    (``clock.wait_until``, so the stall lands in the iowait ledger) and a
    resubmit, up to ``retry.max_attempts`` total attempts.  Each retry is
    traced as an ``io_retry`` span and counted; exhaustion emits an
    ``io_giveup`` span and raises :class:`~repro.errors.IOFaultError`.
    Persistent faults and out-of-space pass straight through — retrying
    cannot help them.
    """
    device = file.device
    policy = retry if retry is not None else RetryPolicy(max_attempts=1)
    attempt = 0
    while True:
        attempt += 1
        try:
            return device.submit(
                submit_time=clock.now,
                kind=kind,
                nbytes=nbytes,
                file_id=file.file_id,
                offset=offset,
                group=group,
            )
        except TransientIOError as exc:
            injector = device.injector
            if attempt >= policy.max_attempts:
                if injector is not None:
                    injector.record_giveup(device.name, group, attempt, clock.now)
                raise IOFaultError(
                    f"{kind} on {device.name!r} (group {group!r}) still failing "
                    f"after {attempt} attempt(s): {exc}"
                ) from exc
            start = clock.now
            clock.wait_until(start + policy.backoff(attempt))
            if injector is not None:
                injector.record_retry(device.name, group, attempt, start, clock.now)
