"""Simulated single-server storage substrate.

This package is the stand-in for the paper's test bed (a 4-core Xeon with
one or two 7200RPM SATA disks or a SATA2 SSD).  Data really flows — files
hold the actual numpy record arrays the engines stream — but time is charged
to a :class:`~repro.sim.clock.SimClock` through per-device FIFO timelines, so
execution time, iowait and byte counts come out of a deterministic model
instead of Python's (irrelevant) wall clock.

Key pieces:

* :class:`DeviceSpec` / :class:`Device` — seek + bandwidth model with
  ``hdd()``, ``ssd()`` and ``ram()`` presets;
* :class:`VirtualFile` / :class:`VFS` — named record files on devices;
* :class:`StreamReader` — sequential buffered reads with prefetch depth;
* :class:`StreamWriter` — buffered appends, drained with a barrier;
* :class:`AsyncStreamWriter` — the dedicated stay-list writer: a private
  buffer pool, fire-and-forget flushes, and cancellation support;
* :class:`Machine` — clock + devices + memory budget + core count;
* :class:`FaultPlan` / :class:`FaultInjector` / :class:`RetryPolicy` —
  deterministic fault injection and the stream-layer retry loop
  (see :mod:`repro.storage.faults`).
"""

from repro.storage.device import Device, DeviceSpec
from repro.storage.faults import FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from repro.storage.machine import IOReport, Machine
from repro.storage.pagecache import PageCache
from repro.storage.streams import AsyncStreamWriter, StreamReader, StreamWriter
from repro.storage.vfs import VFS, VirtualFile

__all__ = [
    "Device",
    "DeviceSpec",
    "VFS",
    "VirtualFile",
    "StreamReader",
    "StreamWriter",
    "AsyncStreamWriter",
    "Machine",
    "IOReport",
    "PageCache",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "RetryPolicy",
]
