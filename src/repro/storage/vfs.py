"""Virtual filesystem: named record files living on simulated devices.

A :class:`VirtualFile` stores real numpy record arrays (the engines' data
path) while its timing lives on the owning device's timeline (the time
path).  Files are append-only while open, then sealed into one contiguous
array for zero-copy streamed reads.

The VFS supports the file-level operations FastBFS needs each iteration:
create, delete, and atomic *replace* (swapping a freshly written stay file in
for the previous edge file).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

import numpy as np

from repro.errors import StorageError
from repro.storage.device import Device


class VirtualFile:
    """An append-only record file on one device."""

    _ids = itertools.count(1)

    def __init__(self, name: str, device: Device) -> None:
        self.name = name
        self.device = device
        self.file_id = next(self._ids)
        self._chunks: List[np.ndarray] = []
        self._sealed: Optional[np.ndarray] = None
        self._nbytes = 0
        self._num_records = 0
        self._dtype: Optional[np.dtype] = None
        self.deleted = False
        #: Byte offsets damaged by injected torn writes (diagnostics).
        self.corruptions: List[int] = []

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def append_records(self, arr: np.ndarray) -> None:
        """Append a record array (data only; timing is the writer's job)."""
        self._check_alive()
        if self._sealed is not None:
            raise StorageError(f"file {self.name!r} is sealed; cannot append")
        if arr.ndim != 1:
            raise StorageError(
                f"files hold 1-D record arrays, got shape {arr.shape} for {self.name!r}"
            )
        if self._dtype is None:
            self._dtype = arr.dtype
        elif arr.dtype != self._dtype:
            raise StorageError(
                f"dtype mismatch appending to {self.name!r}: "
                f"{arr.dtype} != {self._dtype}"
            )
        self.device.reserve(arr.nbytes)
        self._chunks.append(arr)
        self._nbytes += arr.nbytes
        self._num_records += len(arr)

    def corrupt_at(self, offset: int) -> None:
        """Flip one stored byte at ``offset`` (torn-write fault data path).

        Models a write that was acknowledged but did not land intact: what
        subsequent reads see differs from what the writer sent.  The flip
        is copy-on-corrupt — the stored chunk is replaced by a modified
        copy, never mutated in place — because appended arrays may still
        be shared with engine buffers.
        """
        self._check_alive()
        if not 0 <= offset < self._nbytes:
            raise StorageError(
                f"corruption offset {offset} out of range for {self.name!r} "
                f"({self._nbytes} bytes)"
            )
        if self._sealed is not None:
            damaged = self._sealed.copy()
            damaged.view(np.uint8)[offset] ^= 0xFF
            self._sealed = damaged
        else:
            base = 0
            for i, chunk in enumerate(self._chunks):
                if offset < base + chunk.nbytes:
                    damaged = chunk.copy()
                    damaged.view(np.uint8)[offset - base] ^= 0xFF
                    self._chunks[i] = damaged
                    break
                base += chunk.nbytes
        self.corruptions.append(offset)

    def seal(self) -> None:
        """Concatenate chunks into one contiguous array (idempotent)."""
        self._check_alive()
        if self._sealed is None:
            if self._chunks:
                self._sealed = (
                    self._chunks[0]
                    if len(self._chunks) == 1
                    else np.concatenate(self._chunks)
                )
            else:
                dtype = self._dtype if self._dtype is not None else np.uint8
                self._sealed = np.empty(0, dtype=dtype)
            self._chunks = []

    def records(self) -> np.ndarray:
        """The full contents as one contiguous array (seals the file)."""
        self.seal()
        sealed = self._sealed
        if sealed is None:  # pragma: no cover - seal() always sets it
            raise StorageError(f"file {self.name!r} failed to seal")
        return sealed

    def read_records(self, start: int, count: int) -> np.ndarray:
        """Zero-copy view of ``count`` records beginning at ``start``."""
        data = self.records()
        if start < 0 or start > len(data):
            raise StorageError(
                f"read out of range in {self.name!r}: start={start}, len={len(data)}"
            )
        return data[start : start + count]

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def record_size(self) -> int:
        """Bytes per record; 0 for an empty file with unknown dtype."""
        if self._dtype is None:
            return 0
        return self._dtype.itemsize

    @property
    def dtype(self) -> Optional[np.dtype]:
        return self._dtype

    def _check_alive(self) -> None:
        if self.deleted:
            raise StorageError(f"file {self.name!r} was deleted")

    def __len__(self) -> int:
        return self._num_records

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualFile({self.name!r}, records={self._num_records}, "
            f"device={self.device.name!r})"
        )


class VFS:
    """Flat namespace of virtual files across a machine's devices."""

    def __init__(self) -> None:
        self._files: Dict[str, VirtualFile] = {}

    def create(self, name: str, device: Device, overwrite: bool = False) -> VirtualFile:
        if name in self._files:
            if not overwrite:
                raise StorageError(f"file {name!r} already exists")
            self.delete(name)
        f = VirtualFile(name, device)
        self._files[name] = f
        return f

    def get(self, name: str) -> VirtualFile:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        f = self._files.pop(name, None)
        if f is None:
            raise StorageError(f"no such file {name!r}")
        f.deleted = True
        f.device.release(f.nbytes)

    def delete_if_exists(self, name: str) -> None:
        if name in self._files:
            self.delete(name)

    def replace(self, new_name: str, target_name: str) -> VirtualFile:
        """Atomically install file ``new_name`` as ``target_name``.

        Mirrors FastBFS step 5: "replace the previous edge files with the new
        stay files as future input".  The displaced target (if any) is
        deleted.
        """
        f = self.get(new_name)
        if target_name in self._files and target_name != new_name:
            self.delete(target_name)
        del self._files[new_name]
        f.name = target_name
        self._files[target_name] = f
        return f

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, VirtualFile]:
        """Capture the current namespace for a later :meth:`restore`.

        The snapshot shares file objects by reference — it records *which*
        files exist under *which* names, not their contents.  That is the
        contract the query-session protocol needs: staged artifact files
        are sealed (immutable) by the time a checkpoint is taken, and
        everything created afterwards is transient per-query state.
        """
        return dict(self._files)

    def restore(self, snap: Dict[str, VirtualFile]) -> None:
        """Roll the namespace back to a snapshot.

        Files created since the snapshot are deleted; files present in the
        snapshot are re-registered (and resurrected if a query displaced
        them via :meth:`replace`).
        """
        for name, f in self._files.items():
            if snap.get(name) is not f:
                f.deleted = True
        self._files = dict(snap)
        for name, f in self._files.items():
            f.name = name
            f.deleted = False

    def counter_samples(self):
        """Yield (name, labels, value) occupancy gauges for the registry."""
        yield "vfs_live_files", {}, float(len(self._files))
        yield "vfs_live_bytes", {}, float(self.total_bytes())

    def names(self) -> List[str]:
        return sorted(self._files)

    def total_bytes(self) -> int:
        """Sum of live file sizes (modeled disk occupancy)."""
        return sum(f.nbytes for f in self._files.values())

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def __len__(self) -> int:
        return len(self._files)
