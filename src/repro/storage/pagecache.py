"""OS page-cache model (LRU block cache over the disks).

Paper §IV-B: "FastBFS and X-Stream skip the operating system page cache
layer, to make the runtime memory usage more controllable.  On the
contrary, GraphChi tries to take advantages of OS page caches for better
performance, so it will take up almost all available memory.  In order to
investigate performance differences between these systems using same
amount of resources, we blocked the extra memory for GraphChi, leaving
only 4 GB of free memory space."

This module makes that decision reproducible: attach a :class:`PageCache`
to a machine's disks and repeated block reads become free (RAM-speed)
hits, exactly the effect the authors neutralized by blocking memory.  The
page-cache ablation bench runs GraphChi both ways.

Model: fixed-size blocks, shared LRU across devices, read-allocate +
write-through.  File deletions are not invalidated (a run never re-reads a
deleted file's blocks under a reused file id — ids are globally unique).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.errors import StorageError
from repro.utils.units import KB


class PageCache:
    """Shared LRU block cache."""

    def __init__(self, capacity_bytes: int, block_bytes: int = 64 * KB) -> None:
        if block_bytes <= 0:
            raise StorageError(f"block_bytes must be positive, got {block_bytes}")
        if capacity_bytes < block_bytes:
            raise StorageError(
                f"capacity {capacity_bytes} below one block ({block_bytes})"
            )
        self.block_bytes = block_bytes
        self.capacity_blocks = capacity_bytes // block_bytes
        self._lru: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.hit_bytes = 0
        self.miss_bytes = 0

    # ------------------------------------------------------------------
    def _blocks(self, file_id: int, offset: int, nbytes: int):
        if nbytes <= 0:
            return range(0)
        first = offset // self.block_bytes
        last = (offset + nbytes - 1) // self.block_bytes
        return ((file_id, b) for b in range(first, last + 1))

    def read(self, file_id: int, offset: int, nbytes: int) -> int:
        """Account a read; returns the bytes that must come from the disk.

        Hit blocks are refreshed in the LRU; miss blocks are inserted
        (read-allocate).  The returned miss volume is capped at ``nbytes``
        (partial blocks at the edges don't inflate the request).
        """
        if nbytes <= 0:
            return 0
        missed_blocks = 0
        total_blocks = 0
        for key in self._blocks(file_id, offset, nbytes):
            total_blocks += 1
            if key in self._lru:
                self._lru.move_to_end(key)
            else:
                missed_blocks += 1
                self._insert(key)
        miss = min(nbytes, missed_blocks * self.block_bytes)
        self.miss_bytes += miss
        self.hit_bytes += nbytes - miss
        return miss

    def write(self, file_id: int, offset: int, nbytes: int) -> None:
        """Write-through: the blocks become resident, disk still pays."""
        for key in self._blocks(file_id, offset, nbytes):
            if key in self._lru:
                self._lru.move_to_end(key)
            else:
                self._insert(key)

    def _insert(self, key: Tuple[int, int]) -> None:
        self._lru[key] = None
        while len(self._lru) > self.capacity_blocks:
            self._lru.popitem(last=False)

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture residency and hit/miss counters for a later restore."""
        return {
            "lru": OrderedDict(self._lru),
            "hit_bytes": self.hit_bytes,
            "miss_bytes": self.miss_bytes,
        }

    def restore(self, state: dict) -> None:
        """Roll the cache back to a snapshot (see Machine.restore)."""
        self._lru = OrderedDict(state["lru"])
        self.hit_bytes = state["hit_bytes"]
        self.miss_bytes = state["miss_bytes"]

    # ------------------------------------------------------------------
    def counter_samples(self):
        """Yield (name, labels, value) samples for the counter registry."""
        yield "pagecache_hit_bytes_total", {}, float(self.hit_bytes)
        yield "pagecache_miss_bytes_total", {}, float(self.miss_bytes)
        yield "pagecache_resident_bytes", {}, float(self.resident_bytes)

    @property
    def resident_bytes(self) -> int:
        return len(self._lru) * self.block_bytes

    @property
    def hit_ratio(self) -> float:
        total = self.hit_bytes + self.miss_bytes
        return self.hit_bytes / total if total else 0.0

    def contains(self, file_id: int, offset: int) -> bool:
        return (file_id, offset // self.block_bytes) in self._lru

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageCache(blocks={len(self._lru)}/{self.capacity_blocks}, "
            f"hit_ratio={self.hit_ratio:.1%})"
        )
