"""Programmatic reproduction report.

`build_report` runs (or reuses) the experiments behind every figure of the
paper's evaluation through one :class:`ExperimentRunner` and renders a
single markdown document with measured-vs-paper values — the automated
counterpart of EXPERIMENTS.md, exposed on the CLI as ``fastbfs reproduce``.

For quick runs restrict ``figures`` and/or raise the runner's divisor.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis import paper
from repro.analysis.harness import ExperimentRunner
from repro.analysis.tables import (
    comparison_table,
    datasets_table,
    format_table,
    representation_table,
    speedup_table,
)
from repro.errors import ConfigError
from repro.graph.datasets import BIG_DATASETS, DATASETS
from repro.utils.units import format_seconds

ALL_FIGURES = (
    "table1", "table2", "fig1", "fig4", "fig5", "fig6", "fig7", "fig10",
    "fig8", "fig9",
)


def build_report(
    runner: Optional[ExperimentRunner] = None,
    figures: Iterable[str] = ALL_FIGURES,
    datasets: Optional[List[str]] = None,
) -> str:
    """Render the reproduction report as markdown."""
    runner = runner if runner is not None else ExperimentRunner()
    datasets = datasets if datasets is not None else list(BIG_DATASETS)
    figures = list(figures)
    unknown = set(figures) - set(ALL_FIGURES)
    if unknown:
        raise ConfigError(f"unknown figures {sorted(unknown)}; "
                          f"options: {ALL_FIGURES}")
    sections: List[str] = [
        "# FastBFS reproduction report",
        f"scale divisor: {runner.divisor}  |  datasets: {', '.join(datasets)}",
    ]
    builders = {
        "table1": _table1,
        "table2": _table2,
        "fig1": _fig1,
        "fig4": _fig4,
        "fig5": _fig5,
        "fig6": _fig6,
        "fig7": _fig7,
        "fig8": _fig8,
        "fig9": _fig9,
        "fig10": _fig10,
    }
    for fig in figures:
        sections.append(_block(builders[fig](runner, datasets)))
    return "\n\n".join(sections) + "\n"


def _block(text: str) -> str:
    return "```\n" + text + "\n```"


def _table1(runner, datasets) -> str:
    return representation_table()


def _table2(runner, datasets) -> str:
    graphs = {name: runner.graph(name) for name in DATASETS}
    return datasets_table(graphs)


def _fig1(runner, datasets) -> str:
    from repro.algorithms.reference import level_profile

    rows = []
    for ds in datasets:
        prof = level_profile(runner.graph(ds), runner.root(ds))
        fractions = prof.useful_fraction
        rows.append(
            [ds, prof.depth]
            + [f"{fractions[i]:.0%}" if i < len(fractions) else "-"
               for i in range(6)]
        )
    return format_table(
        ["dataset", "depth"] + [f"L{i}" for i in range(6)],
        rows,
        title="Fig. 1: useful-edge fraction entering each BFS level",
    )


def _hdd_rows(runner, datasets):
    return {ds: runner.compare(ds, "hdd") for ds in datasets}


def _fig4(runner, datasets) -> str:
    rows = _hdd_rows(runner, datasets)
    text = comparison_table(rows, "time", "Fig. 4: execution time, HDD")
    speedups = {
        ds: {
            "vs x-stream": runner.speedup(ds, "x-stream", "fastbfs"),
            "vs graphchi": runner.speedup(ds, "graphchi", "fastbfs"),
        }
        for ds in datasets
    }
    return text + "\n\n" + speedup_table(
        speedups,
        {
            "vs x-stream": paper.HDD_SPEEDUP_VS_XSTREAM,
            "vs graphchi": paper.HDD_SPEEDUP_VS_GRAPHCHI,
        },
        "FastBFS speedups vs paper ranges",
    )


def _fig5(runner, datasets) -> str:
    rows = _hdd_rows(runner, datasets)
    text = comparison_table(rows, "input", "Fig. 5: input data amount")
    reduction = [
        [ds, f"{runner.input_reduction(ds):.1%}",
         f"{runner.total_reduction(ds):.1%}"]
        for ds in datasets
    ]
    reduction.append(["paper range", "65.2%-78.1%", "47.7%-60.4%"])
    return text + "\n\n" + format_table(
        ["dataset", "input reduction", "overall reduction"], reduction,
        "FastBFS data reductions",
    )


def _fig6(runner, datasets) -> str:
    return comparison_table(
        _hdd_rows(runner, datasets), "iowait", "Fig. 6: iowait time ratio"
    )


def _fig7(runner, datasets) -> str:
    rows = {ds: runner.compare(ds, "ssd") for ds in datasets}
    return comparison_table(rows, "time", "Fig. 7: execution time, SSD")


def _fig8(runner, datasets) -> str:
    threads = (1, 2, 4, 8)
    rows = [
        [engine] + [
            format_seconds(
                runner.run("rmat22", engine, threads=t, memory="2GB")
                .execution_time
            )
            for t in threads
        ]
        for engine in ("x-stream", "fastbfs")
    ]
    return format_table(
        ["engine"] + [f"{t}t" for t in threads], rows,
        "Fig. 8: thread sweep, rmat22 (disk-based)",
    )


def _fig9(runner, datasets) -> str:
    budgets = ("256MB", "512MB", "1GB", "2GB", "4GB")
    rows = [
        [engine] + [
            format_seconds(
                runner.run("rmat22", engine, memory=m).execution_time
            )
            for m in budgets
        ]
        for engine in ("x-stream", "fastbfs")
    ]
    return format_table(
        ["engine"] + list(budgets), rows,
        "Fig. 9: memory sweep, rmat22 (in-memory cliff at 4GB)",
    )


def _fig10(runner, datasets) -> str:
    rows = []
    for ds in datasets:
        xs = runner.run(ds, "x-stream", "hdd").execution_time
        one = runner.run(ds, "fastbfs", "hdd").execution_time
        two = runner.run(ds, "fastbfs-2disk", "hdd", num_disks=2).execution_time
        rows.append([
            ds, format_seconds(xs), format_seconds(one), format_seconds(two),
            f"{one / two:.2f}x", f"{xs / two:.2f}x",
        ])
    rows.append(["paper range", "-", "-", "-", "1.6-1.7x", "2.5-3.6x"])
    return format_table(
        ["dataset", "x-stream", "fastbfs 1d", "fastbfs 2d",
         "2d vs 1d", "2d vs xs"],
        rows,
        "Fig. 10: two-disk parallel I/O",
    )
