"""Scale calibration: mapping the paper's test bed to the reproduction.

**One divisor scales everything.**  The paper runs billion-edge graphs
through multi-GB memory budgets on real disks.  The reproduction divides
*datasets, memory budgets, stream buffer sizes and device seek times* by the
same constant ``SCALE_DIVISOR`` (default 256, the dataset registry's
default).  Why this preserves the paper's shape:

* transfer time = bytes / bandwidth — scales by 1/D automatically when the
  data scales;
* seek count ≈ (bytes / buffer size) + per-partition stream switches — is
  *invariant* when data and buffers scale together;
* therefore seek time must scale by 1/D so the seek:transfer balance (and
  with it the HDD-vs-SSD contrast and the single-disk read/write
  interference FastBFS's second disk removes) stays at the paper's ratio;
* memory budgets scale by 1/D so partition counts and the Fig. 9 in-memory
  cliff land where the paper's do;
* CPU cost constants are per-item rates and do not scale — compute:I/O
  ratio is preserved because both totals scale by 1/D.

Paper reference values mapped here:

=====================  ==================  =====================
quantity               paper               scaled (D=256)
=====================  ==================  =====================
working memory         4 GB                16 MB
edge stream buffer     16 MB               64 KB
update stream buffer   8 MB                32 KB
stay stream buffer     8 MB                32 KB
HDD seek               8.5 ms              33.2 us
cancellation grace     ~1.3 s              5 ms
=====================  ==================  =====================
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from repro.core.config import FastBFSConfig
from repro.engines.base import EngineConfig
from repro.engines.graphchi import GraphChiConfig
from repro.errors import ConfigError
from repro.storage.device import DeviceSpec
from repro.storage.machine import Machine
from repro.utils.units import MB, parse_bytes

#: The one divisor. Must match the dataset registry's divisor for runs to be
#: internally consistent (``repro.graph.datasets.scale_divisor``).
SCALE_DIVISOR = 256

#: Paper buffer sizes (before scaling).
PAPER_EDGE_BUFFER = 16 * MB
PAPER_UPDATE_BUFFER = 8 * MB
PAPER_STAY_BUFFER = 8 * MB


def scaled_bytes(paper_value: Union[int, str], divisor: int = SCALE_DIVISOR) -> int:
    """Scale a paper-quoted byte count down to reproduction scale."""
    return max(1, parse_bytes(paper_value) // divisor)


def scaled_device(kind: str, name: str, divisor: int = SCALE_DIVISOR) -> DeviceSpec:
    """A device preset with seek time scaled to the reproduction."""
    if kind == "hdd":
        spec = DeviceSpec.hdd(name)
    elif kind == "ssd":
        spec = DeviceSpec.ssd(name)
    else:
        raise ConfigError(f"unknown device kind {kind!r}")
    return replace(spec, seek_time=spec.seek_time / divisor)


def scaled_machine(
    memory: Union[int, str] = "4GB",
    cores: int = 4,
    num_disks: int = 1,
    disk_kind: str = "hdd",
    divisor: int = SCALE_DIVISOR,
    trace: bool = False,
) -> Machine:
    """The paper's test bed at reproduction scale.

    ``memory`` is quoted at *paper* scale ("4GB", "256MB", ...) and divided
    by the divisor; disks get scaled seek times.  ``trace=True`` keeps the
    full request trace for Gantt rendering.
    """
    specs = [scaled_device(disk_kind, f"{disk_kind}{i}", divisor) for i in range(num_disks)]
    return Machine(
        specs, memory=scaled_bytes(memory, divisor), cores=cores, trace=trace
    )


def scaled_engine_config(
    divisor: int = SCALE_DIVISOR, **overrides
) -> EngineConfig:
    """X-Stream config with paper buffer sizes scaled down."""
    base = dict(
        edge_buffer_bytes=scaled_bytes(PAPER_EDGE_BUFFER, divisor),
        update_buffer_bytes=scaled_bytes(PAPER_UPDATE_BUFFER, divisor),
    )
    base.update(overrides)
    return EngineConfig(**base)


def scaled_fastbfs_config(
    divisor: int = SCALE_DIVISOR, **overrides
) -> FastBFSConfig:
    """FastBFS config with paper buffer sizes scaled down."""
    base = dict(
        edge_buffer_bytes=scaled_bytes(PAPER_EDGE_BUFFER, divisor),
        update_buffer_bytes=scaled_bytes(PAPER_UPDATE_BUFFER, divisor),
        stay_buffer_bytes=scaled_bytes(PAPER_STAY_BUFFER, divisor),
    )
    base.update(overrides)
    return FastBFSConfig(**base)


def scaled_graphchi_config(
    divisor: int = SCALE_DIVISOR, **overrides
) -> GraphChiConfig:
    """GraphChi config (record sizes are per-item; nothing to scale)."""
    return GraphChiConfig(**overrides)
