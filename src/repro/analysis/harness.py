"""Experiment runner: build datasets, run engines, memoize, compare.

Figures 4, 5 and 6 report different metrics of the *same* runs; the runner
memoizes each (dataset, engine, hardware) execution so every bench file can
ask for its metric without re-running the traversal.  Roots are chosen
deterministically as the maximum-out-degree vertex (a hub, so the traversal
covers the giant component — the paper does not specify its roots).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis.calibration import (
    SCALE_DIVISOR,
    scaled_engine_config,
    scaled_fastbfs_config,
    scaled_graphchi_config,
    scaled_machine,
)
from repro.core.config import FastBFSConfig
from repro.core.engine import FastBFSEngine
from repro.engines.graphchi import GraphChiEngine
from repro.engines.result import EngineResult
from repro.engines.xstream import XStreamEngine
from repro.errors import ConfigError
from repro.graph.datasets import build_dataset, scale_divisor
from repro.graph.graph import Graph


def default_root(graph: Graph) -> int:
    """Deterministic traversal root: the highest-out-degree vertex (a hub)."""
    return int(np.argmax(graph.out_degrees()))


def peripheral_root(graph: Graph) -> int:
    """A root on the periphery of the giant component.

    BFS depth shrinks logarithmically when a graph is scaled down, which
    under-states X-Stream's per-iteration waste relative to the paper's
    full-size runs.  Starting from the periphery (the deepest BFS level of
    a hub traversal, choosing its best-connected vertex) restores the
    paper's iteration counts while traversing the same component.  Falls
    back to the hub when the peripheral start reaches too little of it.
    """
    from repro.algorithms.reference import bfs_levels  # local: avoid cycle

    hub = default_root(graph)
    hub_levels = bfs_levels(graph, hub)
    hub_reach = int((hub_levels >= 0).sum())
    out_deg = graph.out_degrees()
    best = hub
    for depth in range(int(hub_levels.max()), 0, -1):
        candidates = np.flatnonzero((hub_levels == depth) & (out_deg > 0))
        if len(candidates) == 0:
            continue
        cand = int(candidates[np.argmax(out_deg[candidates])])
        reach = int((bfs_levels(graph, cand) >= 0).sum())
        if reach >= 0.5 * hub_reach:
            return cand
        best = hub  # deepest level is a dead end; try one shallower
    return best


@dataclass
class ComparisonRow:
    """One (dataset, engine) cell of a comparison figure."""

    dataset: str
    engine: str
    result: EngineResult

    @property
    def time(self) -> float:
        return self.result.execution_time

    @property
    def input_bytes(self) -> int:
        return self.result.report.bytes_read

    @property
    def total_bytes(self) -> int:
        return self.result.report.bytes_total

    @property
    def iowait_ratio(self) -> float:
        return self.result.report.iowait_ratio


class ExperimentRunner:
    """Builds scaled machines/configs and memoizes engine runs."""

    ENGINE_NAMES = ("graphchi", "x-stream", "fastbfs")

    def __init__(
        self,
        divisor: Optional[int] = None,
        seed: int = 1,
        memory: str = "4GB",
        cores: int = 4,
    ) -> None:
        # Default to the dataset registry's (env-overridable) divisor so one
        # REPRO_SCALE_DIVISOR setting rescales datasets, memory, buffers and
        # seek times together.
        self.divisor = divisor if divisor is not None else scale_divisor()
        self.seed = seed
        self.memory = memory
        self.cores = cores
        self._graphs: Dict[str, Graph] = {}
        self._roots: Dict[str, int] = {}
        self._runs: Dict[Tuple, EngineResult] = {}
        # Traced-run memo: key -> (result, machine, tracer), kept separate
        # from _runs so untraced benches never pay span allocation.
        self._traced_runs: Dict[Tuple, Tuple] = {}
        # Staged-artifact memo: key -> (engine, staged, post-staging
        # checkpoint).  Lets query-level benches traverse the same staged
        # graph repeatedly without re-splitting the edge list.
        self._staged: Dict[Tuple, Tuple] = {}

    # ------------------------------------------------------------------
    def graph(self, dataset: str) -> Graph:
        if dataset not in self._graphs:
            self._graphs[dataset] = build_dataset(
                dataset, divisor=self.divisor, seed=self.seed
            )
        return self._graphs[dataset]

    def root(self, dataset: str) -> int:
        # Hub root: the stand-ins carry their own depth tail (whiskers), so
        # the traversal shape matches full-scale runs from a typical root.
        if dataset not in self._roots:
            self._roots[dataset] = default_root(self.graph(dataset))
        return self._roots[dataset]

    def machine(self, disk_kind: str = "hdd", num_disks: int = 1, memory=None):
        return scaled_machine(
            memory=memory if memory is not None else self.memory,
            cores=self.cores,
            num_disks=num_disks,
            disk_kind=disk_kind,
            divisor=self.divisor,
        )

    def _engine(self, name: str, threads: int, overrides: dict):
        if name == "fastbfs":
            return FastBFSEngine(
                scaled_fastbfs_config(self.divisor, threads=threads, **overrides)
            )
        if name == "fastbfs-2disk":
            merged = dict(rotate_streams=True)
            merged.update(overrides)
            return FastBFSEngine(
                scaled_fastbfs_config(self.divisor, threads=threads, **merged)
            )
        if name == "x-stream":
            return XStreamEngine(
                scaled_engine_config(self.divisor, threads=threads, **overrides)
            )
        if name == "graphchi":
            return GraphChiEngine(
                scaled_graphchi_config(self.divisor, threads=threads, **overrides)
            )
        raise ConfigError(f"unknown engine {name!r}")

    # ------------------------------------------------------------------
    def run(
        self,
        dataset: str,
        engine: str,
        disk_kind: str = "hdd",
        num_disks: int = 1,
        memory: Optional[str] = None,
        threads: int = 4,
        **config_overrides,
    ) -> EngineResult:
        """Run one engine on one dataset and memoize the result."""
        key = (
            dataset,
            engine,
            disk_kind,
            num_disks,
            memory or self.memory,
            threads,
            tuple(sorted(config_overrides.items())),
        )
        if key not in self._runs:
            graph = self.graph(dataset)
            machine = self.machine(disk_kind, num_disks, memory)
            eng = self._engine(engine, threads, config_overrides)
            self._runs[key] = eng.run(graph, machine, root=self.root(dataset))
        return self._runs[key]

    def run_traced(
        self,
        dataset: str,
        engine: str,
        disk_kind: str = "hdd",
        num_disks: int = 1,
        memory: Optional[str] = None,
        threads: int = 4,
        host_clock=None,
        **config_overrides,
    ) -> Tuple[EngineResult, object, object]:
        """Like :meth:`run`, but with a span tracer attached.

        Returns ``(result, machine, tracer)`` so callers can profile the
        trace and reconcile counters against the machine's report.
        Memoized separately from :meth:`run` (tracing on vs. off is
        bit-for-bit identical in timings, but the memo keeps each world's
        objects intact).  ``host_clock`` binds a
        :class:`~repro.obs.hostprof.HostClock` to the tracer for
        dual-clock profiling — host stamps on every span, simulated
        results untouched; host-clocked runs are memoized apart from
        single-clock ones (host durations are a property of *this*
        execution, not of the simulated result).
        """
        from repro.obs.tracer import Tracer  # local: keep obs optional here

        key = (
            dataset,
            engine,
            disk_kind,
            num_disks,
            memory or self.memory,
            threads,
            host_clock is not None,
            tuple(sorted(config_overrides.items())),
        )
        if key not in self._traced_runs:
            graph = self.graph(dataset)
            machine = self.machine(disk_kind, num_disks, memory)
            tracer = Tracer()
            machine.attach_tracer(tracer)
            if host_clock is not None:
                tracer.bind_host_clock(host_clock)
            eng = self._engine(engine, threads, config_overrides)
            result = eng.run(graph, machine, root=self.root(dataset))
            self._traced_runs[key] = (result, machine, tracer)
        return self._traced_runs[key]

    def run_query(
        self,
        dataset: str,
        engine: str,
        root: int,
        disk_kind: str = "hdd",
        num_disks: int = 1,
        memory: Optional[str] = None,
        threads: int = 4,
        **config_overrides,
    ) -> EngineResult:
        """One query against a memoized staged artifact.

        The (dataset, engine, hardware) staging is performed once and
        cached with its post-staging checkpoint; each call rewinds the
        machine and runs a fresh query session, so results are per-query
        deltas and repeated roots are deterministic.  The edge-centric
        engines only — GraphChi's front door is :meth:`run`/``run_many``.
        """
        if engine == "graphchi":
            raise ConfigError(
                "run_query drives the staged-graph session protocol; "
                "use run()/run_many() for graphchi"
            )
        key = (
            dataset,
            engine,
            disk_kind,
            num_disks,
            memory or self.memory,
            threads,
            tuple(sorted(config_overrides.items())),
        )
        if key not in self._staged:
            graph = self.graph(dataset)
            machine = self.machine(disk_kind, num_disks, memory)
            eng = self._engine(engine, threads, config_overrides)
            staged = eng.stage(graph, machine)
            self._staged[key] = (eng, staged, machine.checkpoint())
        eng, staged, checkpoint = self._staged[key]
        staged.machine.restore(checkpoint)
        return eng.session(staged).run(root=root)

    def run_batch(
        self,
        dataset: str,
        engine: str,
        roots: Iterable,
        disk_kind: str = "hdd",
        num_disks: int = 1,
        memory: Optional[str] = None,
        threads: int = 4,
        mode: str = "serial",
        **config_overrides,
    ):
        """One ``run_many`` batch with per-query observability attached.

        Not memoized (each call is a fresh staging + batch).  ``mode``
        selects the scheduler policy (``"serial"`` rewind-per-query or
        ``"batched"`` MS-BFS shared scans).  The returned
        :class:`~repro.engines.result.BatchResult` carries a batch-wide
        :class:`~repro.obs.CounterRegistry` as ``metrics`` and a per-query
        registry on every ``queries`` entry, built from that query's delta
        report — so per-query byte counters reconcile with per-query
        :class:`IOReport` totals by construction.
        """
        from repro.obs.counters import CounterRegistry

        graph = self.graph(dataset)
        machine = self.machine(disk_kind, num_disks, memory)
        eng = self._engine(engine, threads, config_overrides)
        batch = eng.run_many(graph, machine, roots=list(roots), mode=mode)
        registry = CounterRegistry.from_machine(machine)
        for q in batch.queries:
            q.metrics = CounterRegistry.from_report(q.report).ingest_result(q)
            registry.ingest_result(q)
        batch.metrics = registry
        return batch

    def compare(
        self,
        dataset: str,
        disk_kind: str = "hdd",
        engines: Iterable[str] = ENGINE_NAMES,
        **kwargs,
    ) -> Dict[str, ComparisonRow]:
        """The Fig. 4/5/6/7 comparison for one dataset."""
        num_disks = 2 if any("2disk" in e for e in engines) else 1
        return {
            name: ComparisonRow(
                dataset, name, self.run(dataset, name, disk_kind, num_disks, **kwargs)
            )
            for name in engines
        }

    # ------------------------------------------------------------------
    def speedup(
        self, dataset: str, slow: str, fast: str, disk_kind: str = "hdd", **kwargs
    ) -> float:
        """Execution-time ratio slow/fast (>1 means ``fast`` wins)."""
        t_slow = self.run(dataset, slow, disk_kind, **kwargs).execution_time
        t_fast = self.run(dataset, fast, disk_kind, **kwargs).execution_time
        return t_slow / t_fast

    def input_reduction(self, dataset: str, disk_kind: str = "hdd") -> float:
        """Fraction of X-Stream's input bytes that FastBFS avoids."""
        x = self.run(dataset, "x-stream", disk_kind).report.bytes_read
        f = self.run(dataset, "fastbfs", disk_kind).report.bytes_read
        return 1.0 - f / x if x else 0.0

    def total_reduction(self, dataset: str, disk_kind: str = "hdd") -> float:
        """Fraction of X-Stream's total (read+write) bytes FastBFS avoids."""
        x = self.run(dataset, "x-stream", disk_kind).report.bytes_total
        f = self.run(dataset, "fastbfs", disk_kind).report.bytes_total
        return 1.0 - f / x if x else 0.0


#: Process-wide runner shared by the benchmark files (Figs. 4-6 reuse runs).
_shared: Optional[ExperimentRunner] = None


def shared_runner() -> ExperimentRunner:
    global _shared
    if _shared is None:
        _shared = ExperimentRunner()
    return _shared
