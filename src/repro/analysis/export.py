"""Machine-readable export of experiment results.

The table renderers produce human-readable text; downstream plotting
(matplotlib, gnuplot, a spreadsheet) wants rows.  This module flattens
:class:`EngineResult` objects into plain dicts and writes JSON or CSV.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, List, Mapping, Union

from repro.engines.result import EngineResult
from repro.errors import ConfigError


def result_to_record(
    result: EngineResult, **context
) -> Dict[str, object]:
    """Flatten one engine run into a JSON/CSV-safe dict.

    ``context`` adds experiment coordinates (dataset=, disk_kind=, ...).
    """
    record: Dict[str, object] = dict(context)
    record.update(
        {
            "engine": result.engine,
            "algorithm": result.algorithm,
            "graph": result.graph_name,
            "execution_time_s": result.execution_time,
            "compute_time_s": result.report.compute_time,
            "iowait_time_s": result.report.iowait_time,
            "iowait_ratio": result.report.iowait_ratio,
            "bytes_read": result.report.bytes_read,
            "bytes_written": result.report.bytes_written,
            "iterations": result.num_iterations,
            "edges_scanned": result.edges_scanned,
            "updates_generated": result.updates_generated,
        }
    )
    for key, value in sorted(result.extras.items()):
        record[f"extra_{key}"] = value
    return record


def iteration_records(
    result: EngineResult, **context
) -> List[Dict[str, object]]:
    """One record per scatter iteration (for per-level plots)."""
    rows = []
    for it in result.iterations:
        row: Dict[str, object] = dict(context)
        row.update(
            {
                "engine": result.engine,
                "graph": result.graph_name,
                "iteration": it.iteration,
                "edges_scanned": it.edges_scanned,
                "updates_generated": it.updates_generated,
                "activated": it.activated,
                "partitions_processed": it.partitions_processed,
                "partitions_skipped": it.partitions_skipped,
                "stay_records_written": it.stay_records_written,
                "stay_swaps": it.stay_swaps,
                "stay_cancellations": it.stay_cancellations,
                "clock_end_s": it.clock_end,
            }
        )
        rows.append(row)
    return rows


def write_json(
    records: Iterable[Mapping[str, object]],
    path: Union[str, os.PathLike],
) -> None:
    """Write records as a JSON array."""
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(list(records), fh, indent=2, sort_keys=True, default=float)
        fh.write("\n")


def write_csv(
    records: Iterable[Mapping[str, object]],
    path: Union[str, os.PathLike],
) -> None:
    """Write records as CSV (union of keys, sorted, missing cells empty)."""
    records = [dict(r) for r in records]
    if not records:
        raise ConfigError("no records to export")
    fields = sorted({key for r in records for key in r})
    with open(os.fspath(path), "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, restval="")
        writer.writeheader()
        writer.writerows(records)
