"""Text renderers for the paper's tables and figure data.

Benchmarks print through these so ``pytest benchmarks/ --benchmark-only``
regenerates every table/figure as aligned text, with the paper's claimed
values alongside the measured ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis import paper
from repro.analysis.harness import ComparisonRow
from repro.graph.datasets import DATASETS
from repro.graph.graph import Graph
from repro.utils.units import format_bytes, format_seconds


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Align columns; floats get 3 significant digits."""
    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3g}"
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def representation_table() -> str:
    """Table I: graph representation comparison (structural, from the text)."""
    return format_table(
        ["System", "Vertex", "Edge", "Intermediate"],
        [
            ["GraphChi", "vertex sets", "in-edge sets", "-"],
            ["X-Stream", "vertex sets", "out-edge sets", "update files"],
            ["FastBFS", "vertex sets", "out-edge sets", "update files, stay files"],
        ],
        title="Table I. Graph representation comparison",
    )


def datasets_table(graphs: Dict[str, Graph]) -> str:
    """Table II: paper datasets vs the regenerated scaled stand-ins."""
    rows: List[List[object]] = []
    for name, spec in DATASETS.items():
        g = graphs.get(name)
        rows.append(
            [
                name,
                f"{spec.paper_vertices/1e6:.1f}M",
                f"{spec.paper_edges/1e6:.1f}M",
                format_bytes(spec.paper_size_bytes),
                f"{g.num_vertices:,}" if g else "-",
                f"{g.num_edges:,}" if g else "-",
                format_bytes(g.nbytes) if g else "-",
                g.meta.get("scale_divisor", "-") if g else "-",
            ]
        )
    return format_table(
        [
            "Graph", "paper V", "paper E", "paper size",
            "repro V", "repro E", "repro size", "divisor",
        ],
        rows,
        title="Table II. Experimental graphs (paper vs scaled stand-in)",
    )


def comparison_table(
    rows_by_dataset: Dict[str, Dict[str, ComparisonRow]],
    metric: str,
    title: str,
) -> str:
    """Datasets x engines matrix of one metric.

    ``metric`` is one of ``time``, ``input``, ``total``, ``iowait``.
    """
    getters = {
        "time": lambda r: format_seconds(r.time),
        "input": lambda r: format_bytes(r.input_bytes),
        "total": lambda r: format_bytes(r.total_bytes),
        "iowait": lambda r: f"{r.iowait_ratio:.1%}",
    }
    get = getters[metric]
    engines: List[str] = []
    for per_engine in rows_by_dataset.values():
        for e in per_engine:
            if e not in engines:
                engines.append(e)
    table_rows = []
    for dataset, per_engine in rows_by_dataset.items():
        table_rows.append(
            [dataset] + [get(per_engine[e]) if e in per_engine else "-" for e in engines]
        )
    return format_table(["dataset"] + engines, table_rows, title=title)


def speedup_table(
    speedups: Dict[str, Dict[str, float]],
    claims: Dict[str, paper.Claim],
    title: str,
) -> str:
    """Per-dataset speedups with the paper's claimed range per column."""
    columns = list(next(iter(speedups.values())).keys()) if speedups else []
    rows = []
    for dataset, per_col in speedups.items():
        rows.append([dataset] + [f"{per_col[c]:.2f}x" for c in columns])
    claim_row = ["paper range"]
    for c in columns:
        claim = claims.get(c)
        claim_row.append(f"{claim.low:.1f}-{claim.high:.1f}x" if claim else "-")
    rows.append(claim_row)
    return format_table(["dataset"] + columns, rows, title=title)
