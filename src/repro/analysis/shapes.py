"""Executable shape claims.

``repro.analysis.paper.SHAPE_CLAIMS`` lists the paper's qualitative claims
as prose; this module makes each one *runnable*: a named check that takes
the shared :class:`ExperimentRunner` and returns pass/fail with the
measured evidence.  ``check_all`` produces the EXPERIMENTS.md scoreboard
programmatically, and the test suite asserts every check passes at a small
scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis import paper
from repro.analysis.harness import ExperimentRunner
from repro.analysis.tables import format_table
from repro.graph.datasets import BIG_DATASETS


@dataclass
class ShapeResult:
    """Outcome of one executable claim."""

    figure: str
    claim: str
    passed: bool
    evidence: str


_CHECKS: List = []


def _check(figure: str, claim: str):
    def register(fn: Callable[[ExperimentRunner, List[str]], ShapeResult]):
        def wrapper(runner, datasets):
            passed, evidence = fn(runner, datasets)
            return ShapeResult(figure, claim, passed, evidence)

        _CHECKS.append(wrapper)
        return wrapper

    return register


def _times(runner, ds, disk="hdd"):
    return {
        name: runner.run(ds, name, disk).execution_time
        for name in ("graphchi", "x-stream", "fastbfs")
    }


@_check("fig4", "FastBFS fastest on every dataset (HDD)")
def _fastest(runner, datasets):
    worst = ""
    for ds in datasets:
        t = _times(runner, ds)
        if not (t["fastbfs"] < t["x-stream"] and t["fastbfs"] < t["graphchi"]):
            return False, f"{ds}: {t}"
        worst += f"{ds} ok; "
    return True, worst.strip()


@_check("fig4", "GraphChi slowest on every dataset (HDD)")
def _graphchi_slowest(runner, datasets):
    for ds in datasets:
        t = _times(runner, ds)
        if t["graphchi"] < max(t.values()):
            return False, f"{ds}: {t}"
    return True, "all datasets"


@_check("fig5", "FastBFS reads the least input data")
def _least_input(runner, datasets):
    for ds in datasets:
        reads = {
            name: runner.run(ds, name, "hdd").report.bytes_read
            for name in ("graphchi", "x-stream", "fastbfs")
        }
        if reads["fastbfs"] != min(reads.values()):
            return False, f"{ds}: {reads}"
    return True, "all datasets"


@_check("fig5", "input reduction vs X-Stream is substantial (>50%)")
def _input_reduction(runner, datasets):
    values = {ds: runner.input_reduction(ds) for ds in datasets}
    ok = all(v > 0.5 for v in values.values())
    return ok, ", ".join(f"{ds}={v:.0%}" for ds, v in values.items())


@_check("fig6", "GraphChi iowait ratio below the streaming engines'")
def _iowait_order(runner, datasets):
    for ds in datasets:
        ratios = {
            name: runner.run(ds, name, "hdd").report.iowait_ratio
            for name in ("graphchi", "x-stream", "fastbfs")
        }
        if not (ratios["graphchi"] < ratios["x-stream"]
                and ratios["graphchi"] < ratios["fastbfs"]):
            return False, f"{ds}: {ratios}"
    return True, "all datasets"


@_check("fig7", "SSD is faster than HDD for all three systems")
def _ssd_faster(runner, datasets):
    ds = datasets[0]
    hdd, ssd = _times(runner, ds, "hdd"), _times(runner, ds, "ssd")
    ok = all(ssd[n] < hdd[n] for n in hdd)
    return ok, f"{ds}: gains " + ", ".join(
        f"{n}={hdd[n]/ssd[n]:.2f}x" for n in hdd
    )


@_check("fig8", "thread count does not help (I/O bound)")
def _threads_flat(runner, datasets):
    times = {
        t: runner.run("rmat22", "x-stream", threads=t, memory="2GB")
        .execution_time
        for t in (1, 4)
    }
    ratio = times[4] / times[1]
    return 0.8 <= ratio <= 1.2, f"t4/t1 = {ratio:.2f}"


@_check("fig8", "threads beyond core count degrade performance")
def _oversubscribe(runner, datasets):
    t4 = runner.run("rmat22", "fastbfs", threads=4, memory="2GB").execution_time
    t8 = runner.run("rmat22", "fastbfs", threads=8, memory="2GB").execution_time
    return t8 > t4, f"t8/t4 = {t8/t4:.3f}"


@_check("fig9", "4GB engages in-memory mode with a sharp drop")
def _memory_cliff(runner, datasets):
    t2 = runner.run("rmat22", "x-stream", memory="2GB")
    t4 = runner.run("rmat22", "x-stream", memory="4GB")
    ok = (
        t4.extras["in_memory"] == 1.0
        and t2.extras["in_memory"] == 0.0
        and t4.execution_time < 0.6 * t2.execution_time
    )
    return ok, (
        f"2GB={t2.execution_time:.3f}s (disk), "
        f"4GB={t4.execution_time:.3f}s (ram)"
    )


@_check("fig10", "two disks beat one disk which beats X-Stream")
def _two_disks(runner, datasets):
    ds = datasets[0]
    xs = runner.run(ds, "x-stream", "hdd").execution_time
    one = runner.run(ds, "fastbfs", "hdd").execution_time
    two = runner.run(ds, "fastbfs-2disk", "hdd", num_disks=2).execution_time
    return two < one < xs, f"{ds}: xs={xs:.3f}s 1d={one:.3f}s 2d={two:.3f}s"


def check_all(
    runner: Optional[ExperimentRunner] = None,
    datasets: Optional[List[str]] = None,
) -> List[ShapeResult]:
    """Run every executable shape claim; returns one result per claim."""
    runner = runner if runner is not None else ExperimentRunner()
    datasets = datasets if datasets is not None else list(BIG_DATASETS)
    return [check(runner, datasets) for check in _CHECKS]


def scoreboard(results: List[ShapeResult]) -> str:
    """Render shape-check results as the EXPERIMENTS.md-style table."""
    rows = [
        [r.figure, r.claim, "PASS" if r.passed else "FAIL", r.evidence]
        for r in results
    ]
    return format_table(
        ["figure", "claim", "verdict", "evidence"], rows,
        title="Executable shape claims",
    )
