"""Experiment infrastructure: calibration, paper claims, harness, tables.

* :mod:`repro.analysis.calibration` — the single scale divisor that maps
  the paper's test bed onto the reduced-scale reproduction, plus factories
  for scaled machines and engine configs;
* :mod:`repro.analysis.paper` — every quantitative claim from the paper's
  evaluation section, as data;
* :mod:`repro.analysis.harness` — run + memoize the engine comparisons the
  figures share, pick roots, compute speedups;
* :mod:`repro.analysis.tables` — render paper-style tables and shape checks.
"""

from repro.analysis.calibration import (
    SCALE_DIVISOR,
    scaled_engine_config,
    scaled_fastbfs_config,
    scaled_graphchi_config,
    scaled_machine,
)
from repro.analysis.harness import ComparisonRow, ExperimentRunner, default_root
from repro.analysis import paper

__all__ = [
    "SCALE_DIVISOR",
    "scaled_machine",
    "scaled_engine_config",
    "scaled_fastbfs_config",
    "scaled_graphchi_config",
    "ExperimentRunner",
    "ComparisonRow",
    "default_root",
    "paper",
]
