"""The paper's reported numbers, as data (IPDPS 2016, §IV).

The evaluation section quotes *ranges* across the four big datasets rather
than per-dataset values (the figures are bar charts without data labels),
so claims are stored as (low, high) ranges and qualitative shape statements.
EXPERIMENTS.md and the benchmark harness check measured values against
these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

Range = Tuple[float, float]


@dataclass(frozen=True)
class Claim:
    """One quantitative claim: a measured quantity must land in a range."""

    figure: str
    description: str
    low: float
    high: float

    def contains(self, value: float, slack: float = 0.0) -> bool:
        """Is ``value`` inside the claimed range, with relative slack?

        ``slack=0.25`` accepts values within 25% outside either end —
        reproduction bands for this paper flag the absolute numbers as
        non-portable; the *shape* obligations (who wins, roughly by how
        much) use generous slack.
        """
        lo = self.low * (1.0 - slack)
        hi = self.high * (1.0 + slack)
        return lo <= value <= hi


#: §IV-B1 / Fig. 4 — HDD execution time speedups of FastBFS.
HDD_SPEEDUP_VS_XSTREAM = Claim("fig4", "FastBFS vs X-Stream, HDD", 1.6, 2.1)
HDD_SPEEDUP_VS_GRAPHCHI = Claim("fig4", "FastBFS vs GraphChi, HDD", 2.4, 3.9)

#: §IV-B1 / Fig. 5 — input data amount reduction vs X-Stream.
INPUT_REDUCTION_VS_XSTREAM = Claim(
    "fig5", "input data reduction vs X-Stream", 0.652, 0.781
)
#: §IV-B1 — overall (read+write) data reduction vs X-Stream.
TOTAL_REDUCTION_VS_XSTREAM = Claim(
    "fig5", "overall data reduction vs X-Stream", 0.477, 0.604
)

#: §IV-B2 / Fig. 7 — SSD speedups.
SSD_SPEEDUP_VS_XSTREAM = Claim("fig7", "FastBFS vs X-Stream, SSD", 1.6, 2.3)
SSD_SPEEDUP_VS_GRAPHCHI = Claim("fig7", "FastBFS vs GraphChi, SSD", 3.7, 5.2)

#: §IV-B2 — per-system gain from moving HDD -> SSD.
SSD_GAIN: Dict[str, Claim] = {
    "graphchi": Claim("fig7", "GraphChi SSD/HDD gain", 1.2, 1.5),
    "x-stream": Claim("fig7", "X-Stream SSD/HDD gain", 1.7, 1.9),
    "fastbfs": Claim("fig7", "FastBFS SSD/HDD gain", 1.8, 2.1),
}

#: §IV-C3 / Fig. 10 — two-disk FastBFS speedups.
TWO_DISK_SPEEDUP_VS_SINGLE = Claim("fig10", "FastBFS 2 disks vs 1 disk", 1.6, 1.7)
TWO_DISK_SPEEDUP_VS_XSTREAM = Claim("fig10", "FastBFS 2 disks vs X-Stream", 2.5, 3.6)

#: Table II — dataset characteristics as published.
TABLE2 = {
    "rmat22": {"vertices": 4.2e6, "edges": 67.1e6, "size_bytes": 768 * 2**20},
    "rmat25": {"vertices": 33.6e6, "edges": 536.8e6, "size_bytes": 6 * 2**30},
    "rmat27": {"vertices": 134.2e6, "edges": 2.1e9, "size_bytes": 24 * 2**30},
    "twitter_rv": {"vertices": 61.62e6, "edges": 1.5e9, "size_bytes": 11 * 2**30},
    "friendster": {"vertices": 124.8e6, "edges": 1.8e9, "size_bytes": 14 * 2**30},
}

#: Fig. 1 — the motivating convergence example: useful edges 100% -> <88% ->
#: <55% over the first three levels of a toy 33-edge graph.
FIG1_EXAMPLE = {"total_edges": 33, "useful_after": [33, 29, 18]}

#: Qualitative shape claims (checked as booleans by the harness/tests).
SHAPE_CLAIMS = [
    ("fig4", "FastBFS fastest on every dataset (HDD)"),
    ("fig4", "GraphChi slowest on most datasets (HDD)"),
    ("fig5", "X-Stream reads the most input data"),
    ("fig5", "FastBFS reads the least input data"),
    ("fig6", "GraphChi iowait ratio below X-Stream's and FastBFS's"),
    ("fig6", "FastBFS iowait ratio >= X-Stream's"),
    ("fig7", "SSD is faster than HDD for all three systems"),
    ("fig7", "FastBFS on HDD is close to X-Stream on SSD"),
    ("fig8", "thread count does not help (I/O bound)"),
    ("fig8", "threads beyond core count degrade slightly"),
    ("fig9", "performance is flat across 256MB-2GB memory"),
    ("fig9", "4GB turns on in-memory mode and drops execution time sharply"),
    ("fig10", "two disks beat one disk which beats X-Stream"),
]
