"""Rolling time-series of serving metrics: a fixed-size ring of windows.

``/metrics`` is a point-in-time snapshot — perfect for reconciliation,
useless for "what happened over the last minute".  This module keeps the
operational view: a bounded ring of fixed-width time windows, each
aggregating the per-request and per-flush samples the admission
controller already emits — request rate, error count, queue depth,
queue-wait and (simulated) service-time distributions per graph — ready
to serve as JSON from ``GET /debug/timeseries`` and to render in
``repro top``.

Design rules:

* **Bounded.**  The ring holds at most ``capacity`` windows
  (:class:`collections.deque` with ``maxlen``); a server that runs for a
  week holds exactly as much telemetry as one that ran for an hour.
* **No wall-clock reads of its own.**  Window placement needs host time,
  which is taken through a :class:`~repro.obs.hostprof.HostClock` handle
  (default: the shared :data:`~repro.obs.hostprof.HOST_CLOCK`) — the
  sanctioned choke point of analyzer rule FB207.  Tests inject a
  :class:`~repro.obs.hostprof.ManualHostClock` and step windows
  deterministically.
* **Distributions, not averages.**  Queue wait and service time are
  :class:`~repro.obs.counters.Histogram` series per (window, graph);
  :meth:`snapshot` derives p50/p95/p99 via :meth:`Histogram.quantile`
  (:data:`~repro.obs.exporters.SUMMARY_QUANTILES`).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.obs.counters import DEFAULT_DURATION_BUCKETS, Histogram
from repro.obs.exporters import SUMMARY_QUANTILES
from repro.obs.hostprof import HOST_CLOCK, HostClock

#: Bucket bounds for host-side queue-wait seconds (sub-millisecond to
#: multi-second backlog under load); +Inf is implicit.
WAIT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0
)

#: Default window width (seconds) and ring capacity: ten minutes of
#: history at five-second resolution.
DEFAULT_WINDOW_SECONDS = 5.0
DEFAULT_CAPACITY = 120


class _GraphWindow:
    """One graph's aggregates inside one time window."""

    __slots__ = (
        "requests", "errors", "flushes", "flushed_queries",
        "queue_depth_last", "queue_depth_max", "queue_wait", "service_time",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.flushes = 0
        self.flushed_queries = 0
        self.queue_depth_last = 0
        self.queue_depth_max = 0
        self.queue_wait = Histogram(WAIT_BUCKETS)
        self.service_time = Histogram(DEFAULT_DURATION_BUCKETS)


class _Window:
    """One ring slot: window index plus per-graph aggregates."""

    __slots__ = ("index", "graphs")

    def __init__(self, index: int) -> None:
        self.index = index
        self.graphs: Dict[str, _GraphWindow] = {}

    def graph(self, name: str) -> _GraphWindow:
        gw = self.graphs.get(name)
        if gw is None:
            gw = self.graphs[name] = _GraphWindow()
        return gw


def quantile_summary(hist: Optional[Histogram]) -> Dict[str, float]:
    """count/sum/p50/p95/p99 summary of a histogram (zeros when absent)."""
    if hist is None:
        out: Dict[str, float] = {"count": 0.0, "sum": 0.0}
        for q in SUMMARY_QUANTILES:
            out[f"p{int(q * 100)}"] = 0.0
        return out
    out = {"count": hist.count, "sum": hist.sum}
    for q in SUMMARY_QUANTILES:
        out[f"p{int(q * 100)}"] = hist.quantile(q)
    return out


class TimeSeries:
    """Bounded ring of windowed serving-metric aggregates.

    Thread-safe: the HTTP threads and flush leaders all record into the
    same ring.  Windows are placed on a fixed grid anchored at the
    clock's value when the ring was created, so a quiet server simply has
    gaps (missing indices) rather than empty windows.
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        capacity: int = DEFAULT_CAPACITY,
        clock: Optional[HostClock] = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.window_seconds = float(window_seconds)
        self.capacity = int(capacity)
        self._clock = clock if clock is not None else HOST_CLOCK
        self._origin = self._clock.now()
        self._ring: "deque[_Window]" = deque(maxlen=self.capacity)
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    def _current(self) -> _Window:
        """The window covering *now*, rolling the ring forward if needed."""
        idx = int((self._clock.now() - self._origin) // self.window_seconds)
        if not self._ring or self._ring[-1].index != idx:
            self._ring.append(_Window(idx))
        return self._ring[-1]

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_request(
        self,
        graph: str,
        queue_wait: float = 0.0,
        service_time: float = 0.0,
        error: bool = False,
    ) -> None:
        """Record one finished request.

        ``queue_wait`` is host seconds spent in the admission queue;
        ``service_time`` is the request's *simulated* query seconds (what
        the ``X-Sim-Elapsed`` header reports).  Errors count toward
        ``errors`` but not into the latency histograms (a 429 has no
        meaningful service time).
        """
        with self._mutex:
            gw = self._current().graph(graph)
            gw.requests += 1
            if error:
                gw.errors += 1
                return
            gw.queue_wait.observe(queue_wait)
            gw.service_time.observe(service_time)

    def record_flush(self, graph: str, flushes: int = 1, queries: int = 0) -> None:
        """Record admission flushes (``queries`` = coalesced roots served)."""
        with self._mutex:
            gw = self._current().graph(graph)
            gw.flushes += int(flushes)
            gw.flushed_queries += int(queries)

    def sample_depth(self, graph: str, depth: int) -> None:
        """Record an admission-queue depth observation."""
        with self._mutex:
            gw = self._current().graph(graph)
            gw.queue_depth_last = int(depth)
            gw.queue_depth_max = max(gw.queue_depth_max, int(depth))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self, windows: Optional[int] = None) -> Dict[str, object]:
        """JSON-serializable view of the ring, oldest window first.

        Each window entry carries its grid ``index``, its ``start``
        offset in seconds since the ring's origin, and per-graph
        aggregates with derived ``rps`` and p50/p95/p99 summaries.
        ``windows`` limits the view to the newest N windows.
        """
        with self._mutex:
            slots = list(self._ring)
            now = self._clock.now() - self._origin
        if windows is not None:
            slots = slots[-max(0, int(windows)):]
        out_windows: List[Dict[str, object]] = []
        for slot in slots:
            graphs: Dict[str, object] = {}
            for name in sorted(slot.graphs):
                gw = slot.graphs[name]
                graphs[name] = {
                    "requests": gw.requests,
                    "errors": gw.errors,
                    "rps": gw.requests / self.window_seconds,
                    "flushes": gw.flushes,
                    "flushed_queries": gw.flushed_queries,
                    "queue_depth_last": gw.queue_depth_last,
                    "queue_depth_max": gw.queue_depth_max,
                    "queue_wait": quantile_summary(gw.queue_wait),
                    "service_time": quantile_summary(gw.service_time),
                }
            out_windows.append(
                {
                    "index": slot.index,
                    "start": slot.index * self.window_seconds,
                    "graphs": graphs,
                }
            )
        return {
            "window_seconds": self.window_seconds,
            "capacity": self.capacity,
            "now": now,
            "windows": out_windows,
        }

    def __len__(self) -> int:
        with self._mutex:
            return len(self._ring)


__all__ = [
    "DEFAULT_CAPACITY",
    "quantile_summary",
    "DEFAULT_WINDOW_SECONDS",
    "TimeSeries",
    "WAIT_BUCKETS",
]
