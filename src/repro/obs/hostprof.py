"""Dual-clock host profiling: the sanctioned wall-clock choke point.

Everything else in this repository observes *simulated* time — the
:class:`~repro.sim.clock.SimClock` the cost model advances — and the
tooling enforces it: lint rule FB108 bans ``time`` from the engine layer
outright, and analyzer rule FB207 restricts direct wall-clock reads
(``time.monotonic`` and friends, the WALLCLOCK pattern sites) to this
one module.  Host time is still a real quantity we need: the vectorized
data path on the roadmap is gated on *host seconds per simulated
second*, attributed per stage, so we can prove the pure-Python
scatter/shuffle/gather loops are the bottleneck and ratchet the scale
divisor down as the kernels get faster.

:class:`HostClock` is the choke point — a monotonic reader with no
other behaviour.  Bind one to a :class:`~repro.obs.tracer.Tracer` via
``tracer.bind_host_clock(HostClock())`` and every span the tracer
records is annotated with host-side start/end stamps *next to* its
simulated times.  The annotation is strictly neutral for simulated
results: the host clock is never read by the simulation, never charged
to the :class:`~repro.sim.clock.SimClock`, and never changes a span's
simulated ``start``/``end`` — hostprof on vs. off is bit-identical in
levels/parents, ``IOReport`` totals, simulated span timings and counter
reconciliation (locked down by ``tests/test_obs_hostprof.py``).

:class:`ManualHostClock` is the deterministic stand-in for tests: it
only moves when ``advance()`` is called, so host-duration arithmetic can
be asserted exactly.

The derived metrics — ``host_seconds_per_sim_second`` per stage and
``edges_scanned_per_host_second`` — are computed by
:mod:`repro.obs.profile` (``TraceProfile.host``) and recorded into
``BENCH_<seq>.json`` snapshots as an *informational* section (schema
v3) that the byte-determinism view and the regression gate both
exclude; see :mod:`repro.obs.bench`.
"""

from __future__ import annotations

# The ONE sanctioned wall-clock import (analyzer rule FB207): every
# other module takes host time through a HostClock handle.
import time
from typing import Iterable


class HostClock:
    """Monotonic host-time reader; the repo's only wall-clock source.

    ``now()`` returns seconds from an arbitrary origin (only differences
    are meaningful, exactly like ``time.monotonic``).  Instances carry no
    state, so one clock may be shared freely across threads.
    """

    def now(self) -> float:
        return time.monotonic()


class ManualHostClock(HostClock):
    """Deterministic host clock for tests: moves only on ``advance()``."""

    def __init__(self, start: float = 0.0) -> None:
        self._reading = float(start)

    def now(self) -> float:
        return self._reading

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"host time is monotonic; got advance({seconds})")
        self._reading += float(seconds)
        return self._reading


#: Shared process-wide clock for callers that don't need their own handle
#: (the admission controller's queue-wait stamps, the bench harness).
HOST_CLOCK = HostClock()


def host_timed_spans(spans: Iterable) -> list:
    """The subset of ``spans`` carrying host-side annotations."""
    return [sp for sp in spans if sp.host_timed]


__all__ = ["HOST_CLOCK", "HostClock", "ManualHostClock", "host_timed_spans"]
