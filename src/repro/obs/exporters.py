"""Exporters for traces and counters (JSONL spans, Prometheus text).

Two formats, both plain text, both round-trippable so tests can lock the
schemas down:

* **JSONL span trace** — one JSON object per line, each a
  :meth:`Span.to_dict` payload (``span_id``, ``parent_id``, ``name``,
  ``start``, ``end``, ``attrs``).  Loadable into any trace viewer with a
  ten-line adapter, and greppable as-is.
* **Prometheus-style text snapshot** — ``name{label="v",...} value``
  lines, sorted, with ``# TYPE`` headers.  Values are printed with
  ``repr`` so ``parse_prometheus(to_prometheus(reg)) == reg`` holds
  bit-for-bit for every float the simulation can produce.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Union

from repro.errors import ReproError
from repro.obs.counters import CounterRegistry
from repro.obs.tracer import Span, Tracer

#: Keys every JSONL trace line must carry, in emission order.
SPAN_SCHEMA = ("span_id", "parent_id", "name", "start", "end", "attrs")


class ExportError(ReproError):
    """Raised on malformed trace/metrics payloads."""


# ----------------------------------------------------------------------
# JSONL span traces
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Union[Tracer, Iterable[Span]]) -> str:
    """Serialize spans (or a whole tracer) to JSONL text."""
    if isinstance(spans, Tracer):
        spans = spans.spans
    lines = [json.dumps(sp.to_dict(), sort_keys=True) for sp in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(spans: Union[Tracer, Iterable[Span]], path: str) -> int:
    """Write a JSONL trace file; returns the number of spans written."""
    text = spans_to_jsonl(spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text.count("\n")


def parse_spans_jsonl(text: str) -> List[Span]:
    """Rebuild :class:`Span` objects from JSONL text (schema-checked)."""
    out: List[Span] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ExportError(f"trace line {lineno} is not JSON: {exc}") from None
        missing = [k for k in SPAN_SCHEMA if k not in obj]
        if missing:
            raise ExportError(
                f"trace line {lineno} missing keys {missing} (schema {SPAN_SCHEMA})"
            )
        out.append(
            Span(
                span_id=int(obj["span_id"]),
                parent_id=obj["parent_id"],
                name=str(obj["name"]),
                start=float(obj["start"]),
                end=float(obj["end"]),
                attrs=dict(obj["attrs"]),
            )
        )
    return out


def read_spans_jsonl(path: str) -> List[Span]:
    with open(path, "r", encoding="utf-8") as fh:
        return parse_spans_jsonl(fh.read())


# ----------------------------------------------------------------------
# Prometheus-style text snapshots
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
    return "".join(out)


def _format_value(value: float) -> str:
    # repr() round-trips floats exactly; print integral values as ints
    # for readability (they parse back to the same float).
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def to_prometheus(registry: CounterRegistry) -> str:
    """Render a registry as Prometheus exposition text (sorted, typed)."""
    lines: List[str] = []
    last_name = None
    for name, labels, value in registry.items():
        if name != last_name:
            kind = "counter" if name.endswith("_total") else "gauge"
            lines.append(f"# TYPE {name} {kind}")
            last_name = name
        if labels:
            body = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
            )
            lines.append(f"{name}{{{body}}} {_format_value(value)}")
        else:
            lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: CounterRegistry, path: str) -> int:
    """Write a metrics snapshot; returns the number of series written."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prometheus(registry))
    return len(registry)


def parse_prometheus(text: str) -> CounterRegistry:
    """Parse exposition text back into a :class:`CounterRegistry`.

    Inverse of :func:`to_prometheus` (``# TYPE``/comment lines are
    skipped); tolerant of any label ordering within a series.
    """
    reg = CounterRegistry()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if "{" in line:
                name, rest = line.split("{", 1)
                body, tail = rest.rsplit("}", 1)
                value = float(tail.strip())
                labels = _parse_labels(body, lineno)
            else:
                name, tail = line.rsplit(" ", 1)
                value = float(tail)
                labels = {}
        except (ValueError, ExportError) as exc:
            raise ExportError(f"metrics line {lineno} malformed: {exc}") from None
        reg.inc(name.strip(), value, **labels)
    return reg


def _parse_labels(body: str, lineno: int) -> dict:
    labels: dict = {}
    i = 0
    n = len(body)
    while i < n:
        eq = body.index("=", i)
        key = body[i:eq].strip().lstrip(",").strip()
        if body[eq + 1] != '"':
            raise ExportError(f'label value for {key!r} not quoted (line {lineno})')
        j = eq + 2
        raw: List[str] = []
        while j < n:
            ch = body[j]
            if ch == "\\":
                raw.append(body[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ExportError(f"unterminated label value (line {lineno})")
        labels[key] = _unescape_label("".join(raw))
        i = j + 1
    return labels


__all__ = [
    "SPAN_SCHEMA",
    "ExportError",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "parse_spans_jsonl",
    "read_spans_jsonl",
    "to_prometheus",
    "write_prometheus",
    "parse_prometheus",
]
