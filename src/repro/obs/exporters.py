"""Exporters for traces and counters (JSONL spans, Prometheus text).

Two formats, both plain text, both round-trippable so tests can lock the
schemas down:

* **JSONL span trace** — one JSON object per line, each a
  :meth:`Span.to_dict` payload (``span_id``, ``parent_id``, ``name``,
  ``start``, ``end``, ``attrs``).  Loadable into any trace viewer with a
  ten-line adapter, and greppable as-is.
* **Prometheus-style text snapshot** — ``name{label="v",...} value``
  lines, sorted, with ``# TYPE`` headers.  Values are printed with
  ``repr`` so ``parse_prometheus(to_prometheus(reg)) == reg`` holds
  bit-for-bit for every float the simulation can produce.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Tuple, Union

from repro.errors import ReproError
from repro.obs.counters import CounterRegistry, Histogram
from repro.obs.tracer import Span, Tracer

#: Keys every JSONL trace line must carry, in emission order.
SPAN_SCHEMA = ("span_id", "parent_id", "name", "start", "end", "attrs")

#: Content type of the text exposition format `to_prometheus` emits
#: (what a scraper expects on a ``/metrics`` endpoint).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4"

#: Quantiles summarized alongside every histogram family, both in the
#: exposition text (``name{...,quantile="0.95"}`` lines) and in the
#: serving layer's stats/timeseries payloads.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


class ExportError(ReproError):
    """Raised on malformed trace/metrics payloads."""


# ----------------------------------------------------------------------
# JSONL span traces
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Union[Tracer, Iterable[Span]]) -> str:
    """Serialize spans (or a whole tracer) to JSONL text."""
    if isinstance(spans, Tracer):
        spans = spans.spans
    lines = [json.dumps(sp.to_dict(), sort_keys=True) for sp in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(spans: Union[Tracer, Iterable[Span]], path: str) -> int:
    """Write a JSONL trace file; returns the number of spans written."""
    text = spans_to_jsonl(spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text.count("\n")


def parse_spans_jsonl(text: str) -> List[Span]:
    """Rebuild :class:`Span` objects from JSONL text (schema-checked)."""
    out: List[Span] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ExportError(f"trace line {lineno} is not JSON: {exc}") from None
        missing = [k for k in SPAN_SCHEMA if k not in obj]
        if missing:
            raise ExportError(
                f"trace line {lineno} missing keys {missing} (schema {SPAN_SCHEMA})"
            )
        out.append(
            Span(
                span_id=int(obj["span_id"]),
                parent_id=obj["parent_id"],
                name=str(obj["name"]),
                start=float(obj["start"]),
                end=float(obj["end"]),
                attrs=dict(obj["attrs"]),
                # Host stamps are optional: only dual-clock (hostprof)
                # traces carry them, and they round-trip when present.
                host_start=float(obj.get("host_start", -1.0)),
                host_end=float(obj.get("host_end", -1.0)),
            )
        )
    return out


def read_spans_jsonl(path: str) -> List[Span]:
    with open(path, "r", encoding="utf-8") as fh:
        return parse_spans_jsonl(fh.read())


# ----------------------------------------------------------------------
# Prometheus-style text snapshots
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
    return "".join(out)


def _format_value(value: float) -> str:
    # repr() round-trips floats exactly; print integral values as ints
    # for readability (they parse back to the same float).
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def _series_line(name: str, labels: dict, value: float) -> str:
    if labels:
        body = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def to_prometheus(registry: CounterRegistry) -> str:
    """Render a registry as Prometheus exposition text (sorted, typed).

    Scalar series come first (``counter`` iff the name ends in ``_total``,
    else ``gauge``), then histogram families: cumulative
    ``<name>_bucket{le="..."}`` lines plus ``<name>_sum``/``<name>_count``
    under a ``# TYPE <name> histogram`` header, followed by derived
    ``<name>{...,quantile="..."}`` summary lines (p50/p95/p99, see
    :data:`SUMMARY_QUANTILES`).  The quantile lines are informational —
    :func:`parse_prometheus` skips them because the bucket lines already
    carry the full distribution — so the round-trip stays exact.
    """
    lines: List[str] = []
    last_name = None
    for name, labels, value in registry.items():
        if name != last_name:
            kind = "counter" if name.endswith("_total") else "gauge"
            lines.append(f"# TYPE {name} {kind}")
            last_name = name
        lines.append(_series_line(name, labels, value))
    last_name = None
    for name, labels, hist in registry.histograms():
        if name != last_name:
            lines.append(f"# TYPE {name} histogram")
            last_name = name
        for bound, cum in hist.cumulative():
            le_labels = dict(labels)
            le_labels["le"] = _format_value(bound)
            lines.append(_series_line(f"{name}_bucket", le_labels, cum))
        lines.append(_series_line(f"{name}_sum", labels, hist.sum))
        lines.append(_series_line(f"{name}_count", labels, hist.count))
        for q in SUMMARY_QUANTILES:
            q_labels = dict(labels)
            q_labels["quantile"] = _format_value(q)
            lines.append(_series_line(name, q_labels, hist.quantile(q)))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: CounterRegistry, path: str) -> int:
    """Write a metrics snapshot; returns the number of series written."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prometheus(registry))
    return len(registry)


def parse_prometheus(text: str) -> CounterRegistry:
    """Parse exposition text back into a :class:`CounterRegistry`.

    Inverse of :func:`to_prometheus`; tolerant of any label ordering
    within a series.  Families declared ``# TYPE <name> histogram`` are
    reassembled from their ``_bucket``/``_sum``/``_count`` lines back into
    :class:`Histogram` series (so the round-trip is exact); all other
    ``# TYPE``/comment lines are skipped.
    """
    reg = CounterRegistry()
    hist_names: set = set()
    partial: Dict[Tuple[str, tuple], Dict[str, object]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE" and parts[3] == "histogram":
                hist_names.add(parts[2])
            continue
        try:
            if "{" in line:
                name, rest = line.split("{", 1)
                body, tail = rest.rsplit("}", 1)
                value = float(tail.strip())
                labels = _parse_labels(body, lineno)
            else:
                name, tail = line.rsplit(" ", 1)
                value = float(tail)
                labels = {}
        except (ValueError, ExportError) as exc:
            raise ExportError(f"metrics line {lineno} malformed: {exc}") from None
        name = name.strip()
        if name in hist_names and "quantile" in labels:
            # Derived p50/p95/p99 summary line for a histogram family;
            # the bucket lines carry the full distribution, so folding
            # these in would double-count.
            continue
        base, part = _histogram_part(name, hist_names)
        if base is None:
            reg.inc(name, value, **labels)
            continue
        if part == "bucket":
            try:
                le = float(labels.pop("le"))
            except KeyError:
                raise ExportError(
                    f"metrics line {lineno}: histogram bucket without le label"
                ) from None
        entry = partial.setdefault(
            (base, tuple(sorted(labels.items()))),
            {"cum": [], "sum": 0.0, "count": 0.0},
        )
        if part == "bucket":
            entry["cum"].append((le, value))  # type: ignore[union-attr]
        else:
            entry[part] = value
    for (base, label_items), entry in partial.items():
        reg.add_histogram(
            base, _rebuild_histogram(base, entry), **dict(label_items)
        )
    return reg


def _histogram_part(name: str, hist_names: set):
    """(family, 'bucket'|'sum'|'count') when ``name`` belongs to one."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in hist_names:
            return name[: -len(suffix)], suffix[1:]
    return None, None


def _rebuild_histogram(name: str, entry: Dict[str, object]) -> Histogram:
    """Invert :meth:`Histogram.cumulative` for one parsed series."""
    cum = sorted(entry["cum"])  # type: ignore[arg-type]
    if not cum or not math.isinf(cum[-1][0]):
        raise ExportError(f"histogram {name!r} has no +Inf bucket")
    bounds = [le for le, _ in cum[:-1]]
    if not bounds:
        raise ExportError(f"histogram {name!r} has no finite buckets")
    hist = Histogram(bounds)
    counts = []
    prev = 0.0
    for _, running in cum:
        counts.append(running - prev)
        prev = running
    hist.counts = counts
    hist.sum = float(entry["sum"])  # type: ignore[arg-type]
    hist.count = float(entry["count"])  # type: ignore[arg-type]
    return hist


def _parse_labels(body: str, lineno: int) -> dict:
    labels: dict = {}
    i = 0
    n = len(body)
    while i < n:
        eq = body.index("=", i)
        key = body[i:eq].strip().lstrip(",").strip()
        if body[eq + 1] != '"':
            raise ExportError(f'label value for {key!r} not quoted (line {lineno})')
        j = eq + 2
        raw: List[str] = []
        while j < n:
            ch = body[j]
            if ch == "\\":
                raw.append(body[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ExportError(f"unterminated label value (line {lineno})")
        labels[key] = _unescape_label("".join(raw))
        i = j + 1
    return labels


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "SPAN_SCHEMA",
    "SUMMARY_QUANTILES",
    "ExportError",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "parse_spans_jsonl",
    "read_spans_jsonl",
    "to_prometheus",
    "write_prometheus",
    "parse_prometheus",
]
