"""Structured observability: simulated-clock spans, counters, exporters.

The subsystem has three parts, deliberately decoupled:

* :mod:`repro.obs.tracer` — :class:`Tracer`/:class:`Span`, a nested span
  tree timed on the :class:`~repro.sim.clock.SimClock` (with a shared
  no-op :data:`NULL_TRACER` so untraced runs allocate nothing);
* :mod:`repro.obs.counters` — :class:`CounterRegistry`, labelled counters
  sampled from the storage layer and reconciled bit-for-bit against
  :class:`~repro.storage.machine.IOReport`;
* :mod:`repro.obs.exporters` — JSONL span traces and Prometheus-style
  text snapshots, both round-trippable;
* :mod:`repro.obs.profile` — trace analysis (per-iteration stage
  breakdowns, stay-write overlap, per-device I/O attribution);
* :mod:`repro.obs.bench` — benchmark snapshots and the regression gate.

See docs/observability.md for the span taxonomy and counter catalogue,
and docs/profiling.md for the profile report and snapshot schema.
"""

from repro.obs.counters import (
    DEFAULT_DURATION_BUCKETS,
    CounterRegistry,
    Histogram,
    diff_registries,
    machine_counters,
)
from repro.obs.exporters import (
    SPAN_SCHEMA,
    ExportError,
    parse_prometheus,
    parse_spans_jsonl,
    read_spans_jsonl,
    spans_to_jsonl,
    to_prometheus,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.profile import (
    ProfileError,
    QueryProfile,
    TraceProfile,
    load_spans,
    profile_trace,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, TraceError, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceError",
    "CounterRegistry",
    "DEFAULT_DURATION_BUCKETS",
    "Histogram",
    "diff_registries",
    "machine_counters",
    "SPAN_SCHEMA",
    "ExportError",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "parse_spans_jsonl",
    "read_spans_jsonl",
    "to_prometheus",
    "write_prometheus",
    "parse_prometheus",
    "ProfileError",
    "QueryProfile",
    "TraceProfile",
    "load_spans",
    "profile_trace",
]
