"""Structured observability: simulated-clock spans, counters, exporters.

The subsystem has three parts, deliberately decoupled:

* :mod:`repro.obs.tracer` — :class:`Tracer`/:class:`Span`, a nested span
  tree timed on the :class:`~repro.sim.clock.SimClock` (with a shared
  no-op :data:`NULL_TRACER` so untraced runs allocate nothing);
* :mod:`repro.obs.counters` — :class:`CounterRegistry`, labelled counters
  sampled from the storage layer and reconciled bit-for-bit against
  :class:`~repro.storage.machine.IOReport`;
* :mod:`repro.obs.exporters` — JSONL span traces and Prometheus-style
  text snapshots, both round-trippable;
* :mod:`repro.obs.profile` — trace analysis (per-iteration stage
  breakdowns, stay-write overlap, per-device I/O attribution);
* :mod:`repro.obs.bench` — benchmark snapshots and the regression gate;
* :mod:`repro.obs.hostprof` — the dual-clock host profiler: the one
  sanctioned wall-clock choke point (:class:`HostClock`), bindable to a
  tracer for per-stage ``host_seconds_per_sim_second`` attribution;
* :mod:`repro.obs.timeseries` — bounded ring of windowed serving metrics
  (RPS, queue depth, latency quantiles) behind ``/debug/timeseries``.

See docs/observability.md for the span taxonomy and counter catalogue,
and docs/profiling.md for the profile report and snapshot schema.
"""

from repro.obs.counters import (
    DEFAULT_DURATION_BUCKETS,
    CounterRegistry,
    Histogram,
    diff_registries,
    machine_counters,
)
from repro.obs.exporters import (
    SPAN_SCHEMA,
    SUMMARY_QUANTILES,
    ExportError,
    parse_prometheus,
    parse_spans_jsonl,
    read_spans_jsonl,
    spans_to_jsonl,
    to_prometheus,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.hostprof import HOST_CLOCK, HostClock, ManualHostClock
from repro.obs.profile import (
    ProfileError,
    QueryProfile,
    TraceProfile,
    load_spans,
    profile_trace,
)
from repro.obs.timeseries import TimeSeries, quantile_summary
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, TraceError, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceError",
    "CounterRegistry",
    "DEFAULT_DURATION_BUCKETS",
    "Histogram",
    "diff_registries",
    "machine_counters",
    "SPAN_SCHEMA",
    "ExportError",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "parse_spans_jsonl",
    "read_spans_jsonl",
    "to_prometheus",
    "write_prometheus",
    "parse_prometheus",
    "ProfileError",
    "QueryProfile",
    "TraceProfile",
    "load_spans",
    "profile_trace",
    "HOST_CLOCK",
    "HostClock",
    "ManualHostClock",
    "SUMMARY_QUANTILES",
    "TimeSeries",
    "quantile_summary",
]
