"""Benchmark snapshots and the regression gate.

A *snapshot* is one canonical JSON document (``BENCH_<seq>.json`` at the
repo root) recording what the simulation measures for a fixed scenario
set: per-scenario simulated execution time, input/total bytes, iowait
ratio, iteration count, trim effectiveness, and a profile summary
distilled from the run's span trace.  The *gated* body of a snapshot
carries **no timestamps or host facts** — two runs of the same code at
the same seed produce byte-identical gated content, so a committed
snapshot is a reviewable statement of the repo's performance claims.

Schema v3 adds one deliberately *informational* top-level ``host``
section: per-scenario wall-clock cost of running the simulation itself
(``host_seconds_per_sim_second``, ``edges_scanned_per_host_second``),
collected by binding the dual-clock profiler
(:mod:`repro.obs.hostprof`) to the same traced runs.  Host facts are
machine-dependent by nature, so the section is excluded from both the
determinism contract (compare :func:`canonical_snapshot` views, not raw
documents) and the regression gate (:func:`compare_snapshots` walks
``scenarios`` only and never looks at ``host``).

The *gate* (:func:`compare_snapshots`) diffs the newest snapshot against
the previous one under per-metric tolerances: each metric declares how
much drift is tolerated and which direction is a regression (slower,
more bytes, less trimming).  CI runs ``repro bench run`` + ``repro bench
compare`` so a PR that quietly degrades the reproduction fails its
build; improvements update the trajectory by committing the new file.

Scale note: scenarios run at the harness's scale divisor (default from
``REPRO_SCALE_DIVISOR``), so a CI snapshot takes seconds, not hours.
Snapshots at different divisors are never comparable — the gate refuses.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.profile import profile_trace

#: Bump when the snapshot layout changes incompatibly.
#: v2: multi-query scenarios (``kind="multi-query"``) recording the MS-BFS
#: edge-scan amortization metric alongside the single-query cells.
#: v3: informational top-level ``host`` section (dual-clock profiler
#: output; excluded from the determinism contract and the gate).
SNAPSHOT_SCHEMA_VERSION = 3

#: Queries per tracked multi-query cell (matches bench_multi_query.py).
MULTI_QUERY_Q = 8

#: Hard ceiling on the batched/serial edge-scan ratio the multi-query
#: scenario asserts (the ISSUE-7 amortization acceptance bound).
MULTI_QUERY_MAX_AMORTIZATION = 0.2

SNAPSHOT_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")


class BenchError(ReproError):
    """Raised on malformed snapshots or unusable comparisons."""


@dataclass(frozen=True)
class Scenario:
    """One (engine, hardware) cell of the tracked benchmark set.

    ``kind="single"`` is one traced BFS run; ``kind="multi-query"`` runs
    the same Q-root batch twice through ``run_many`` — serial rewind and
    MS-BFS batched — and records the edge-scan amortization ratio.
    """

    name: str
    engine: str
    dataset: str = "rmat25"
    disk_kind: str = "hdd"
    num_disks: int = 1
    kind: str = "single"


#: The tracked set: the paper's three engines on one HDD, FastBFS's
#: two-disk rotation (Fig. 7's configuration), and the multi-query
#: amortization cell (ISSUE 7: batched MS-BFS vs serial rewind).
DEFAULT_SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("graphchi", "graphchi"),
    Scenario("x-stream", "x-stream"),
    Scenario("fastbfs", "fastbfs"),
    Scenario("fastbfs-2disk", "fastbfs-2disk", num_disks=2),
    Scenario("fastbfs-multiquery", "fastbfs", kind="multi-query"),
)


@dataclass(frozen=True)
class Tolerance:
    """Allowed drift for one metric and which direction is a regression.

    ``rel`` is a fraction of the baseline value, ``abs`` an absolute
    delta; the allowance is ``max(rel * |baseline|, abs)``.  ``worse``
    is ``"higher"`` (increase is bad: time, bytes), ``"lower"``
    (decrease is bad: trim effectiveness), or ``"any"`` (must match
    within the allowance in both directions: iteration counts).
    """

    rel: float = 0.0
    abs: float = 0.0
    worse: str = "higher"

    def allowance(self, baseline: float) -> float:
        return max(self.rel * abs(baseline), self.abs)


#: Per-metric gate policy (see docs/profiling.md for the rationale).
TOLERANCES: Dict[str, Tolerance] = {
    "execution_time": Tolerance(rel=0.02, worse="higher"),
    "input_bytes": Tolerance(rel=0.01, worse="higher"),
    "total_bytes": Tolerance(rel=0.01, worse="higher"),
    "iowait_ratio": Tolerance(abs=0.02, worse="higher"),
    "iterations": Tolerance(abs=0.0, worse="any"),
    "trim_effectiveness": Tolerance(abs=0.02, worse="lower"),
    # Multi-query cell: batched/serial edge-scan ratio (lower is better)
    # and the batched batch's end-to-end time.
    "edge_scan_amortization": Tolerance(abs=0.01, worse="higher"),
    "batched_time": Tolerance(rel=0.02, worse="higher"),
}


# ----------------------------------------------------------------------
# collection
# ----------------------------------------------------------------------
def _multi_query_entry(runner, sc: Scenario) -> Dict[str, object]:
    """The amortization cell: Q-root batch, serial vs MS-BFS batched.

    Asserts the batch contract while measuring it: batched per-query
    levels/parents must be bit-identical to the serial rewind path, and
    the batched run must scan at most
    :data:`MULTI_QUERY_MAX_AMORTIZATION` of the serial edge total.
    """
    import numpy as np

    graph = runner.graph(sc.dataset)
    order = np.argsort(-graph.out_degrees())
    roots = [int(v) for v in order[:MULTI_QUERY_Q]]
    serial = runner.run_batch(
        sc.dataset, sc.engine, roots,
        disk_kind=sc.disk_kind, num_disks=sc.num_disks, mode="serial",
    )
    batched = runner.run_batch(
        sc.dataset, sc.engine, roots,
        disk_kind=sc.disk_kind, num_disks=sc.num_disks, mode="batched",
    )
    if batched.mode != "batched":
        raise BenchError(
            f"scenario {sc.name!r}: engine {sc.engine!r} fell back to "
            "serial execution; the amortization cell needs a batched kernel"
        )
    for qs, qb in zip(serial.queries, batched.queries):
        if not (
            np.array_equal(qs.levels, qb.levels)
            and np.array_equal(qs.parents, qb.parents)
        ):
            raise BenchError(
                f"scenario {sc.name!r}: batched query "
                f"{qb.query_index} diverged from the serial result"
            )
    amortization = (
        batched.edges_scanned / serial.edges_scanned
        if serial.edges_scanned
        else 0.0
    )
    if amortization > MULTI_QUERY_MAX_AMORTIZATION:
        raise BenchError(
            f"scenario {sc.name!r}: batched mode scanned "
            f"{amortization:.3f}x the serial edge total "
            f"(bound {MULTI_QUERY_MAX_AMORTIZATION})"
        )
    return {
        "engine": sc.engine,
        "dataset": sc.dataset,
        "disk_kind": sc.disk_kind,
        "num_disks": sc.num_disks,
        "kind": sc.kind,
        "queries": MULTI_QUERY_Q,
        "batches": len(batched.batch_times),
        "iterations": len(batched.shared_iterations),
        "edges_scanned": batched.edges_scanned,
        "serial_edges_scanned": serial.edges_scanned,
        "edge_scans_per_query": batched.edge_scans_per_query,
        "edge_scan_amortization": amortization,
        "batched_time": batched.total_time,
        "serial_time": serial.total_time,
    }


def _scenario_entry(
    runner, sc: Scenario
) -> Tuple[Dict[str, object], Optional[Dict[str, object]]]:
    """``(gated_entry, host_entry_or_None)`` for one scenario.

    Single-run scenarios execute exactly once, dual-clocked: the shared
    :data:`~repro.obs.hostprof.HOST_CLOCK` is bound to the tracer, so the
    same trace yields both the gated simulated metrics (host stamping is
    strictly neutral for those — see tests/test_obs_hostprof.py) and the
    informational host breakdown.  Multi-query cells have no single
    traced run to attribute, so they carry no host entry.
    """
    if sc.kind == "multi-query":
        return _multi_query_entry(runner, sc), None
    from repro.obs.hostprof import HOST_CLOCK

    result, machine, tracer = runner.run_traced(
        sc.dataset,
        sc.engine,
        disk_kind=sc.disk_kind,
        num_disks=sc.num_disks,
        host_clock=HOST_CLOCK,
    )
    report = result.report
    graph = runner.graph(sc.dataset)
    edges_scanned = sum(it.edges_scanned for it in result.iterations)
    iterations = result.num_iterations
    denom = iterations * graph.num_edges
    trim_effectiveness = 1.0 - edges_scanned / denom if denom else 0.0

    prof = profile_trace(tracer)
    q = prof.queries[0]
    stay = q.stay
    entry: Dict[str, object] = {
        "engine": sc.engine,
        "dataset": sc.dataset,
        "disk_kind": sc.disk_kind,
        "num_disks": sc.num_disks,
        "execution_time": report.execution_time,
        "input_bytes": report.bytes_read,
        "total_bytes": report.bytes_total,
        "iowait_ratio": report.iowait_ratio,
        "iterations": iterations,
        "edges_scanned": edges_scanned,
        "trim_effectiveness": trim_effectiveness,
        "profile": {
            "stage_totals": {
                k: v for k, v in sorted(q.stage_totals().items())
            },
            "stay_flushes": stay.flushes,
            "stay_cancelled": stay.cancellations,
            "stay_end_of_run_discards": stay.end_of_run_discards,
            "stay_hidden_fraction": stay.hidden_fraction,
        },
    }
    host = prof.host()
    return entry, (host if host else None)


def collect_snapshot(
    runner=None,
    scenarios: Sequence[Scenario] = DEFAULT_SCENARIOS,
    divisor: Optional[int] = None,
    seed: int = 1,
) -> Dict[str, object]:
    """Run the tracked scenarios and assemble one snapshot document."""
    if runner is None:
        from repro.analysis.harness import ExperimentRunner

        runner = ExperimentRunner(divisor=divisor, seed=seed)
    scenario_docs: Dict[str, Dict[str, object]] = {}
    host_docs: Dict[str, Dict[str, object]] = {}
    for sc in scenarios:
        entry, host = _scenario_entry(runner, sc)
        scenario_docs[sc.name] = entry
        if host is not None:
            host_docs[sc.name] = host

    derived: Dict[str, float] = {}
    times = {
        name: doc["execution_time"]
        for name, doc in scenario_docs.items()
        if "execution_time" in doc
    }
    if "fastbfs" in times:
        for other in ("x-stream", "graphchi"):
            if other in times and times["fastbfs"]:
                derived[f"speedup_vs_{other}"] = (
                    times[other] / times["fastbfs"]  # type: ignore[operator]
                )
        if "x-stream" in scenario_docs:
            x = scenario_docs["x-stream"]
            f = scenario_docs["fastbfs"]
            if x["input_bytes"]:
                derived["input_reduction_vs_x-stream"] = 1.0 - (
                    f["input_bytes"] / x["input_bytes"]  # type: ignore[operator]
                )
            if x["total_bytes"]:
                derived["total_reduction_vs_x-stream"] = 1.0 - (
                    f["total_bytes"] / x["total_bytes"]  # type: ignore[operator]
                )

    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "divisor": runner.divisor,
        "seed": runner.seed,
        "scenarios": scenario_docs,
        "derived": derived,
        # Informational only: machine-dependent wall-clock cost of the
        # collection run.  Never gated, never part of the determinism
        # contract — see canonical_snapshot().
        "host": host_docs,
    }


def canonical_snapshot(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The deterministic view of a snapshot: everything but ``host``.

    Two collections of the same code at the same divisor/seed agree
    byte-for-byte on this view; the informational ``host`` section is the
    one place wall-clock facts are allowed to differ between them.
    """
    return {k: v for k, v in snapshot.items() if k != "host"}


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
def snapshot_files(root: str = ".") -> List[Tuple[int, str]]:
    """(seq, path) for every ``BENCH_<seq>.json`` under ``root``, sorted."""
    out: List[Tuple[int, str]] = []
    for entry in sorted(os.listdir(root)):
        m = SNAPSHOT_PATTERN.match(entry)
        if m:
            out.append((int(m.group(1)), os.path.join(root, entry)))
    return sorted(out)


def snapshot_to_json(snapshot: Dict[str, object]) -> str:
    """Canonical serialized form (sorted keys, trailing newline)."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def write_snapshot(
    snapshot: Dict[str, object], root: str = ".", seq: Optional[int] = None
) -> str:
    """Write ``BENCH_<seq>.json`` (next free sequence number by default)."""
    if seq is None:
        existing = snapshot_files(root)
        seq = existing[-1][0] + 1 if existing else 0
    path = os.path.join(root, f"BENCH_{seq}.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(snapshot_to_json(snapshot))
    return path


def load_snapshot(path: str) -> Dict[str, object]:
    """Load and schema-check one snapshot file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot load snapshot {path}: {exc}") from None
    version = doc.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise BenchError(
            f"snapshot {path} has schema_version {version!r}; "
            f"this code reads {SNAPSHOT_SCHEMA_VERSION}"
        )
    for key in ("divisor", "seed", "scenarios"):
        if key not in doc:
            raise BenchError(f"snapshot {path} missing key {key!r}")
    return doc


# ----------------------------------------------------------------------
# comparison (the gate)
# ----------------------------------------------------------------------
@dataclass
class MetricDiff:
    """One compared metric of one scenario."""

    scenario: str
    metric: str
    baseline: float
    current: float
    allowance: float
    verdict: str  # "ok" | "improved" | "regressed"

    def describe(self) -> str:
        delta = self.current - self.baseline
        rel = f" ({delta / self.baseline:+.2%})" if self.baseline else ""
        return (
            f"{self.scenario}.{self.metric}: {self.baseline:g} -> "
            f"{self.current:g}{rel} [allowance {self.allowance:g}] "
            f"{self.verdict.upper()}"
        )


@dataclass
class Comparison:
    """The gate's verdict: every metric diff plus the regression list."""

    baseline_path: str
    current_path: str
    diffs: List[MetricDiff]
    problems: List[str]

    @property
    def regressions(self) -> List[MetricDiff]:
        return [d for d in self.diffs if d.verdict == "regressed"]

    @property
    def improvements(self) -> List[MetricDiff]:
        return [d for d in self.diffs if d.verdict == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.problems

    def render(self) -> str:
        lines = [
            f"bench compare: {os.path.basename(self.baseline_path)} -> "
            f"{os.path.basename(self.current_path)}"
        ]
        lines.extend(f"  PROBLEM: {p}" for p in self.problems)
        for d in self.diffs:
            if d.verdict != "ok":
                lines.append("  " + d.describe())
        changed = sum(1 for d in self.diffs if d.verdict != "ok")
        lines.append(
            f"  {len(self.diffs)} metrics compared, {changed} changed, "
            f"{len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved"
        )
        lines.append("  verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _judge(tol: Tolerance, baseline: float, current: float) -> str:
    allowance = tol.allowance(baseline)
    delta = current - baseline
    if abs(delta) <= allowance:
        return "ok"
    if tol.worse == "any":
        return "regressed"
    worse_is_positive = tol.worse == "higher"
    if (delta > 0) == worse_is_positive:
        return "regressed"
    return "improved"


def compare_snapshots(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerances: Optional[Dict[str, Tolerance]] = None,
    baseline_path: str = "<baseline>",
    current_path: str = "<current>",
) -> Comparison:
    """Diff two snapshots under the per-metric tolerance policy.

    Scenarios present in the baseline but missing from the current
    snapshot (or vice versa) and divisor/seed mismatches are reported as
    problems — the gate fails on them rather than comparing garbage.
    """
    tolerances = tolerances if tolerances is not None else TOLERANCES
    problems: List[str] = []
    for key in ("divisor", "seed"):
        if baseline.get(key) != current.get(key):
            problems.append(
                f"{key} mismatch: baseline {baseline.get(key)!r} vs "
                f"current {current.get(key)!r}; snapshots are not comparable"
            )
    base_sc: Dict[str, Dict] = baseline.get("scenarios", {})  # type: ignore[assignment]
    cur_sc: Dict[str, Dict] = current.get("scenarios", {})  # type: ignore[assignment]
    for missing in sorted(set(base_sc) - set(cur_sc)):
        problems.append(f"scenario {missing!r} missing from current snapshot")
    for added in sorted(set(cur_sc) - set(base_sc)):
        problems.append(
            f"scenario {added!r} has no baseline (commit a new snapshot)"
        )

    diffs: List[MetricDiff] = []
    for name in sorted(set(base_sc) & set(cur_sc)):
        for metric, tol in tolerances.items():
            if metric not in base_sc[name] or metric not in cur_sc[name]:
                continue
            b = float(base_sc[name][metric])
            c = float(cur_sc[name][metric])
            diffs.append(
                MetricDiff(
                    scenario=name,
                    metric=metric,
                    baseline=b,
                    current=c,
                    allowance=tol.allowance(b),
                    verdict=_judge(tol, b, c),
                )
            )
    return Comparison(
        baseline_path=baseline_path,
        current_path=current_path,
        diffs=diffs,
        problems=problems,
    )


def compare_latest(
    root: str = ".", tolerances: Optional[Dict[str, Tolerance]] = None
) -> Comparison:
    """Compare the two newest ``BENCH_*.json`` snapshots under ``root``."""
    files = snapshot_files(root)
    if len(files) < 2:
        raise BenchError(
            f"need two snapshots under {root!r} to compare, found "
            f"{len(files)}; run 'repro bench run' first"
        )
    (_, base_path), (_, cur_path) = files[-2], files[-1]
    return compare_snapshots(
        load_snapshot(base_path),
        load_snapshot(cur_path),
        tolerances=tolerances,
        baseline_path=base_path,
        current_path=cur_path,
    )


__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "BenchError",
    "Scenario",
    "DEFAULT_SCENARIOS",
    "Tolerance",
    "TOLERANCES",
    "collect_snapshot",
    "canonical_snapshot",
    "snapshot_files",
    "snapshot_to_json",
    "write_snapshot",
    "load_snapshot",
    "MetricDiff",
    "Comparison",
    "compare_snapshots",
    "compare_latest",
]
