"""Trace analysis: turn span traces into per-stage time breakdowns.

A span trace records *where simulated time went*; this module answers the
questions the paper's evaluation sections ask of it:

* **Per-iteration stage breakdown** — scatter / gather / shuffle (or
  GraphChi's interval) seconds per BFS level, with the residual inside
  the iteration span reported as ``other`` and the residual inside the
  query span (staging glue, frontier bookkeeping) as ``overhead``, so
  the breakdown of a query sums exactly to its span duration.
* **Critical path** — which stage dominates each query, ranked.
* **Stay-write overlap** — how much ``stay_flush`` time was actually
  hidden under scatter streaming (the paper's core overlap claim), how
  much was exposed, and how often flushes were cancelled mid-run or
  discarded at end of run.
* **I/O attribution** — per-device, per-(role, kind) byte totals joined
  from a :class:`~repro.obs.counters.CounterRegistry`, reconciled
  bit-for-bit against an :class:`~repro.storage.machine.IOReport` when
  one is supplied.

The renderer reuses the shared lane Gantt from :mod:`repro.sim.trace`,
so a profile report and a device-request Gantt share glyphs and axis
conventions.  Everything here is read-only: profiling a trace never
touches a clock, machine, or tracer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.counters import CounterRegistry
from repro.obs.tracer import Span
from repro.sim.trace import render_lanes, span_lanes
from repro.utils.units import format_bytes, format_seconds

#: Child-span names treated as named stages inside an iteration; any
#: remaining iteration time is the ``other`` residual.
STAGE_NAMES = ("scatter", "gather", "shuffle", "interval")

Interval = Tuple[float, float]


class ProfileError(ReproError):
    """Raised when a trace cannot be profiled (empty, no query spans...)."""


# ----------------------------------------------------------------------
# span loading
# ----------------------------------------------------------------------
def load_spans(source) -> List[Span]:
    """Normalize any trace source into a span list.

    Accepts a JSONL trace path, a :class:`~repro.obs.tracer.Tracer`, a
    machine with an attached tracer, or an iterable of spans.
    """
    if isinstance(source, (str, os.PathLike)):
        from repro.obs.exporters import read_spans_jsonl

        return read_spans_jsonl(os.fspath(source))
    spans = getattr(source, "spans", None)
    if spans is not None:
        return list(spans)
    tracer = getattr(source, "tracer", None)
    if tracer is not None:
        if not tracer.enabled:
            raise ProfileError(
                "machine has no span tracer attached; call "
                "machine.attach_tracer(Tracer()) before the run"
            )
        return list(tracer.spans)
    return list(source)


# ----------------------------------------------------------------------
# interval arithmetic
# ----------------------------------------------------------------------
def _merge_intervals(intervals: Sequence[Interval]) -> List[Interval]:
    """Union of possibly-overlapping intervals, sorted and disjoint."""
    merged: List[Interval] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged

def _overlap_length(lo: float, hi: float, merged: Sequence[Interval]) -> float:
    """Length of [lo, hi) covered by a merged (disjoint) interval union."""
    covered = 0.0
    for mlo, mhi in merged:
        if mhi <= lo:
            continue
        if mlo >= hi:
            break
        covered += min(hi, mhi) - max(lo, mlo)
    return covered

def _union_length(merged: Sequence[Interval]) -> float:
    return sum(hi - lo for lo, hi in merged)


# ----------------------------------------------------------------------
# per-query structures
# ----------------------------------------------------------------------
@dataclass
class IterationBreakdown:
    """Stage timing for one BFS level (one ``iteration`` span)."""

    iteration: int
    span: Span
    #: Stage name -> summed child-span seconds (only stages that ran).
    stages: Dict[str, float] = field(default_factory=dict)
    #: Stage name -> summed child-span *host* seconds (dual-clock traces).
    host_stages: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.span.duration

    @property
    def other(self) -> float:
        """Iteration time not inside any named stage child."""
        return max(0.0, self.duration - sum(self.stages.values()))

    @property
    def host_duration(self) -> float:
        return self.span.host_duration

    @property
    def host_other(self) -> float:
        """Host iteration time not inside any named stage child."""
        return max(0.0, self.host_duration - sum(self.host_stages.values()))

    @property
    def frontier(self) -> int:
        return int(self.span.attrs.get("frontier", 0))

    @property
    def edges_scanned(self) -> int:
        return int(self.span.attrs.get("edges_scanned", 0))

    def breakdown(self) -> Dict[str, float]:
        """Stage seconds including the ``other`` residual; sums to duration."""
        out = dict(self.stages)
        out["other"] = self.other
        return out

    def host_breakdown(self) -> Dict[str, float]:
        """Host stage seconds + ``other``; sums to :attr:`host_duration`."""
        out = dict(self.host_stages)
        out["other"] = self.host_other
        return out


@dataclass
class StayAccounting:
    """What happened to the stay stream over one query."""

    flushes: int = 0
    cancellations: int = 0
    end_of_run_discards: int = 0
    flush_time: float = 0.0
    hidden_time: float = 0.0
    records: int = 0
    bytes: int = 0

    @property
    def cancelled_total(self) -> int:
        return self.cancellations + self.end_of_run_discards

    @property
    def exposed_time(self) -> float:
        """Flush seconds not overlapped by any scatter span."""
        return max(0.0, self.flush_time - self.hidden_time)

    @property
    def hidden_fraction(self) -> float:
        """Share of flush time hidden under scatter (the overlap claim)."""
        if self.flush_time <= 0:
            return 0.0
        return self.hidden_time / self.flush_time


@dataclass
class QueryProfile:
    """One ``query`` span analyzed: iterations, stay stream, lanes."""

    index: int
    span: Span
    iterations: List[IterationBreakdown]
    stay: StayAccounting
    #: Every span belonging to this query (the query span, its subtree,
    #: and the async stay spans anchored to it), for lane rendering.
    spans: List[Span]

    @property
    def engine(self) -> str:
        return str(self.span.attrs.get("engine", "?"))

    @property
    def algorithm(self) -> str:
        return str(self.span.attrs.get("algorithm", "?"))

    @property
    def graph(self) -> str:
        return str(self.span.attrs.get("graph", "?"))

    @property
    def duration(self) -> float:
        return self.span.duration

    @property
    def overhead(self) -> float:
        """Query time outside every iteration span (staging glue, etc.)."""
        return max(
            0.0, self.duration - sum(it.duration for it in self.iterations)
        )

    @property
    def host_timed(self) -> bool:
        """True when this query was traced with a host clock attached."""
        return self.span.host_timed

    @property
    def host_duration(self) -> float:
        return self.span.host_duration

    @property
    def host_overhead(self) -> float:
        """Host query time outside every iteration span."""
        return max(
            0.0,
            self.host_duration - sum(it.host_duration for it in self.iterations),
        )

    @property
    def edges_scanned(self) -> int:
        return sum(it.edges_scanned for it in self.iterations)

    def stage_totals(self) -> Dict[str, float]:
        """Stage seconds over the whole query; sums to the query duration.

        Keys are the stage names that ran, plus ``other`` (time inside an
        iteration but outside named stages) and ``overhead`` (time inside
        the query but outside every iteration).
        """
        totals: Dict[str, float] = {}
        for it in self.iterations:
            for name, secs in it.breakdown().items():
                totals[name] = totals.get(name, 0.0) + secs
        totals["overhead"] = self.overhead
        return totals

    def host_stage_totals(self) -> Dict[str, float]:
        """Host stage seconds over the query; sums to its host duration.

        Same keys and arithmetic as :meth:`stage_totals`, on the host
        clock: ``other`` is host time inside an iteration but outside
        named stages, ``overhead`` host time inside the query but outside
        every iteration — so the totals sum to the query span's host
        duration by construction.  Empty on single-clock traces.
        """
        if not self.host_timed:
            return {}
        totals: Dict[str, float] = {}
        for it in self.iterations:
            for name, secs in it.host_breakdown().items():
                totals[name] = totals.get(name, 0.0) + secs
        totals["overhead"] = self.host_overhead
        return totals

    def critical_path(self) -> List[Tuple[str, float]]:
        """Stages ranked by total seconds, dominant first."""
        return sorted(
            self.stage_totals().items(), key=lambda kv: (-kv[1], kv[0])
        )

    def lane_utilization(self) -> Dict[str, float]:
        """Per-span-name busy fraction of the query window (union time)."""
        if self.duration <= 0:
            return {}
        out: Dict[str, float] = {}
        for name, intervals in span_lanes(self.spans):
            if name == "query":
                continue
            merged = _merge_intervals(
                [
                    (max(lo, self.span.start), min(hi, self.span.end))
                    for lo, hi in intervals
                    if min(hi, self.span.end) > max(lo, self.span.start)
                ]
            )
            out[name] = _union_length(merged) / self.duration
        return out


# ----------------------------------------------------------------------
# trace assembly
# ----------------------------------------------------------------------
def _build_query_profile(
    index: int, query: Span, children: Dict[Optional[int], List[Span]]
) -> QueryProfile:
    subtree: List[Span] = [query]
    iterations: List[IterationBreakdown] = []
    stay = StayAccounting()
    scatter_intervals: List[Interval] = []

    stack = list(children.get(query.span_id, []))
    direct = list(children.get(query.span_id, []))
    while stack:
        sp = stack.pop()
        subtree.append(sp)
        stack.extend(children.get(sp.span_id, []))

    for sp in subtree:
        if sp.name == "scatter" and sp.finished:
            scatter_intervals.append((sp.start, sp.end))

    scatter_merged = _merge_intervals(scatter_intervals)

    for sp in direct:
        if sp.name == "iteration" and sp.finished:
            stages: Dict[str, float] = {}
            host_stages: Dict[str, float] = {}
            for child in children.get(sp.span_id, []):
                if child.name in STAGE_NAMES and child.finished:
                    stages[child.name] = (
                        stages.get(child.name, 0.0) + child.duration
                    )
                    if child.host_timed:
                        host_stages[child.name] = (
                            host_stages.get(child.name, 0.0)
                            + child.host_duration
                        )
            iterations.append(
                IterationBreakdown(
                    iteration=int(sp.attrs.get("iteration", len(iterations))),
                    span=sp,
                    stages=stages,
                    host_stages=host_stages,
                )
            )
        elif sp.name == "stay_flush" and sp.finished:
            stay.flushes += 1
            stay.flush_time += sp.duration
            stay.hidden_time += _overlap_length(
                sp.start, sp.end, scatter_merged
            )
            stay.records += int(sp.attrs.get("records", 0))
            stay.bytes += int(sp.attrs.get("bytes", 0))
        elif sp.name == "stay_cancel" and sp.finished:
            if sp.attrs.get("end_of_run"):
                stay.end_of_run_discards += 1
            else:
                stay.cancellations += 1

    iterations.sort(key=lambda it: (it.span.start, it.iteration))
    return QueryProfile(
        index=index,
        span=query,
        iterations=iterations,
        stay=stay,
        spans=subtree,
    )


class TraceProfile:
    """A fully-analyzed span trace: queries, stages, I/O attribution."""

    def __init__(
        self,
        spans: Sequence[Span],
        registry: Optional[CounterRegistry] = None,
        report=None,
    ) -> None:
        self.spans = [sp for sp in spans if sp.finished]
        if not self.spans:
            raise ProfileError("trace has no finished spans to profile")
        self.registry = registry
        self.report = report
        if self.registry is None and report is not None:
            self.registry = CounterRegistry.from_report(report)

        children: Dict[Optional[int], List[Span]] = {}
        for sp in self.spans:
            children.setdefault(sp.parent_id, []).append(sp)
        self.stages = [sp for sp in self.spans if sp.name == "stage"]
        query_spans = [sp for sp in self.spans if sp.name == "query"]
        if not query_spans:
            raise ProfileError(
                "trace has no 'query' spans; was the run traced with a "
                "Tracer attached before execution?"
            )
        self.queries = [
            _build_query_profile(i, q, children)
            for i, q in enumerate(query_spans)
        ]

    # ------------------------------------------------------------------
    # dual-clock host breakdown
    # ------------------------------------------------------------------
    @property
    def host_timed(self) -> bool:
        """True when at least one query was traced with a host clock."""
        return any(q.host_timed for q in self.queries)

    def host(self) -> Dict[str, object]:
        """Host wall-clock breakdown of the trace (dual-clock runs).

        The instrument the vectorization ratchet reads: how many host
        seconds each simulated second costs, attributed per stage, plus
        the engine's raw edge throughput on the host clock.  Shape::

            {"host_seconds": ..., "sim_seconds": ...,
             "host_seconds_per_sim_second": ...,
             "edges_scanned": ..., "edges_scanned_per_host_second": ...,
             "stages": {name: {"host_seconds", "sim_seconds",
                               "host_seconds_per_sim_second"}, ...}}

        Stage host seconds sum exactly to ``host_seconds`` (the summed
        host duration of the query spans) because each query's
        :meth:`~QueryProfile.host_stage_totals` sums to its span's host
        duration by construction.  Empty dict on single-clock traces.
        """
        timed = [q for q in self.queries if q.host_timed]
        if not timed:
            return {}
        host_seconds = sum(q.host_duration for q in timed)
        sim_seconds = sum(q.duration for q in timed)
        edges = sum(q.edges_scanned for q in timed)
        stages: Dict[str, Dict[str, float]] = {}
        for q in timed:
            sim_totals = q.stage_totals()
            for name, secs in q.host_stage_totals().items():
                entry = stages.setdefault(
                    name, {"host_seconds": 0.0, "sim_seconds": 0.0}
                )
                entry["host_seconds"] += secs
                entry["sim_seconds"] += sim_totals.get(name, 0.0)
        for entry in stages.values():
            entry["host_seconds_per_sim_second"] = (
                entry["host_seconds"] / entry["sim_seconds"]
                if entry["sim_seconds"] > 0
                else 0.0
            )
        return {
            "host_seconds": host_seconds,
            "sim_seconds": sim_seconds,
            "host_seconds_per_sim_second": (
                host_seconds / sim_seconds if sim_seconds > 0 else 0.0
            ),
            "edges_scanned": edges,
            "edges_scanned_per_host_second": (
                edges / host_seconds if host_seconds > 0 else 0.0
            ),
            "stages": {name: stages[name] for name in sorted(stages)},
        }

    # ------------------------------------------------------------------
    # I/O attribution
    # ------------------------------------------------------------------
    def io_attribution(self) -> List[Dict[str, object]]:
        """Per-device byte attribution from the joined counter registry.

        Each entry: ``device``, ``read``/``write`` byte totals, ``seeks``,
        and ``by_role`` mapping ``(role, kind)`` to bytes.  When an
        :class:`IOReport` was supplied, ``busy_time`` joins in so exposed
        I/O per device is visible next to its byte totals.
        """
        if self.registry is None:
            return []
        devices: Dict[str, Dict[str, object]] = {}
        for name, labels, value in self.registry.items():
            if name == "device_bytes_total":
                dev = devices.setdefault(
                    labels["device"],
                    {"device": labels["device"], "read": 0.0, "write": 0.0,
                     "seeks": 0.0, "by_role": {}},
                )
                dev[labels["kind"]] = (
                    float(dev.get(labels["kind"], 0.0)) + value
                )
                by_role = dev["by_role"]
                key = (labels.get("role", "other"), labels["kind"])
                by_role[key] = by_role.get(key, 0.0) + value  # type: ignore[union-attr]
            elif name == "device_seeks_total":
                dev = devices.setdefault(
                    labels["device"],
                    {"device": labels["device"], "read": 0.0, "write": 0.0,
                     "seeks": 0.0, "by_role": {}},
                )
                dev["seeks"] = float(dev.get("seeks", 0.0)) + value
        if self.report is not None:
            for dr in self.report.devices:
                if dr.name in devices:
                    devices[dr.name]["busy_time"] = dr.busy_time
        return [devices[name] for name in sorted(devices)]

    def reconcile(self, report=None) -> List[str]:
        """Check the joined registry against an IOReport (see Registry)."""
        report = report if report is not None else self.report
        if report is None:
            raise ProfileError("no IOReport supplied to reconcile against")
        if self.registry is None:
            raise ProfileError("no CounterRegistry supplied to reconcile")
        return self.registry.reconcile(report)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def report_text(self, width: int = 80, host: bool = False) -> str:
        """The text "top" report: breakdowns, stay overlap, lanes, I/O.

        ``host=True`` appends the dual-clock host section (per-stage host
        seconds and ``host_seconds_per_sim_second``) when the trace
        carries host stamps (``repro profile --host``).
        """
        lines: List[str] = []
        for q in self.queries:
            lines.extend(self._query_section(q, width))
        if host:
            lines.extend(self._host_section())
        io = self.io_attribution()
        if io:
            lines.append("")
            lines.append("I/O attribution (from counter registry):")
            for dev in io:
                busy = (
                    f"  busy {format_seconds(dev['busy_time'])}"  # type: ignore[arg-type]
                    if "busy_time" in dev
                    else ""
                )
                lines.append(
                    f"  {dev['device']}: "
                    f"R {format_bytes(dev['read'])} "  # type: ignore[arg-type]
                    f"W {format_bytes(dev['write'])} "  # type: ignore[arg-type]
                    f"seeks {dev['seeks']:.0f}{busy}"  # type: ignore[str-format]
                )
                for (role, kind), nbytes in sorted(dev["by_role"].items()):  # type: ignore[union-attr]
                    lines.append(
                        f"    {role:<10} {kind:<5} {format_bytes(nbytes)}"
                    )
            if self.report is not None:
                problems = self.reconcile()
                lines.append(
                    "  reconciliation: OK (registry == IOReport)"
                    if not problems
                    else "  reconciliation: MISMATCH\n    "
                    + "\n    ".join(problems)
                )
        return "\n".join(lines)

    def _host_section(self) -> List[str]:
        """Per-stage host wall-clock table (dual-clock traces only)."""
        data = self.host()
        if not data:
            return [
                "",
                "host profile: trace carries no host stamps "
                "(run with --host-profile / bind_host_clock)",
            ]
        lines = [
            "",
            "host profile (dual-clock):",
            f"  host total {format_seconds(data['host_seconds'])} for "
            f"{format_seconds(data['sim_seconds'])} simulated "
            f"({data['host_seconds_per_sim_second']:.3e} host s / sim s)",
            f"  edge throughput "
            f"{data['edges_scanned_per_host_second']:,.0f} edges/host s "
            f"({data['edges_scanned']:,} edges scanned)",
            f"  {'stage':<10} {'host':>12} {'sim':>12} {'host s/sim s':>14}",
        ]
        stages: Dict[str, Dict[str, float]] = data["stages"]  # type: ignore[assignment]
        for name, entry in sorted(
            stages.items(), key=lambda kv: (-kv[1]["host_seconds"], kv[0])
        ):
            # A near-zero simulated denominator makes the ratio noise
            # (pure-host work like staging glue); print "-" instead.
            ratio = (
                f"{entry['host_seconds_per_sim_second']:.3e}"
                if entry["sim_seconds"] > 1e-9
                else "-"
            )
            lines.append(
                f"  {name:<10} {format_seconds(entry['host_seconds']):>12} "
                f"{format_seconds(entry['sim_seconds']):>12} "
                f"{ratio:>14}"
            )
        return lines

    def _query_section(self, q: QueryProfile, width: int) -> List[str]:
        lines = [
            f"query #{q.index}: engine={q.engine} algorithm={q.algorithm} "
            f"graph={q.graph} "
            f"duration={format_seconds(q.duration)} "
            f"iterations={len(q.iterations)}",
        ]
        header = (
            f"  {'iter':>4} {'frontier':>10} {'edges':>12} "
            f"{'scatter':>10} {'gather':>10} {'shuffle':>10} "
            f"{'other':>10} {'total':>10}"
        )
        lines.append(header)
        for it in q.iterations:
            b = it.breakdown()
            lines.append(
                f"  {it.iteration:>4} {it.frontier:>10} {it.edges_scanned:>12} "
                f"{format_seconds(b.get('scatter', 0.0)):>10} "
                f"{format_seconds(b.get('gather', 0.0)):>10} "
                f"{format_seconds(b.get('shuffle', 0.0)):>10} "
                f"{format_seconds(b['other']):>10} "
                f"{format_seconds(it.duration):>10}"
            )
        lines.append("  critical path (stage seconds, dominant first):")
        for name, secs in q.critical_path():
            if secs <= 0:
                continue
            share = secs / q.duration if q.duration > 0 else 0.0
            lines.append(
                f"    {name:<10} {format_seconds(secs):>10}  {share:6.1%}"
            )
        st = q.stay
        if st.flushes or st.cancelled_total:
            lines.append(
                f"  stay stream: {st.flushes} flushes "
                f"({format_bytes(st.bytes)}, {st.records} records), "
                f"{st.cancellations} cancelled mid-run, "
                f"{st.end_of_run_discards} discarded at end of run"
            )
            lines.append(
                f"    flush time {format_seconds(st.flush_time)}: "
                f"{format_seconds(st.hidden_time)} hidden under scatter "
                f"({st.hidden_fraction:.1%}), "
                f"{format_seconds(st.exposed_time)} exposed"
            )
        util = q.lane_utilization()
        if util:
            lines.append("  lane utilization (busy share of query window):")
            for name, frac in sorted(
                util.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(f"    {name:<12} {frac:6.1%}")
        lanes = [
            (name, intervals)
            for name, intervals in span_lanes(q.spans)
            if name != "query"
        ]
        if lanes and q.duration > 0:
            lines.append(
                render_lanes(
                    f"  query #{q.index} lanes",
                    lanes,
                    q.span.start,
                    q.span.end,
                    width=max(10, width - 20),
                )
            )
        return lines


def profile_trace(
    source,
    registry: Optional[CounterRegistry] = None,
    report=None,
) -> TraceProfile:
    """Analyze a span trace from any source (path, tracer, machine, list).

    ``registry`` joins per-device I/O counters into the report;
    ``report`` additionally enables :meth:`TraceProfile.reconcile` (and,
    when no registry is given, rebuilds one from the report itself).
    """
    return TraceProfile(load_spans(source), registry=registry, report=report)


__all__ = [
    "STAGE_NAMES",
    "ProfileError",
    "load_spans",
    "IterationBreakdown",
    "StayAccounting",
    "QueryProfile",
    "TraceProfile",
    "profile_trace",
]
