"""Labelled counter registry, reconciled against :class:`IOReport`.

The storage substrate already keeps exact byte accounting in two
independent ledgers — per-kind (``Timeline._bytes_by_kind``, what
``IOReport.bytes_read``/``bytes_written`` report) and per-role
(``Timeline._bytes_by_role``, behind ``IOReport.bytes_by_role``).  This
module gives that accounting a queryable, exportable shape: a
:class:`CounterRegistry` is a flat map of ``(name, labels)`` to float
values, filled from the storage layer's own ``counter_samples()`` hooks
(:meth:`Device.counter_samples`, :meth:`VFS.counter_samples`,
:meth:`PageCache.counter_samples`) so there is exactly one source of
truth — the registry never re-counts bytes, it samples the ledgers the
simulation already maintains.

Because both ledgers feed the same registry, :meth:`reconcile` can check
them against each other *and* against an :class:`IOReport` bit-for-bit:
every device's role-sum must equal its kind-sum must equal the report's
totals.  The differential test suite runs this reconciliation on every
engine/graph/placement combination it fuzzes.

Counter names (see docs/observability.md):

* ``device_bytes_total{device,kind,role}`` — bytes moved per device, split
  by request kind (read/write) and stream role (edges/updates/stay/...).
* ``device_seeks_total{device}`` — non-sequential accesses charged.
* ``vfs_live_files`` / ``vfs_live_bytes`` — namespace occupancy (gauges).
* ``pagecache_{hit,miss}_bytes_total``, ``pagecache_resident_bytes``.
* ``engine_*_total{engine}`` — per-run counters ingested from an
  :class:`EngineResult` (edges scanned, partitions skipped, stay
  cancellations, ...).
* ``fault_<kind>_total{device}``, ``io_retries_total{device}``,
  ``io_giveups_total{device}``, ``crash_recoveries_total`` — fault
  injection and recovery counters sampled from the machine's
  :class:`~repro.storage.faults.FaultInjector` (when a fault plan is
  attached); these reconcile exactly with the ``io_retry``/``io_giveup``/
  ``crash`` spans in the trace.
* ``span_duration_seconds{stage}`` — **histograms** of span durations per
  span name, filled by :meth:`CounterRegistry.ingest_spans` from a trace.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelItems = Tuple[Tuple[str, str], ...]
CounterKey = Tuple[str, LabelItems]

#: Default bucket upper bounds for span-duration histograms (simulated
#: seconds); +Inf is implicit.  Spans range from sub-millisecond scatter
#: chunks at reduced scale to multi-minute paper-scale queries.
DEFAULT_DURATION_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0
)


def _key(name: str, labels: Dict[str, object]) -> CounterKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Histogram:
    """Fixed-bucket histogram: counts per bucket plus sum and count.

    ``buckets`` are the finite upper bounds in increasing order; an
    implicit +Inf bucket catches the overflow.  ``counts`` are
    *non-cumulative* per-bucket observation counts (length
    ``len(buckets) + 1``); the Prometheus exporter renders the cumulative
    ``le`` form and the parser reverses it.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.buckets = bounds
        self.counts = [0.0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, float(value))] += 1.0
        self.sum += float(value)
        self.count += 1.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram.

        Bucket bounds must match — histograms with different bounds are
        different metrics.
        """
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with buckets {other.buckets} "
                f"into {self.buckets}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from bucket counts.

        Prometheus-style: find the bucket holding rank ``q * count`` and
        interpolate linearly inside it (observations assumed uniform
        within a bucket).  Observations that landed in the implicit +Inf
        overflow bucket clamp to the highest finite bound — same
        convention as ``histogram_quantile``.  An empty histogram
        returns 0.0 so snapshot payloads stay valid JSON.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count <= 0.0:
            return 0.0
        rank = q * self.count
        running = 0.0
        lower = 0.0
        for bound, n in zip(self.buckets, self.counts):
            if n > 0.0 and running + n >= rank:
                fraction = max(0.0, rank - running) / n
                return lower + (bound - lower) * fraction
            running += n
            lower = bound
        return self.buckets[-1]

    def cumulative(self) -> List[Tuple[float, float]]:
        """(upper bound, cumulative count) pairs, ending with (+Inf, count)."""
        out: List[Tuple[float, float]] = []
        running = 0.0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.counts == other.counts
            and self.sum == other.sum
            and self.count == other.count
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count:.0f}, sum={self.sum})"


class CounterRegistry:
    """Flat ``(name, labels) -> value`` store with exact-total queries."""

    def __init__(self) -> None:
        self._values: Dict[CounterKey, float] = {}
        self._histograms: Dict[CounterKey, Histogram] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        key = _key(name, labels)
        self._values[key] = self._values.get(key, 0.0) + float(value)

    def set(self, name: str, value: float, **labels: object) -> None:
        self._values[_key(name, labels)] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
        **labels: object,
    ) -> None:
        """Record one observation into the named histogram series.

        The first observation of a series fixes its bucket bounds;
        ``buckets`` on later calls must match (histograms with different
        bounds are different metrics — rename one).
        """
        key = _key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram(buckets)
        elif hist.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name}{dict(key[1])} already has buckets "
                f"{hist.buckets}; pass matching bounds"
            )
        hist.observe(value)

    def add_histogram(
        self, name: str, hist: Histogram, **labels: object
    ) -> None:
        """Install a fully-built histogram series (parser plumbing)."""
        self._histograms[_key(name, labels)] = hist

    def merge(self, other: "CounterRegistry") -> "CounterRegistry":
        """Fold every series of ``other`` into this registry (adding).

        Scalar series add per ``(name, labels)`` key; histogram series with
        a matching key merge bucket-wise (bounds must agree).  This is how
        the serving layer folds per-flush registries into the long-lived
        ``/metrics`` registry: because ``device_bytes_total`` /
        ``device_seeks_total`` are pure sums of per-report counters, the
        merged registry still reconciles exactly against the
        :func:`~repro.storage.machine.merge_reports` sum of the same
        reports.
        """
        for (name, labels), value in other._values.items():
            key = (name, labels)
            self._values[key] = self._values.get(key, 0.0) + value
        for (name, labels), hist in other._histograms.items():
            key = (name, labels)
            mine = self._histograms.get(key)
            if mine is None:
                copy = Histogram(hist.buckets)
                copy.merge(hist)
                self._histograms[key] = copy
            else:
                mine.merge(hist)
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, name: str, **labels: object) -> float:
        return self._values.get(_key(name, labels), 0.0)

    def total(self, name: str, **match: object) -> float:
        """Sum of every series of ``name`` whose labels include ``match``."""
        want = {k: str(v) for k, v in match.items()}
        out = 0.0
        for (n, labels), value in self._values.items():
            if n != name:
                continue
            label_map = dict(labels)
            if all(label_map.get(k) == v for k, v in want.items()):
                out += value
        return out

    def items(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        """(name, labels, value) triples in deterministic (sorted) order."""
        for (name, labels), value in sorted(self._values.items()):
            yield name, dict(labels), value

    def histogram(self, name: str, **labels: object) -> Optional[Histogram]:
        return self._histograms.get(_key(name, labels))

    def histograms(self) -> Iterator[Tuple[str, Dict[str, str], Histogram]]:
        """(name, labels, histogram) triples in deterministic order."""
        for (name, labels), hist in sorted(
            self._histograms.items(), key=lambda kv: kv[0]
        ):
            yield name, dict(labels), hist

    def as_dict(self) -> Dict[CounterKey, float]:
        """Copy of the raw scalar mapping (for snapshot-equality assertions)."""
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values) + len(self._histograms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CounterRegistry):
            return NotImplemented
        return (
            self._values == other._values
            and self._histograms == other._histograms
        )

    # ------------------------------------------------------------------
    # collection from the storage layer
    # ------------------------------------------------------------------
    @classmethod
    def from_machine(cls, machine) -> "CounterRegistry":
        """Sample every counter source a machine owns.

        Pulls :meth:`Device.counter_samples` for each device (disks and
        RAM), :meth:`VFS.counter_samples`, and — when a page cache is
        attached — :meth:`PageCache.counter_samples`.  Sampling is
        read-only: calling this never perturbs the simulation.
        """
        reg = cls()
        for dev in machine.all_devices():
            reg._ingest_samples(dev.counter_samples())
        reg._ingest_samples(machine.vfs.counter_samples())
        if machine.page_cache is not None:
            reg._ingest_samples(machine.page_cache.counter_samples())
        injector = getattr(machine, "fault_injector", None)
        if injector is not None:
            reg._ingest_samples(injector.counter_samples())
        return reg

    @classmethod
    def from_report(cls, report) -> "CounterRegistry":
        """Rebuild the device counters recorded in an :class:`IOReport`.

        Per-query reports (deltas produced by ``IOReport.minus``) carry the
        same per-device, per-role byte accounting as a live machine, so a
        registry built from one holds that query's counters alone.
        """
        reg = cls()
        for dev in report.devices:
            for (role, kind), nbytes in dev.bytes_by_role.items():
                reg.inc(
                    "device_bytes_total",
                    nbytes,
                    device=dev.name,
                    kind=kind,
                    role=role,
                )
            reg.inc("device_seeks_total", dev.seek_count, device=dev.name)
        return reg

    def _ingest_samples(self, samples) -> None:
        for name, labels, value in samples:
            self.inc(name, value, **labels)

    # ------------------------------------------------------------------
    # engine-level counters
    # ------------------------------------------------------------------
    def ingest_result(self, result) -> "CounterRegistry":
        """Fold one :class:`EngineResult`'s run counters into the registry."""
        eng = result.engine
        self.inc(
            "engine_iterations_total", float(result.num_iterations), engine=eng
        )
        for it in result.iterations:
            self.inc("engine_edges_scanned_total", it.edges_scanned, engine=eng)
            self.inc(
                "engine_updates_generated_total", it.updates_generated, engine=eng
            )
            self.inc(
                "engine_partitions_processed_total",
                it.partitions_processed,
                engine=eng,
            )
            self.inc(
                "engine_partitions_skipped_total",
                it.partitions_skipped,
                engine=eng,
            )
            self.inc(
                "engine_edges_eliminated_total", it.edges_eliminated, engine=eng
            )
        for extra in (
            "stay_swaps",
            "stay_cancellations",
            "stay_records_written",
            "stay_bytes_written",
            "stay_end_of_run_discards",
            "stay_integrity_failures",
            "stay_write_failures",
        ):
            if extra in result.extras:
                self.inc(f"engine_{extra}_total", result.extras[extra], engine=eng)
        return self

    # ------------------------------------------------------------------
    # span-duration histograms
    # ------------------------------------------------------------------
    def ingest_spans(
        self,
        spans,
        name: str = "span_duration_seconds",
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
    ) -> "CounterRegistry":
        """Fold a span trace into per-stage duration histograms.

        ``spans`` is a :class:`~repro.obs.tracer.Tracer` or an iterable of
        :class:`~repro.obs.tracer.Span`; each finished span contributes one
        observation to the ``{stage=<span name>}`` series.
        """
        spans = getattr(spans, "spans", spans)
        for sp in spans:
            if sp.finished:
                self.observe(name, sp.duration, buckets=buckets, stage=sp.name)
        return self

    # ------------------------------------------------------------------
    # reconciliation with IOReport
    # ------------------------------------------------------------------
    def reconcile(self, report) -> List[str]:
        """Cross-check this registry against an :class:`IOReport`.

        Returns a list of human-readable mismatches (empty means the two
        accountings agree bit-for-bit).  Checks, per device:

        * registry read/write byte sums == ``DeviceReport.bytes_read`` /
          ``bytes_written`` (role ledger vs kind ledger);
        * per-(role, kind) registry series == ``DeviceReport.bytes_by_role``;
        * registry seek count == ``DeviceReport.seek_count``;

        and globally: persistent-device sums == ``report.bytes_read`` /
        ``bytes_written`` / ``bytes_total``.
        """
        problems: List[str] = []
        disk_read = 0.0
        disk_written = 0.0
        for dev in report.devices:
            got_read = self.total("device_bytes_total", device=dev.name, kind="read")
            got_written = self.total(
                "device_bytes_total", device=dev.name, kind="write"
            )
            if got_read != float(dev.bytes_read):
                problems.append(
                    f"{dev.name}: registry read bytes {got_read:.0f} != "
                    f"report {dev.bytes_read}"
                )
            if got_written != float(dev.bytes_written):
                problems.append(
                    f"{dev.name}: registry written bytes {got_written:.0f} != "
                    f"report {dev.bytes_written}"
                )
            for (role, kind), nbytes in dev.bytes_by_role.items():
                got = self.get(
                    "device_bytes_total", device=dev.name, kind=kind, role=role
                )
                if got != float(nbytes):
                    problems.append(
                        f"{dev.name}: role ({role}, {kind}) registry {got:.0f} "
                        f"!= report {nbytes}"
                    )
            seeks = self.get("device_seeks_total", device=dev.name)
            if seeks != float(dev.seek_count):
                problems.append(
                    f"{dev.name}: registry seeks {seeks:.0f} != "
                    f"report {dev.seek_count}"
                )
            if dev.kind != "ram":
                disk_read += got_read
                disk_written += got_written
        if disk_read != float(report.bytes_read):
            problems.append(
                f"persistent read total {disk_read:.0f} != "
                f"report.bytes_read {report.bytes_read}"
            )
        if disk_written != float(report.bytes_written):
            problems.append(
                f"persistent write total {disk_written:.0f} != "
                f"report.bytes_written {report.bytes_written}"
            )
        if disk_read + disk_written != float(report.bytes_total):
            problems.append(
                f"persistent byte total {disk_read + disk_written:.0f} != "
                f"report.bytes_total {report.bytes_total}"
            )
        return problems


def diff_registries(
    before: CounterRegistry, after: CounterRegistry
) -> Dict[CounterKey, float]:
    """Per-series ``after - before`` deltas, dropping exact zeros."""
    keys = set(before.as_dict()) | set(after.as_dict())
    out: Dict[CounterKey, float] = {}
    for key in sorted(keys):
        delta = after.as_dict().get(key, 0.0) - before.as_dict().get(key, 0.0)
        if delta:
            out[key] = delta
    return out


def machine_counters(machine, result=None) -> CounterRegistry:
    """Convenience: sample ``machine`` and optionally fold in a result."""
    reg = CounterRegistry.from_machine(machine)
    if result is not None:
        reg.ingest_result(result)
    return reg


__all__ = [
    "CounterRegistry",
    "DEFAULT_DURATION_BUCKETS",
    "Histogram",
    "diff_registries",
    "machine_counters",
]
