"""Structured span tracing on the simulated clock.

The reproduction's whole argument is about *where simulated time goes* —
scatter streams vs. asynchronous stay flushes vs. update shuffles across
disks — yet until this subsystem existed only end-of-run totals
(:class:`~repro.storage.machine.IOReport`) were machine-readable.  A
:class:`Tracer` records a tree of :class:`Span` objects whose start/end
times come from the run's :class:`~repro.sim.clock.SimClock`, so a single
trace answers "which partition's stay flush straddled iteration 3?" the
way Buluç & Madduri's per-phase timing breakdowns answer it for
distributed BFS.

Span taxonomy (see docs/observability.md for the full contract):

=============  =====================================================
name           attrs
=============  =====================================================
``stage``      engine, graph, partitions, in_memory, edges
``query``      engine, algorithm, graph, roots
``iteration``  iteration, edges_scanned, updates_generated, ...
``scatter``    partition, edges_streamed, updates_produced
``gather``     partition, updates_gathered, activated
``shuffle``    iteration, updates_persisted, update_bytes
``stay_flush`` partition, iteration, records, bytes  (async span)
``stay_cancel``partition, iteration, end_of_run, reason (async span)
``interval``   partition (GraphChi's PSW unit of work)
``io_retry``   device, group, attempt (backoff window; fault injection)
``io_giveup``  device, group, attempts (zero-width; retry exhaustion)
``crash``      device, group, index (zero-width; injected crash point)
``recover``    engine, roots (zero-width; crash/resume replay anchor)
=============  =====================================================

The last four exist only on fault-injected machines (see
:mod:`repro.storage.faults`); their counts reconcile exactly with the
injector's ``io_retries_total``/``io_giveups_total``/``fault_crash_total``/
``crash_recoveries_total`` counters.

Design rules:

* **No globals.**  The tracer is an explicit handle on
  :class:`~repro.storage.machine.Machine`; engines reach it as
  ``machine.tracer``.
* **No clock interaction.**  A tracer only *reads* ``clock.now``; it never
  charges compute, submits I/O or waits.  Tracing on vs. off is therefore
  bit-for-bit identical in simulated timings and byte totals (locked down
  by ``tests/test_obs.py``).
* **No-op by default.**  Machines carry :data:`NULL_TRACER` unless one is
  attached, and the null implementation allocates nothing per span, so the
  hot path stays clean.
* **Async spans.**  Stay flushes outlive the iteration that opened them,
  so they are emitted retroactively (via :meth:`Tracer.emit`) under an
  explicit parent — the enclosing ``query`` span — rather than the span
  stack's top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError


class TraceError(ReproError):
    """Raised on tracer misuse (unbalanced spans, missing clock)."""


@dataclass
class Span:
    """One node of the trace tree, timed on the simulated clock.

    When the owning tracer also carries a host clock (dual-clock
    profiling, :mod:`repro.obs.hostprof`), ``host_start``/``host_end``
    record the *wall-clock* side of the same span.  They stay at the
    ``-1.0`` sentinel — and are omitted from :meth:`to_dict` — on
    untraced-host runs, so the JSONL line schema is unchanged unless a
    host clock was explicitly bound.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float = -1.0
    attrs: Dict[str, object] = field(default_factory=dict)
    host_start: float = -1.0
    host_end: float = -1.0

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def finished(self) -> bool:
        return self.end >= self.start

    @property
    def host_timed(self) -> bool:
        """True when both host-side stamps were recorded."""
        return self.host_start >= 0.0 and self.host_end >= self.host_start

    @property
    def host_duration(self) -> float:
        """Host wall-clock seconds this span covered (0.0 if unstamped)."""
        if not self.host_timed:
            return 0.0
        return self.host_end - self.host_start

    def set(self, **attrs: object) -> "Span":
        """Attach attributes (chainable); later calls override earlier."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the JSONL exporter's line schema)."""
        out: Dict[str, object] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }
        if self.host_start >= 0.0:
            out["host_start"] = self.host_start
            out["host_end"] = self.host_end
        return out


class _ActiveSpan:
    """Context manager tying one :class:`Span` to the tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self.span)


class Tracer:
    """Collects spans for one machine's lifetime (append-only).

    Bound to a clock by :meth:`~repro.storage.machine.Machine.attach_tracer`
    (or explicitly via :meth:`bind_clock`).  ``Machine.restore`` rewinds the
    clock between query sessions but never truncates the trace: a batch run
    produces one ``query`` span per session, and simulated time visibly
    restarting between top-level spans is the recorded signature of the
    checkpoint/restore protocol.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._clock = None
        self._host = None
        self._next_id = 1

    # ------------------------------------------------------------------
    def bind_clock(self, clock) -> "Tracer":
        """Attach the simulated clock spans read their times from."""
        self._clock = clock
        return self

    def bind_host_clock(self, host_clock) -> "Tracer":
        """Attach a host wall clock (dual-clock profiling).

        Once bound, every nested span additionally records
        ``host_start``/``host_end`` from this clock.  The host clock is
        only ever *read* — it never touches the simulated clock or the
        cost model, so simulated results stay bit-identical with the
        host clock on or off (``tests/test_obs_hostprof.py``).
        """
        self._host = host_clock
        return self

    @property
    def host_enabled(self) -> bool:
        return self._host is not None

    def _now(self) -> float:
        if self._clock is None:
            raise TraceError(
                "tracer has no clock; attach it to a Machine "
                "(machine.attach_tracer(tracer)) before tracing"
            )
        return self._clock.now

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        """Open a child span of the current stack top (context manager)."""
        parent = self._stack[-1].span_id if self._stack else None
        sp = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            start=self._now(),
            attrs=dict(attrs),
        )
        if self._host is not None:
            sp.host_start = self._host.now()
        self._next_id += 1
        self.spans.append(sp)
        self._stack.append(sp)
        return _ActiveSpan(self, sp)

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise TraceError(
                f"span {span.name!r} closed out of order (unbalanced nesting)"
            )
        self._stack.pop()
        span.end = self._now()
        if self._host is not None and span.host_start >= 0.0:
            span.host_end = self._host.now()

    def emit(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[int] = None,
        **attrs: object,
    ) -> Span:
        """Record an already-completed span with explicit times.

        The escape hatch for asynchronous work (stay flushes) whose
        lifetime does not nest inside the span that observed it finishing:
        the caller supplies the real start/end and an explicit parent
        (usually the enclosing ``query`` span captured earlier).
        """
        if end < start:
            raise TraceError(f"span {name!r} ends before it starts ({end} < {start})")
        sp = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            start=start,
            end=end,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(sp)
        return sp

    # ------------------------------------------------------------------
    @property
    def current_id(self) -> Optional[int]:
        """Span id of the stack top (None outside any span)."""
        return self._stack[-1].span_id if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans if s.finished]

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, in emission order."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, span_id: int) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(spans={len(self.spans)}, depth={len(self._stack)})"


class _NullActiveSpan:
    """Shared no-op context manager; ``set`` swallows attributes."""

    __slots__ = ()

    def __enter__(self) -> "_NullActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: object) -> "_NullActiveSpan":
        return self


_NULL_SPAN = _NullActiveSpan()


class NullTracer(Tracer):
    """The disabled tracer: every operation is a constant-time no-op.

    One shared instance (:data:`NULL_TRACER`) serves every untraced
    machine; it never allocates a span, so code can call
    ``machine.tracer.span(...)`` unconditionally on the hot path.
    """

    enabled = False

    def bind_clock(self, clock) -> "NullTracer":
        return self

    def bind_host_clock(self, host_clock) -> "NullTracer":
        return self

    def span(self, name: str, **attrs: object) -> _NullActiveSpan:  # type: ignore[override]
        return _NULL_SPAN

    def emit(self, name, start, end, parent_id=None, **attrs):  # type: ignore[override]
        return None

    @property
    def current_id(self) -> Optional[int]:
        return None


#: Process-wide disabled tracer (stateless, safe to share).
NULL_TRACER = NullTracer()
