"""FastBFS reproduction library.

A full reimplementation of *FastBFS: Fast Breadth-First Graph Search on a
Single Server* (Cheng et al., IPDPS 2016): the FastBFS engine with
asynchronous trimming, its X-Stream and GraphChi baselines, and the
simulated single-server storage substrate they run on (real data path,
simulated time path).  See DESIGN.md for the architecture and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import rmat_graph, run_bfs

    graph = rmat_graph(scale=14, edge_factor=16, seed=7)
    result = run_bfs(graph, engine="fastbfs", memory="64MB")
    print(result.summary())
"""

from repro.algorithms import (
    BFSAlgorithm,
    UnitSSSPAlgorithm,
    WCCAlgorithm,
    bfs_levels,
    bfs_parents_and_levels,
    level_profile,
    teps,
    validate_bfs_result,
)
from repro.api import make_engine, profile_trace, run_bfs
from repro.core import FastBFSConfig, FastBFSEngine
from repro.engines import (
    EngineConfig,
    EngineResult,
    GraphChiConfig,
    GraphChiEngine,
    XStreamEngine,
)
from repro.errors import ReproError
from repro.graph import (
    Graph,
    build_dataset,
    grid_graph,
    load_graph,
    path_graph,
    powerlaw_graph,
    random_graph,
    rmat_graph,
    save_graph,
    star_graph,
)
from repro.storage import DeviceSpec, Machine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # graphs
    "Graph",
    "rmat_graph",
    "random_graph",
    "powerlaw_graph",
    "grid_graph",
    "path_graph",
    "star_graph",
    "build_dataset",
    "load_graph",
    "save_graph",
    # machines
    "Machine",
    "DeviceSpec",
    # engines
    "FastBFSEngine",
    "FastBFSConfig",
    "XStreamEngine",
    "EngineConfig",
    "GraphChiEngine",
    "GraphChiConfig",
    "EngineResult",
    "make_engine",
    "run_bfs",
    "profile_trace",
    # algorithms
    "BFSAlgorithm",
    "WCCAlgorithm",
    "UnitSSSPAlgorithm",
    "bfs_levels",
    "bfs_parents_and_levels",
    "level_profile",
    "validate_bfs_result",
    "teps",
]
