"""Long-lived graph query service over staged artifacts.

``repro serve`` / :func:`repro.api.serve` front door: an
:class:`~repro.serve.registry.ArtifactRegistry` of named staged graphs,
an :class:`~repro.serve.admission.AdmissionController` per graph that
coalesces concurrent BFS requests into MS-BFS batches, a per-graph
:class:`~repro.serve.health.CircuitBreaker` (healthy → degraded →
quarantined under flush failures), and a stdlib HTTP/JSON API
(:class:`~repro.serve.app.GraphService`).  See docs/serving.md.
"""

from repro.serve.admission import AdmissionController, FlushRecord, Ticket
from repro.serve.app import GraphService
from repro.serve.health import BreakerPolicy, CircuitBreaker
from repro.serve.registry import (
    ArtifactRegistry,
    GraphEntry,
    SERVABLE_ENGINES,
    parse_graph_spec,
)

__all__ = [
    "AdmissionController",
    "ArtifactRegistry",
    "BreakerPolicy",
    "CircuitBreaker",
    "FlushRecord",
    "GraphEntry",
    "GraphService",
    "SERVABLE_ENGINES",
    "Ticket",
    "parse_graph_spec",
]
