"""Artifact registry: named staged graphs pinned behind an LRU cache.

The serving cost model of the ROADMAP's "millions of users" goal: a graph
is staged **once** when it is registered (the sequential split into
per-partition edge files — the expensive part), and every query thereafter
rewinds the pinned machine to the post-staging checkpoint and replays only
the traversal (see :func:`repro.engines.session.run_staged_queries`).  A
:class:`GraphEntry` bundles everything one graph needs to serve forever:
the sealed :class:`~repro.engines.session.StagedGraph`, the warm
:class:`~repro.storage.machine.Machine`, the quiescent checkpoint and the
lock that serializes executions on that machine.

Registry capacity is bounded (``max_graphs``); registering beyond it
evicts the least-recently-used entry, dropping its machine and artifact.
Boot-time warmup takes a list of graph specs (see :func:`parse_graph_spec`)
so a server starts with its working set already staged.

Faults reach the server here: a registry-wide (or per-registration)
:class:`~repro.storage.faults.FaultPlan` is attached to each entry's
machine **after** staging and **before** the post-staging checkpoint, so
the artifact is built clean but every query replay runs on faulty
simulated devices; a :class:`~repro.storage.faults.RetryPolicy` rebuilds
the engine with I/O-level retries.  Each entry also carries its own
:class:`~repro.serve.health.CircuitBreaker` — the per-graph
healthy/degraded/quarantined state machine the admission layer drives.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engines.session import StagedGraph
from repro.errors import ConfigError, UnknownGraphError
from repro.graph.datasets import DATASETS, build_dataset
from repro.graph.generators import (
    grid_graph,
    path_graph,
    powerlaw_graph,
    random_graph,
    rmat_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.obs.hostprof import HostClock
from repro.serve.health import BreakerPolicy, CircuitBreaker
from repro.storage.faults import FaultPlan, RetryPolicy
from repro.storage.machine import Machine

#: Engines the registry will stage.  GraphChi's PSW shards do not share
#: the scatter/gather staging artifact the rewind protocol relies on.
SERVABLE_ENGINES = ("fastbfs", "fast-bfs", "x-stream", "xstream")

#: Generator spec kinds accepted by :func:`parse_graph_spec`, mapping
#: ``kind`` to (builder, integer parameter names in builder order).
_GENERATORS: Dict[str, Tuple[Callable, Tuple[str, ...]]] = {
    "rmat": (rmat_graph, ("scale", "edge_factor", "seed")),
    "random": (random_graph, ("num_vertices", "num_edges", "seed")),
    "powerlaw": (powerlaw_graph, ("num_vertices", "num_edges", "seed")),
    "grid": (grid_graph, ("width", "height")),
    "path": (path_graph, ("num_vertices",)),
    "star": (star_graph, ("num_leaves",)),
}


def parse_graph_spec(spec: str) -> Tuple[str, Graph]:
    """Resolve one warmup/registration spec to ``(name, graph)``.

    Three forms:

    * a Table II dataset name (``"rmat22"``, ``"twitter_rv"``) — built at
      the active scale divisor;
    * a generator spec ``"kind:key=value,key=value"`` with kinds
      ``rmat`` / ``random`` / ``powerlaw`` / ``grid`` / ``path`` /
      ``star`` (e.g. ``"rmat:scale=12,edge_factor=8,seed=7"``);
    * either of the above aliased as ``"name@spec"`` — the registry name
      to serve the graph under (defaults to the graph's own name).
    """
    alias: Optional[str] = None
    if "@" in spec:
        alias, spec = spec.split("@", 1)
        if not alias:
            raise ConfigError(f"empty alias in graph spec {alias}@{spec}")
    if ":" not in spec:
        if spec not in DATASETS:
            raise ConfigError(
                f"unknown dataset {spec!r}; options: {sorted(DATASETS)} "
                "(or a generator spec like 'rmat:scale=12,edge_factor=8')"
            )
        graph = build_dataset(spec)
        return alias or spec, graph
    kind, _, body = spec.partition(":")
    if kind not in _GENERATORS:
        raise ConfigError(
            f"unknown generator kind {kind!r}; options: "
            f"{sorted(_GENERATORS)}"
        )
    builder, param_names = _GENERATORS[kind]
    params: Dict[str, int] = {}
    for item in filter(None, body.split(",")):
        key, sep, value = item.partition("=")
        if not sep:
            raise ConfigError(
                f"malformed generator parameter {item!r} in {spec!r} "
                "(expected key=value)"
            )
        if key not in param_names:
            raise ConfigError(
                f"unknown parameter {key!r} for generator {kind!r}; "
                f"options: {param_names}"
            )
        try:
            params[key] = int(value)
        except ValueError:
            raise ConfigError(
                f"generator parameter {key!r} must be an int, got {value!r}"
            )
    try:
        graph = builder(**params)
    except TypeError:
        raise ConfigError(
            f"generator spec {spec!r} is missing required parameters "
            f"(accepted: {param_names})"
        )
    return alias or graph.name, graph


class GraphEntry:
    """One registered graph: sealed artifact, warm machine, serial lock.

    ``lock`` serializes every execution touching ``machine`` — the machine
    rewinds to ``checkpoint`` around each query batch, so two concurrent
    executions would corrupt each other's timelines.  The admission
    controller holds it for the whole of a batched flush.
    """

    def __init__(
        self,
        name: str,
        graph: Graph,
        engine,
        machine: Machine,
        staged: StagedGraph,
        checkpoint,
        fault_plan: Optional[FaultPlan] = None,
        health: Optional[CircuitBreaker] = None,
    ) -> None:
        self.name = name
        self.graph = graph
        self.engine = engine
        self.machine = machine
        self.staged = staged
        self.checkpoint = checkpoint
        self.fault_plan = fault_plan
        self.health = health if health is not None else CircuitBreaker(name)
        self.lock = threading.RLock()
        #: Monotonic serving counters, maintained by the admission layer.
        self.queries_served = 0
        self.flushes = 0

    def stats(self) -> Dict:
        """JSON-safe snapshot for the ``/graphs/{name}/stats`` endpoint."""
        staged = self.staged
        return {
            "name": self.name,
            "graph": {
                "name": self.graph.name,
                "num_vertices": int(self.graph.num_vertices),
                "num_edges": int(self.graph.num_edges),
            },
            "engine": self.engine.name,
            "partitions": int(staged.num_partitions),
            "in_memory": bool(staged.in_memory),
            "staging_report": (
                staged.staging_report.to_dict()
                if staged.staging_report is not None
                else None
            ),
            "queries_served": int(self.queries_served),
            "flushes": int(self.flushes),
            "fault_plan": (
                {"specs": len(self.fault_plan.specs), "seed": self.fault_plan.seed}
                if self.fault_plan is not None
                else None
            ),
            "health": self.health.snapshot(include_transitions=False),
        }


class ArtifactRegistry:
    """Bounded name -> :class:`GraphEntry` LRU of staged artifacts."""

    def __init__(
        self,
        engine: str = "fastbfs",
        config=None,
        machine_factory: Optional[Callable[[], Machine]] = None,
        max_graphs: int = 4,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        clock: Optional[HostClock] = None,
        on_transition: Optional[Callable[[str, str, str, str], None]] = None,
    ) -> None:
        from repro.api import make_engine

        if engine not in SERVABLE_ENGINES:
            raise ConfigError(
                f"engine {engine!r} is not servable; options: "
                f"{SERVABLE_ENGINES} (staged-artifact rewind only)"
            )
        if max_graphs < 1:
            raise ConfigError(f"max_graphs must be >= 1, got {max_graphs}")
        self.engine_name = engine
        self._config = config
        self._make_engine = lambda: make_engine(engine, config)
        self._machine_factory = machine_factory or Machine.commodity_server
        self.max_graphs = max_graphs
        #: Defaults for every registration; per-call arguments override.
        self.fault_plan = fault_plan
        self.retry = retry
        self.breaker_policy = breaker_policy
        self.clock = clock
        self.on_transition = on_transition
        self._entries: "OrderedDict[str, GraphEntry]" = OrderedDict()
        self._lock = threading.Lock()
        #: Names evicted over the registry's lifetime (observability).
        self.evictions: List[str] = []

    def register(
        self,
        name: str,
        graph: Graph,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> GraphEntry:
        """Stage ``graph`` under ``name``; evict LRU beyond capacity.

        Staging happens outside the registry lock (it is the slow part);
        if two racers register the same name the later result wins.
        Re-registering an existing name replaces its entry.

        ``fault_plan`` / ``retry`` override the registry-wide defaults for
        this entry.  Staging always runs on clean devices; the plan is
        attached after staging and before the post-staging
        :meth:`~repro.storage.machine.Machine.checkpoint`, so the
        checkpoint captures the injector's initial schedule state and
        every rewind-and-replay query faces the same fault timeline.
        """
        fault_plan = fault_plan if fault_plan is not None else self.fault_plan
        retry = retry if retry is not None else self.retry
        engine = self._make_engine()
        if retry is not None:
            engine = type(engine)(engine.config.with_(retry=retry))
        machine = self._machine_factory()
        staged = engine.stage(graph, machine)
        machine.attach_fault_plan(fault_plan)
        checkpoint = machine.checkpoint()
        entry = GraphEntry(
            name,
            graph,
            engine,
            machine,
            staged,
            checkpoint,
            fault_plan=fault_plan,
            health=CircuitBreaker(
                name,
                policy=self.breaker_policy,
                clock=self.clock,
                on_transition=self.on_transition,
            ),
        )
        with self._lock:
            self._entries.pop(name, None)
            self._entries[name] = entry
            while len(self._entries) > self.max_graphs:
                evicted, _ = self._entries.popitem(last=False)
                self.evictions.append(evicted)
        return entry

    def get(self, name: str) -> GraphEntry:
        """Fetch an entry (marking it most-recently-used) or raise."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownGraphError(
                    f"graph {name!r} is not registered; "
                    f"registered: {sorted(self._entries)}"
                )
            self._entries.move_to_end(name)
            return entry

    def names(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def entries(self) -> Dict[str, GraphEntry]:
        """Snapshot of every entry WITHOUT touching LRU order.

        Health/readiness polling (``/healthz``, ``/debug/health``) must
        not count as "use" or a dashboard would pin dead graphs in cache.
        """
        with self._lock:
            return dict(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def warmup(self, specs: Sequence[str]) -> List[GraphEntry]:
        """Register every spec in order (see :func:`parse_graph_spec`)."""
        entries = []
        for spec in specs:
            name, graph = parse_graph_spec(spec)
            entries.append(self.register(name, graph))
        return entries


__all__ = [
    "ArtifactRegistry",
    "GraphEntry",
    "SERVABLE_ENGINES",
    "parse_graph_spec",
]
