"""Per-graph health: a circuit breaker over consecutive flush failures.

Serving a graph whose simulated devices misbehave has three useful
regimes, and the breaker makes them explicit states on the
:class:`~repro.serve.registry.GraphEntry`:

``healthy``
    Batched flushes are completing; full MS-BFS amortization.
``degraded``
    Recent flushes needed the serial fallback (or exhausted their batched
    retries): responses still flow but the shared-scan amortization is
    lost, and the state says so before latency graphs do.
``quarantined``
    ``quarantine_after`` consecutive flush failures opened the breaker:
    requests are rejected at admission (HTTP 503 + ``Retry-After``)
    **without touching the machine**, for a deterministic cooldown on the
    host clock.
``probing``
    Half-open probation: the cooldown elapsed, one flush is admitted as a
    probe.  Success closes the breaker (``healthy``); failure re-opens it
    with the next, exponentially longer cooldown
    (:func:`~repro.utils.backoff.exponential_backoff` — the same curve as
    the I/O retry schedule).

Determinism: transitions depend only on the sequence of flush
success/failure events plus the injected
:class:`~repro.obs.hostprof.HostClock` readings — same fault plan, same
request sequence, same transition log.  Tests drive a
:class:`~repro.obs.hostprof.ManualHostClock`; the transition log (the
``/debug/health`` endpoint) records ``(at, from, to, reason)`` with
deterministic reason strings.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError, GraphQuarantinedError
from repro.obs.hostprof import HOST_CLOCK, HostClock
from repro.utils.backoff import exponential_backoff

#: The breaker's states, as reported by ``/healthz`` and ``/graphs/*/stats``.
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"
PROBING = "probing"

#: Stable numeric encoding for the ``breaker_state`` gauge.
STATE_CODES: Dict[str, int] = {
    HEALTHY: 0,
    DEGRADED: 1,
    PROBING: 2,
    QUARANTINED: 3,
}

#: A graph is ready (``/healthz`` readiness) unless the breaker is open.
READY_STATES = frozenset({HEALTHY, DEGRADED, PROBING})


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs for one graph's circuit breaker.

    ``degrade_after`` / ``quarantine_after`` count *consecutive* flush
    failures; the quarantine cooldown is
    ``cooldown_base * cooldown_multiplier ** (quarantines - 1)`` host
    seconds — deterministic, no jitter.
    """

    degrade_after: int = 1
    quarantine_after: int = 3
    cooldown_base: float = 1.0
    cooldown_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.degrade_after < 1:
            raise ConfigError(
                f"degrade_after must be >= 1, got {self.degrade_after}"
            )
        if self.quarantine_after < self.degrade_after:
            raise ConfigError(
                f"quarantine_after ({self.quarantine_after}) must be >= "
                f"degrade_after ({self.degrade_after})"
            )
        if self.cooldown_base <= 0:
            raise ConfigError(
                f"cooldown_base must be > 0, got {self.cooldown_base}"
            )
        if self.cooldown_multiplier < 1.0:
            raise ConfigError(
                f"cooldown_multiplier must be >= 1, "
                f"got {self.cooldown_multiplier}"
            )


class CircuitBreaker:
    """The health state machine for one registered graph.

    Thread-safe; every mutation happens under one mutex.  The admission
    layer reports exactly one success or failure event per flush
    (:meth:`record_flush_success` / :meth:`record_flush_failure`) and
    gates new requests through :meth:`admit`.  ``on_transition`` (if set)
    is called for every state change — the service wires it to the
    ``breaker_state`` gauge and ``breaker_transitions_total`` counter.
    """

    def __init__(
        self,
        name: str = "",
        policy: Optional[BreakerPolicy] = None,
        clock: Optional[HostClock] = None,
        on_transition: Optional[Callable[[str, str, str, str], None]] = None,
    ) -> None:
        self.name = name
        self.policy = policy if policy is not None else BreakerPolicy()
        self.clock = clock if clock is not None else HOST_CLOCK
        self.on_transition = on_transition
        self._mutex = threading.Lock()
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.failures_total = 0
        self.successes_total = 0
        #: Lifetime quarantine count — drives the exponential cooldown.
        self.quarantines = 0
        self.reopen_at: Optional[float] = None
        #: Append-only transition log: {"at", "from", "to", "reason"}.
        self.transitions: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # event intake (one call per flush, from the admission controller)
    # ------------------------------------------------------------------
    def admit(self) -> None:
        """Gate one request at admission; raise while quarantined.

        An elapsed cooldown flips the breaker to ``probing`` (half-open)
        so the next flush runs as the probe; an active cooldown raises
        :class:`~repro.errors.GraphQuarantinedError` carrying the exact
        remaining ``Retry-After`` — the graph's machine is never touched.
        """
        with self._mutex:
            self._maybe_reopen()
            if self.state != QUARANTINED:
                return
            remaining = max(0.0, (self.reopen_at or 0.0) - self.clock.now())
            raise GraphQuarantinedError(
                f"graph {self.name!r} is quarantined "
                f"({self.consecutive_failures} consecutive flush "
                f"failure(s)); probation in {remaining:.3f}s",
                retry_after=remaining,
            )

    def allow_flush(self) -> bool:
        """Whether already-queued tickets may execute a flush now.

        Same reopen logic as :meth:`admit`, without raising — the flush
        path fails its drained tickets with typed quarantine errors when
        this returns False.
        """
        with self._mutex:
            self._maybe_reopen()
            return self.state != QUARANTINED

    def record_flush_success(self) -> None:
        """One flush completed in batched mode: close toward healthy."""
        with self._mutex:
            self.successes_total += 1
            self.consecutive_failures = 0
            if self.state in (DEGRADED, PROBING):
                self._transition(HEALTHY, "batched flush succeeded")

    def record_flush_failure(self, reason: str = "") -> None:
        """One flush exhausted its batched retries (fallback or failure)."""
        with self._mutex:
            self.failures_total += 1
            self.consecutive_failures += 1
            why = f": {reason}" if reason else ""
            if self.state == PROBING:
                self._quarantine(f"probe flush failed{why}")
            elif self.consecutive_failures >= self.policy.quarantine_after:
                self._quarantine(
                    f"{self.consecutive_failures} consecutive flush "
                    f"failures{why}"
                )
            elif (
                self.state == HEALTHY
                and self.consecutive_failures >= self.policy.degrade_after
            ):
                self._transition(
                    DEGRADED,
                    f"{self.consecutive_failures} consecutive flush "
                    f"failure(s){why}",
                )

    # ------------------------------------------------------------------
    # internals (mutex held)
    # ------------------------------------------------------------------
    def _maybe_reopen(self) -> None:
        if (
            self.state == QUARANTINED
            and self.reopen_at is not None
            and self.clock.now() >= self.reopen_at
        ):
            self.reopen_at = None
            self._transition(
                PROBING, "cooldown elapsed; admitting one probe flush"
            )

    def _quarantine(self, reason: str) -> None:
        self.quarantines += 1
        cooldown = self.cooldown_seconds()
        self.reopen_at = self.clock.now() + cooldown
        self._transition(QUARANTINED, f"{reason}; cooldown {cooldown:g}s")

    def _transition(self, to: str, reason: str) -> None:
        frm = self.state
        self.transitions.append(
            {"at": self.clock.now(), "from": frm, "to": to, "reason": reason}
        )
        self.state = to
        if self.on_transition is not None:
            self.on_transition(self.name, frm, to, reason)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def cooldown_seconds(self) -> float:
        """The (next) quarantine cooldown — exponential in quarantine count."""
        return exponential_backoff(
            self.policy.cooldown_base,
            self.policy.cooldown_multiplier,
            max(1, self.quarantines),
        )

    def retry_after(self) -> float:
        """Suggested client backoff: remaining cooldown, else one flush."""
        with self._mutex:
            if self.state == QUARANTINED and self.reopen_at is not None:
                return max(0.0, self.reopen_at - self.clock.now())
            return 1.0

    @property
    def ready(self) -> bool:
        with self._mutex:
            return self.state in READY_STATES

    def state_code(self) -> int:
        return STATE_CODES[self.state]

    def snapshot(self, include_transitions: bool = True) -> Dict[str, object]:
        """JSON-safe view for ``/graphs/{name}/stats`` and ``/debug/health``."""
        with self._mutex:
            out: Dict[str, object] = {
                "state": self.state,
                "ready": self.state in READY_STATES,
                "consecutive_failures": self.consecutive_failures,
                "failures_total": self.failures_total,
                "successes_total": self.successes_total,
                "quarantines": self.quarantines,
                "cooldown_seconds": self.cooldown_seconds(),
                "reopen_in_seconds": (
                    max(0.0, self.reopen_at - self.clock.now())
                    if self.reopen_at is not None
                    else None
                ),
            }
            if include_transitions:
                out["transitions"] = [dict(t) for t in self.transitions]
            return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"failures={self.consecutive_failures})"
        )


__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "DEGRADED",
    "HEALTHY",
    "PROBING",
    "QUARANTINED",
    "READY_STATES",
    "STATE_CODES",
]
