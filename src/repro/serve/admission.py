"""Admission control: bounded queues coalescing BFS requests into batches.

The serving-side half of the MS-BFS amortization argument: batched
execution (`run_many(mode="batched")`, PR 7) only pays off when many
concurrent root queries share one edge-scan timeline, and it is admission
control that *produces* that sharing.  Each registered graph gets one
:class:`AdmissionController` holding a bounded FIFO of tickets; concurrent
HTTP threads enqueue their roots and then compete for the flush lock
(leader/follower): whichever thread wins drains up to
:data:`~repro.algorithms.streaming.BATCH_WIDTH` tickets and runs them as
**one** batched `run_staged_queries` call, fulfilling every drained
ticket's event; the losers just wait on their tickets.  A full queue
rejects deterministically (:class:`~repro.errors.QueueFullError`, mapped
to HTTP 429 + ``Retry-After``).

The controller's state machine is exposed as synchronous primitives —
:meth:`offer`, :meth:`flush`, :meth:`drain_pending` — so the accept/reject
batching behaviour is testable deterministically, single-threaded, without
any HTTP or thread scheduling in the loop.  :meth:`submit` is the
thread-facing composition the HTTP layer uses.  :meth:`hold` /
:meth:`release` gate flushing (tickets still accumulate) for
drain-on-shutdown tests.

Every flush attaches a fresh dual-clock
:class:`~repro.obs.tracer.Tracer` to the machine (tracing is
timing/byte-neutral; the bound host clock only annotates spans) and hands
the per-flush delta reports, engine counters and span histograms to a
``metrics_sink`` callback — the service merges them into the long-lived
``/metrics`` registry, preserving the exact-reconciliation invariant (see
docs/serving.md).  The flush id and every drained ticket's request id are
stamped into the batch's ``query`` span attributes (end-to-end request
tracing), and each fulfilled ticket carries the flush's span list for the
service's ``/debug/requests`` ring.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, List, Optional, Sequence, Union

from repro.algorithms.streaming import BATCH_WIDTH
from repro.engines.session import run_staged_queries
from repro.errors import QueueFullError, ServeError
from repro.obs.counters import CounterRegistry
from repro.obs.hostprof import HOST_CLOCK, HostClock
from repro.obs.tracer import Tracer
from repro.serve.registry import GraphEntry

#: Bucket bounds for the ``serve_flush_size`` histogram (roots per flush).
FLUSH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, float(BATCH_WIDTH))


class Ticket:
    """One admitted request: a root entry waiting for its flush."""

    __slots__ = (
        "request_id", "entry", "enqueued_at", "queue_wait",
        "done", "result", "report", "flush_id", "flush_size", "error",
        "spans",
    )

    def __init__(
        self,
        request_id: str,
        entry: Union[int, Sequence[int]],
        enqueued_at: float = 0.0,
    ):
        self.request_id = request_id
        self.entry = entry
        self.enqueued_at = enqueued_at
        self.queue_wait = 0.0
        self.done = threading.Event()
        self.result = None          # EngineResult once fulfilled
        self.report = None          # that flush's delta IOReport
        self.flush_id: Optional[str] = None
        self.flush_size = 0
        self.error: Optional[BaseException] = None
        self.spans: Optional[list] = None  # the flush's span trace


class FlushRecord:
    """What one flush executed (returned by :meth:`flush` for tests)."""

    __slots__ = ("flush_id", "tickets", "report", "registry", "spans")

    def __init__(self, flush_id, tickets, report, registry, spans=None):
        self.flush_id = flush_id
        self.tickets = tickets
        self.report = report
        self.registry = registry
        self.spans = spans if spans is not None else []

    @property
    def size(self) -> int:
        return len(self.tickets)


class AdmissionController:
    """Bounded, coalescing admission queue for one registered graph."""

    def __init__(
        self,
        entry: GraphEntry,
        capacity: int = 128,
        batch_width: int = BATCH_WIDTH,
        metrics_sink: Optional[Callable[[CounterRegistry], None]] = None,
        clock: Optional[HostClock] = None,
    ) -> None:
        if capacity < 1:
            raise ServeError(f"queue capacity must be >= 1, got {capacity}")
        if not 1 <= batch_width <= BATCH_WIDTH:
            raise ServeError(
                f"batch width must be in [1, {BATCH_WIDTH}], "
                f"got {batch_width}"
            )
        self.entry = entry
        self.capacity = capacity
        self.batch_width = batch_width
        self.metrics_sink = metrics_sink
        # Host time (queue-wait stamps, dual-clock flush traces) flows
        # through the sanctioned HostClock choke point — this module
        # never reads the wall clock directly (analyzer rule FB207).
        self.clock = clock if clock is not None else HOST_CLOCK
        self._queue: "deque[Ticket]" = deque()
        self._mutex = threading.Lock()     # guards queue + counters
        self._held = False
        self._closed = False
        self._flush_count = 0
        self._accepted = 0
        self._rejected = 0

    # ------------------------------------------------------------------
    # deterministic primitives
    # ------------------------------------------------------------------
    def offer(
        self, request_id: str, entry: Union[int, Sequence[int]]
    ) -> Ticket:
        """Admit one root entry or raise.

        Deterministic: accepts iff the queue holds fewer than ``capacity``
        tickets at the instant of the call; a saturated queue raises
        :class:`QueueFullError` whose ``retry_after`` is the (integer)
        number of full flushes needed to drain the backlog.  A closed
        (shutting-down) controller raises :class:`ServeError`.
        """
        with self._mutex:
            if self._closed:
                raise ServeError(
                    f"graph {self.entry.name!r} is shutting down"
                )
            pending = len(self._queue)
            if pending >= self.capacity:
                self._rejected += 1
                flushes_needed = -(-pending // self.batch_width)  # ceil
                raise QueueFullError(
                    f"admission queue for {self.entry.name!r} is full "
                    f"({pending}/{self.capacity})",
                    retry_after=float(max(1, flushes_needed)),
                )
            ticket = Ticket(request_id, entry, enqueued_at=self.clock.now())
            self._queue.append(ticket)
            self._accepted += 1
            return ticket

    def flush(self) -> Optional[FlushRecord]:
        """Drain up to ``batch_width`` tickets and run them as one batch.

        Serialized on the entry lock (the machine rewinds to the staging
        checkpoint around the batch).  Returns None when the queue was
        empty.  Every drained ticket is fulfilled — on engine failure the
        exception is recorded on each ticket instead of lost.
        """
        with self.entry.lock:
            with self._mutex:
                if not self._queue:
                    return None
                tickets = [
                    self._queue.popleft()
                    for _ in range(min(self.batch_width, len(self._queue)))
                ]
                self._flush_count += 1
                flush_id = f"{self.entry.name}-flush-{self._flush_count:06d}"
            drained_at = self.clock.now()
            for t in tickets:
                t.queue_wait = drained_at - t.enqueued_at
                t.flush_id = flush_id
                t.flush_size = len(tickets)
            try:
                record = self._execute(flush_id, tickets)
            except BaseException as exc:
                for t in tickets:
                    t.error = exc
                    t.done.set()
                raise
            for t in tickets:
                t.done.set()
            return record

    def _execute(self, flush_id: str, tickets: List[Ticket]) -> FlushRecord:
        entry = self.entry
        tracer = Tracer()
        entry.machine.attach_tracer(tracer)
        # Dual-clock: host stamps on the flush's spans feed the request
        # trace (/debug/requests/{id}); strictly neutral for sim results.
        tracer.bind_host_clock(self.clock)
        batch = run_staged_queries(
            entry.engine,
            entry.staged,
            entry.checkpoint,
            [t.entry for t in tickets],
            mode="batched",
            span_attrs={
                "flush_id": flush_id,
                "request_ids": [t.request_id for t in tickets],
            },
        )
        # All queries of one <=BATCH_WIDTH flush share a single batch
        # timeline, hence a single delta report object.
        report = batch.queries[0].report
        registry = CounterRegistry.from_report(report)
        for ticket, result in zip(tickets, batch.queries):
            ticket.result = result
            ticket.report = report
            ticket.spans = tracer.spans
            registry.ingest_result(result)
        registry.ingest_spans(tracer)
        registry.inc(
            "serve_flushes_total", 1.0, graph=entry.name
        )
        registry.inc(
            "serve_flushed_queries_total", float(len(tickets)),
            graph=entry.name,
        )
        registry.observe(
            "serve_flush_size", float(len(tickets)),
            buckets=FLUSH_SIZE_BUCKETS, graph=entry.name,
        )
        with self._mutex:
            entry.queries_served += len(tickets)
            entry.flushes += 1
        if self.metrics_sink is not None:
            self.metrics_sink(registry)
        return FlushRecord(flush_id, tickets, report, registry, tracer.spans)

    def drain_pending(self) -> int:
        """Flush until the queue is empty; returns tickets fulfilled."""
        total = 0
        while True:
            record = self.flush()
            if record is None:
                return total
            total += record.size

    # ------------------------------------------------------------------
    # flush gating (shutdown/drain tests)
    # ------------------------------------------------------------------
    def hold(self) -> None:
        """Stop :meth:`submit` threads from flushing (tickets still queue)."""
        with self._mutex:
            self._held = True

    def release(self) -> None:
        with self._mutex:
            self._held = False

    def stop_accepting(self) -> None:
        """Reject new offers from now on (shutdown)."""
        with self._mutex:
            self._closed = True

    # ------------------------------------------------------------------
    # thread-facing composition
    # ------------------------------------------------------------------
    def submit(
        self,
        request_id: str,
        entry: Union[int, Sequence[int]],
        poll_interval: float = 0.005,
    ) -> Ticket:
        """Admit, then leader-or-wait until the ticket is fulfilled.

        The calling thread loops: if its ticket is already fulfilled it
        returns; otherwise it tries to run a flush itself (becoming this
        round's leader) unless the controller is held.  Each flush retires
        at least one ticket while the queue is non-empty, so the loop
        terminates.  Engine failures recorded on the ticket re-raise here.
        """
        ticket = self.offer(request_id, entry)
        while not ticket.done.is_set():
            with self._mutex:
                held = self._held
            if held:
                ticket.done.wait(poll_interval)
                continue
            self.flush()
            ticket.done.wait(poll_interval)
        if ticket.error is not None:
            raise ticket.error
        return ticket

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._mutex:
            return len(self._queue)

    def counters(self) -> dict:
        with self._mutex:
            return {
                "queue_depth": len(self._queue),
                "capacity": self.capacity,
                "accepted": self._accepted,
                "rejected": self._rejected,
                "flushes": self._flush_count,
                "held": self._held,
                "closed": self._closed,
            }


__all__ = [
    "AdmissionController",
    "FLUSH_SIZE_BUCKETS",
    "FlushRecord",
    "Ticket",
]
