"""Admission control: bounded queues coalescing BFS requests into batches.

The serving-side half of the MS-BFS amortization argument: batched
execution (`run_many(mode="batched")`, PR 7) only pays off when many
concurrent root queries share one edge-scan timeline, and it is admission
control that *produces* that sharing.  Each registered graph gets one
:class:`AdmissionController` holding a bounded FIFO of tickets; concurrent
HTTP threads enqueue their roots and then compete for the flush lock
(leader/follower): whichever thread wins drains up to
:data:`~repro.algorithms.streaming.BATCH_WIDTH` tickets and runs them as
**one** batched `run_staged_queries` call, fulfilling every drained
ticket's event; the losers just wait on their tickets.  A full queue
rejects deterministically (:class:`~repro.errors.QueueFullError`, mapped
to HTTP 429 + ``Retry-After``).

The controller's state machine is exposed as synchronous primitives —
:meth:`offer`, :meth:`flush`, :meth:`drain_pending` — so the accept/reject
batching behaviour is testable deterministically, single-threaded, without
any HTTP or thread scheduling in the loop.  :meth:`submit` is the
thread-facing composition the HTTP layer uses.  :meth:`hold` /
:meth:`release` gate flushing (tickets still accumulate) for
drain-on-shutdown tests.

Resilience semantics (entry machines may run fault plans):

* **Flush-level recovery.**  ``run_staged_queries(max_recoveries=...)``
  absorbs crashes via checkpoint-replay inside one attempt; an attempt
  that still fails (``CrashError`` after exhausted recoveries, or an
  ``IOFaultError`` give-up) is retried up to ``flush_retries`` times —
  the machine rewinds to the staging checkpoint between attempts, so a
  success-after-retry response is bit-identical to a fault-free run.
* **Serial fallback.**  When every batched attempt fails the flush
  degrades: each ticket re-runs alone in serial mode (its own delta
  report, its own ``report_id``).  Shared-scan amortization is lost but
  individual requests still complete; only tickets whose serial run
  *also* fails surface a typed :class:`~repro.errors.FlushFailedError`
  (HTTP 503 + ``Retry-After``).  Entering the fallback is what counts as
  a flush *failure* for the entry's circuit breaker.
* **Circuit breaking.**  :meth:`offer` gates through
  ``entry.health.admit()`` — a quarantined graph rejects with
  :class:`~repro.errors.GraphQuarantinedError` before anything touches
  the machine; tickets already queued when the breaker opens are failed
  (typed, never dropped) at their flush.
* **Deadlines.**  Tickets optionally carry an absolute host-clock
  deadline (per-request ``deadline_ms`` or the controller default); it is
  checked at dequeue and again after the flush, and an expired ticket is
  fulfilled with :class:`~repro.errors.DeadlineExceededError` (HTTP 504)
  carrying its queue wait — expired work is never silently dropped.

Every flush attaches a fresh dual-clock
:class:`~repro.obs.tracer.Tracer` to the machine (tracing is
timing/byte-neutral; the bound host clock only annotates spans) and hands
the per-flush delta reports, engine counters, span histograms and fault
counter deltas (``fault_*``, ``io_retries_total``, ...) to a
``metrics_sink`` callback — the service merges them into the long-lived
``/metrics`` registry, preserving the exact-reconciliation invariant (see
docs/serving.md).  The flush id and every drained ticket's request id are
stamped into the batch's ``query`` span attributes (end-to-end request
tracing), and each fulfilled ticket carries the flush's span list for the
service's ``/debug/requests`` ring.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.algorithms.streaming import BATCH_WIDTH
from repro.engines.session import run_staged_queries
from repro.errors import (
    CrashError,
    DeadlineExceededError,
    FlushFailedError,
    GraphQuarantinedError,
    IOFaultError,
    QueueFullError,
    ServeError,
)
from repro.obs.counters import CounterRegistry
from repro.obs.hostprof import HOST_CLOCK, HostClock
from repro.obs.tracer import Tracer
from repro.serve.registry import GraphEntry

#: Bucket bounds for the ``serve_flush_size`` histogram (roots per flush).
FLUSH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, float(BATCH_WIDTH))

#: Crash/resume replays armed inside each ``run_staged_queries`` attempt.
DEFAULT_MAX_RECOVERIES = 4


class Ticket:
    """One admitted request: a root entry waiting for its flush."""

    __slots__ = (
        "request_id", "entry", "enqueued_at", "queue_wait",
        "deadline_at", "deadline_ms",
        "done", "result", "report", "flush_id", "flush_size", "error",
        "report_id", "spans",
    )

    def __init__(
        self,
        request_id: str,
        entry: Union[int, Sequence[int]],
        enqueued_at: float = 0.0,
        deadline_at: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ):
        self.request_id = request_id
        self.entry = entry
        self.enqueued_at = enqueued_at
        self.queue_wait = 0.0
        self.deadline_at = deadline_at    # absolute host-clock expiry
        self.deadline_ms = deadline_ms    # as requested (for the 504 body)
        self.done = threading.Event()
        self.result = None          # EngineResult once fulfilled
        self.report = None          # that flush's delta IOReport
        self.flush_id: Optional[str] = None
        self.flush_size = 0
        self.error: Optional[BaseException] = None
        #: Report identity for metrics dedup: the flush id for batched
        #: execution, ``{flush_id}-sNN`` for a serial-fallback re-run
        #: (each fallback ticket carries its own delta report).
        self.report_id: Optional[str] = None
        self.spans: Optional[list] = None  # the flush's span trace


class FlushRecord:
    """What one flush executed (returned by :meth:`flush` for tests)."""

    __slots__ = ("flush_id", "tickets", "report", "registry", "spans")

    def __init__(self, flush_id, tickets, report, registry, spans=None):
        self.flush_id = flush_id
        self.tickets = tickets
        self.report = report
        self.registry = registry
        self.spans = spans if spans is not None else []

    @property
    def size(self) -> int:
        return len(self.tickets)


class AdmissionController:
    """Bounded, coalescing admission queue for one registered graph."""

    def __init__(
        self,
        entry: GraphEntry,
        capacity: int = 128,
        batch_width: int = BATCH_WIDTH,
        metrics_sink: Optional[Callable[[CounterRegistry], None]] = None,
        clock: Optional[HostClock] = None,
        default_deadline_ms: Optional[float] = None,
        flush_retries: int = 2,
        max_recoveries: int = DEFAULT_MAX_RECOVERIES,
    ) -> None:
        if capacity < 1:
            raise ServeError(f"queue capacity must be >= 1, got {capacity}")
        if not 1 <= batch_width <= BATCH_WIDTH:
            raise ServeError(
                f"batch width must be in [1, {BATCH_WIDTH}], "
                f"got {batch_width}"
            )
        if flush_retries < 1:
            raise ServeError(
                f"flush_retries must be >= 1, got {flush_retries}"
            )
        if max_recoveries < 0:
            raise ServeError(
                f"max_recoveries must be >= 0, got {max_recoveries}"
            )
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ServeError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        self.entry = entry
        self.capacity = capacity
        self.batch_width = batch_width
        self.metrics_sink = metrics_sink
        # Host time (queue-wait stamps, deadlines, dual-clock flush traces)
        # flows through the sanctioned HostClock choke point — this module
        # never reads the wall clock directly (analyzer rule FB207).
        self.clock = clock if clock is not None else HOST_CLOCK
        self.default_deadline_ms = default_deadline_ms
        self.flush_retries = flush_retries
        self.max_recoveries = max_recoveries
        self._queue: "deque[Ticket]" = deque()
        self._mutex = threading.Lock()     # guards queue + counters
        self._held = False
        self._closed = False
        self._flush_count = 0
        self._accepted = 0
        self._rejected = 0
        self._flush_retries_total = 0
        self._serial_fallbacks = 0
        self._deadline_expired = 0

    # ------------------------------------------------------------------
    # deterministic primitives
    # ------------------------------------------------------------------
    def offer(
        self,
        request_id: str,
        entry: Union[int, Sequence[int]],
        deadline_ms: Optional[float] = None,
    ) -> Ticket:
        """Admit one root entry or raise.

        Deterministic: accepts iff the graph is not quarantined and the
        queue holds fewer than ``capacity`` tickets at the instant of the
        call.  A quarantined breaker raises
        :class:`GraphQuarantinedError` (its ``retry_after`` is the exact
        remaining cooldown) *before* anything touches the queue or the
        machine; a saturated queue raises :class:`QueueFullError` whose
        ``retry_after`` is the (integer) number of full flushes needed to
        drain the backlog.  A closed (shutting-down) controller raises
        :class:`ServeError`.  ``deadline_ms`` (or the controller default)
        stamps an absolute host-clock deadline on the ticket.
        """
        self.entry.health.admit()
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        with self._mutex:
            if self._closed:
                raise ServeError(
                    f"graph {self.entry.name!r} is shutting down"
                )
            pending = len(self._queue)
            if pending >= self.capacity:
                self._rejected += 1
                flushes_needed = -(-pending // self.batch_width)  # ceil
                raise QueueFullError(
                    f"admission queue for {self.entry.name!r} is full "
                    f"({pending}/{self.capacity})",
                    retry_after=float(max(1, flushes_needed)),
                )
            now = self.clock.now()
            ticket = Ticket(
                request_id,
                entry,
                enqueued_at=now,
                deadline_at=(
                    now + deadline_ms / 1000.0
                    if deadline_ms is not None
                    else None
                ),
                deadline_ms=deadline_ms,
            )
            self._queue.append(ticket)
            self._accepted += 1
            return ticket

    def flush(self) -> Optional[FlushRecord]:
        """Drain up to ``batch_width`` tickets and run them as one batch.

        Serialized on the entry lock (the machine rewinds to the staging
        checkpoint around the batch).  Returns None when the queue was
        empty.  Every drained ticket is fulfilled — already-expired
        tickets get :class:`DeadlineExceededError`, tickets drained while
        the breaker is open get :class:`GraphQuarantinedError` (the
        machine is not touched), engine failures that survive retries and
        the serial fallback get :class:`FlushFailedError`; nothing is
        silently dropped.  A post-flush deadline check catches tickets
        whose flush outlived their budget.
        """
        with self.entry.lock:
            with self._mutex:
                if not self._queue:
                    return None
                tickets = [
                    self._queue.popleft()
                    for _ in range(min(self.batch_width, len(self._queue)))
                ]
                self._flush_count += 1
                flush_id = f"{self.entry.name}-flush-{self._flush_count:06d}"
            drained_at = self.clock.now()
            for t in tickets:
                t.queue_wait = drained_at - t.enqueued_at
                t.flush_id = flush_id
                t.flush_size = len(tickets)
            expired = [
                t for t in tickets
                if t.deadline_at is not None and drained_at > t.deadline_at
            ]
            runnable = [t for t in tickets if t not in expired]
            try:
                if expired:
                    self._expire_tickets(expired, "queued")
                if not runnable:
                    record = FlushRecord(flush_id, tickets, None, None, [])
                elif not self.entry.health.allow_flush():
                    self._quarantine_tickets(runnable, flush_id)
                    record = FlushRecord(flush_id, tickets, None, None, [])
                else:
                    executed = self._execute(flush_id, runnable)
                    finished_at = self.clock.now()
                    late = [
                        t for t in runnable
                        if t.deadline_at is not None
                        and finished_at > t.deadline_at
                    ]
                    if late:
                        self._expire_tickets(late, "post-flush")
                    record = FlushRecord(
                        flush_id, tickets,
                        executed.report, executed.registry, executed.spans,
                    )
            except BaseException as exc:
                for t in tickets:
                    if t.error is None:
                        t.error = exc
                    t.done.set()
                raise
            for t in tickets:
                t.done.set()
            return record

    def _execute(self, flush_id: str, tickets: List[Ticket]) -> FlushRecord:
        """Run one drained batch: batched-with-retries, serial fallback.

        Each batched attempt rewinds the machine to the staging checkpoint
        first (``restore_first=True`` default), so failed attempts leave
        no residue and a success-after-retry result is bit-identical to a
        fault-free run; crashes *inside* an attempt are absorbed by the
        session recovery loop (``max_recoveries``).  Exhausting all
        ``flush_retries`` batched attempts enters the serial fallback and
        reports one flush failure to the entry's circuit breaker.
        """
        entry = self.entry
        injector = entry.machine.fault_injector
        fault_base = (
            injector.counts_snapshot() if injector is not None else None
        )
        roots = [t.entry for t in tickets]
        attempts = 0
        failure: Optional[BaseException] = None
        batch = None
        tracer = Tracer()
        while attempts < self.flush_retries:
            attempts += 1
            tracer = Tracer()
            entry.machine.attach_tracer(tracer)
            # Dual-clock: host stamps on the flush's spans feed the request
            # trace (/debug/requests/{id}); strictly neutral for sim results.
            tracer.bind_host_clock(self.clock)
            try:
                batch = run_staged_queries(
                    entry.engine,
                    entry.staged,
                    entry.checkpoint,
                    roots,
                    mode="batched",
                    span_attrs={
                        "flush_id": flush_id,
                        "request_ids": [t.request_id for t in tickets],
                        "attempt": attempts,
                    },
                    max_recoveries=self.max_recoveries,
                )
                failure = None
                break
            except (CrashError, IOFaultError) as exc:
                failure = FlushFailedError(
                    f"flush {flush_id} batched attempt {attempts}/"
                    f"{self.flush_retries} failed: {type(exc).__name__}",
                    retry_after=1.0,
                )
                failure.__cause__ = exc
        if batch is None:
            return self._serial_fallback(
                flush_id, tickets, failure, fault_base, attempts
            )
        # All queries of one <=BATCH_WIDTH flush share a single batch
        # timeline, hence a single delta report object.
        report = batch.queries[0].report
        registry = CounterRegistry.from_report(report)
        for ticket, result in zip(tickets, batch.queries):
            ticket.result = result
            ticket.report = report
            ticket.report_id = flush_id
            ticket.spans = tracer.spans
            registry.ingest_result(result)
        registry.ingest_spans(tracer)
        registry.inc(
            "serve_flushes_total", 1.0, graph=entry.name
        )
        registry.inc(
            "serve_flushed_queries_total", float(len(tickets)),
            graph=entry.name,
        )
        registry.observe(
            "serve_flush_size", float(len(tickets)),
            buckets=FLUSH_SIZE_BUCKETS, graph=entry.name,
        )
        if attempts > 1:
            registry.inc(
                "flush_retry_total", float(attempts - 1), graph=entry.name
            )
        self._ingest_fault_deltas(registry, fault_base)
        with self._mutex:
            entry.queries_served += len(tickets)
            entry.flushes += 1
            self._flush_retries_total += attempts - 1
        entry.health.record_flush_success()
        if self.metrics_sink is not None:
            self.metrics_sink(registry)
        return FlushRecord(flush_id, tickets, report, registry, tracer.spans)

    def _serial_fallback(
        self,
        flush_id: str,
        tickets: List[Ticket],
        failure: Optional[BaseException],
        fault_base: Optional[Dict],
        attempts: int,
    ) -> FlushRecord:
        """Degraded mode: re-run each ticket alone after batched exhaustion.

        Amortization is lost (one edge-scan timeline per ticket instead of
        one shared) but requests still complete where the fault schedule
        allows; a ticket whose serial run also fails carries a typed
        :class:`FlushFailedError` chaining the underlying fault.  Exactly
        one breaker failure event is recorded for the whole flush.
        """
        entry = self.entry
        cause = getattr(failure, "__cause__", None)
        cause_name = type(cause).__name__ if cause is not None else "unknown"
        registry = CounterRegistry()
        spans: List = []
        succeeded = 0
        for index, t in enumerate(tickets):
            report_id = f"{flush_id}-s{index:02d}"
            tracer = Tracer()
            entry.machine.attach_tracer(tracer)
            tracer.bind_host_clock(self.clock)
            try:
                batch = run_staged_queries(
                    entry.engine,
                    entry.staged,
                    entry.checkpoint,
                    [t.entry],
                    mode="serial",
                    span_attrs={
                        "flush_id": report_id,
                        "request_ids": [t.request_id],
                        "serial_fallback": 1,
                    },
                    max_recoveries=self.max_recoveries,
                )
            except (CrashError, IOFaultError) as exc:
                error = FlushFailedError(
                    f"flush {flush_id} failed for request "
                    f"{t.request_id}: {attempts} batched attempt(s) "
                    f"({cause_name}), then serial fallback "
                    f"({type(exc).__name__})",
                    retry_after=entry.health.cooldown_seconds(),
                )
                error.__cause__ = exc
                t.error = error
                continue
            result = batch.queries[0]
            t.result = result
            t.report = result.report
            t.report_id = report_id
            t.spans = tracer.spans
            spans.extend(tracer.spans)
            sub = CounterRegistry.from_report(result.report)
            sub.ingest_result(result)
            sub.ingest_spans(tracer)
            registry.merge(sub)
            succeeded += 1
        registry.inc("serve_flushes_total", 1.0, graph=entry.name)
        registry.inc(
            "serve_flushed_queries_total", float(succeeded),
            graph=entry.name,
        )
        registry.observe(
            "serve_flush_size", float(len(tickets)),
            buckets=FLUSH_SIZE_BUCKETS, graph=entry.name,
        )
        registry.inc(
            "flush_retry_total", float(attempts - 1), graph=entry.name
        )
        registry.inc(
            "serve_flush_serial_fallback_total", 1.0, graph=entry.name
        )
        if succeeded < len(tickets):
            registry.inc(
                "serve_flush_failed_total",
                float(len(tickets) - succeeded),
                graph=entry.name,
            )
        self._ingest_fault_deltas(registry, fault_base)
        with self._mutex:
            entry.queries_served += succeeded
            entry.flushes += 1
            self._flush_retries_total += attempts - 1
            self._serial_fallbacks += 1
        entry.health.record_flush_failure(cause_name)
        if self.metrics_sink is not None:
            self.metrics_sink(registry)
        return FlushRecord(flush_id, tickets, None, registry, spans)

    def _expire_tickets(self, tickets: List[Ticket], where: str) -> None:
        """Fulfil expired tickets with typed 504s; count, never drop."""
        registry = CounterRegistry()
        for t in tickets:
            budget = t.deadline_ms if t.deadline_ms is not None else 0.0
            t.error = DeadlineExceededError(
                f"request {t.request_id} exceeded its {budget:g}ms "
                f"deadline ({where}; queue wait "
                f"{t.queue_wait * 1000.0:.1f}ms)",
                deadline_ms=budget,
                queue_wait=t.queue_wait,
            )
            registry.inc(
                "deadline_exceeded_total", 1.0,
                graph=self.entry.name, where=where,
            )
        with self._mutex:
            self._deadline_expired += len(tickets)
        if self.metrics_sink is not None:
            self.metrics_sink(registry)

    def _quarantine_tickets(
        self, tickets: List[Ticket], flush_id: str
    ) -> None:
        """Fail tickets drained while the breaker is open (machine untouched)."""
        registry = CounterRegistry()
        for t in tickets:
            t.error = GraphQuarantinedError(
                f"graph {self.entry.name!r} was quarantined while request "
                f"{t.request_id} was queued; flush {flush_id} rejected",
                retry_after=self.entry.health.retry_after(),
            )
        registry.inc(
            "serve_quarantine_rejections_total", float(len(tickets)),
            graph=self.entry.name,
        )
        if self.metrics_sink is not None:
            self.metrics_sink(registry)

    def _ingest_fault_deltas(
        self, registry: CounterRegistry, fault_base: Optional[Dict]
    ) -> None:
        """Fold this flush's fault-counter growth into its metrics delta.

        Injector counters are lifetime (never rewound by restores), so the
        delta against the pre-flush snapshot also captures faults from
        batched attempts that were rolled back — exactly what the chaos
        harness reconciles against the span trace.
        """
        injector = self.entry.machine.fault_injector
        if injector is None or fault_base is None:
            return
        for name, labels, value in injector.delta_samples(fault_base):
            registry.inc(name, value, graph=self.entry.name, **labels)

    def drain_pending(self) -> int:
        """Flush until the queue is empty; returns tickets fulfilled."""
        total = 0
        while True:
            record = self.flush()
            if record is None:
                return total
            total += record.size

    # ------------------------------------------------------------------
    # flush gating (shutdown/drain tests)
    # ------------------------------------------------------------------
    def hold(self) -> None:
        """Stop :meth:`submit` threads from flushing (tickets still queue)."""
        with self._mutex:
            self._held = True

    def release(self) -> None:
        with self._mutex:
            self._held = False

    def stop_accepting(self) -> None:
        """Reject new offers from now on (shutdown)."""
        with self._mutex:
            self._closed = True

    # ------------------------------------------------------------------
    # thread-facing composition
    # ------------------------------------------------------------------
    def submit(
        self,
        request_id: str,
        entry: Union[int, Sequence[int]],
        poll_interval: float = 0.005,
        deadline_ms: Optional[float] = None,
    ) -> Ticket:
        """Admit, then leader-or-wait until the ticket is fulfilled.

        The calling thread loops: if its ticket is already fulfilled it
        returns; otherwise it tries to run a flush itself (becoming this
        round's leader) unless the controller is held.  Each flush retires
        at least one ticket while the queue is non-empty, so the loop
        terminates.  Typed failures recorded on the ticket (engine, flush,
        quarantine, deadline) re-raise here.
        """
        ticket = self.offer(request_id, entry, deadline_ms=deadline_ms)
        while not ticket.done.is_set():
            with self._mutex:
                held = self._held
            if held:
                ticket.done.wait(poll_interval)
                continue
            self.flush()
            ticket.done.wait(poll_interval)
        if ticket.error is not None:
            raise ticket.error
        return ticket

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._mutex:
            return len(self._queue)

    def counters(self) -> dict:
        with self._mutex:
            return {
                "queue_depth": len(self._queue),
                "capacity": self.capacity,
                "accepted": self._accepted,
                "rejected": self._rejected,
                "flushes": self._flush_count,
                "flush_retries": self._flush_retries_total,
                "serial_fallbacks": self._serial_fallbacks,
                "deadline_expired": self._deadline_expired,
                "held": self._held,
                "closed": self._closed,
            }


__all__ = [
    "AdmissionController",
    "DEFAULT_MAX_RECOVERIES",
    "FLUSH_SIZE_BUCKETS",
    "FlushRecord",
    "Ticket",
]
