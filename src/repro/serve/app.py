"""HTTP/JSON front door for the graph query service.

Stdlib only (``http.server`` + ``ThreadingHTTPServer`` — no new runtime
deps): each request runs on its own thread, BFS requests funnel through
the per-graph :class:`~repro.serve.admission.AdmissionController` (so
concurrent roots coalesce into MS-BFS batches), SSSP/PageRank run as
serial staged queries under the graph's entry lock.

Endpoints (details + curl examples in docs/serving.md):

* ``GET  /healthz`` — liveness + per-graph readiness/health states.
* ``GET  /debug/health`` — breaker snapshots + transition logs.
* ``GET  /metrics`` — Prometheus text exposition of the service registry.
* ``GET  /graphs`` — registered graph names.
* ``POST /graphs/{name}`` — register a graph from a spec
  (``{"spec": "rmat:scale=10,edge_factor=8,seed=7"}``).
* ``GET  /graphs/{name}/stats`` — artifact + serving statistics.
* ``POST /graphs/{name}/bfs`` — ``{"root": 3}`` or ``{"roots": [3, 4]}``
  (one multi-source query); coalesced + batched.  Optional
  ``"deadline_ms"`` bounds queue wait + flush time (expired → 504).
* ``POST /graphs/{name}/sssp`` — ``{"root": 3, "max_weight": 8}``.
* ``POST /graphs/{name}/pagerank`` — ``{"rounds": 5, "damping": 0.85}``.

Every response carries ``X-Request-Id``; query responses additionally
carry queue-wait and simulated-time breakdown headers plus the flush id
(``report_id``) that keys the per-flush delta
:class:`~repro.storage.machine.IOReport` echoed in the JSON body — the
handle the metrics-reconciliation tests dedup shared batch reports by.

The ``/metrics`` registry is **exactly reconcilable**: it is built purely
by merging per-staging and per-flush ``CounterRegistry.from_report``
registries (plus engine counters, span histograms and ``serve_*``
series), so ``parse_prometheus(metrics).reconcile(merge_reports(staging
reports + unique flush reports)) == []`` bit-for-bit.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from repro.algorithms.pagerank import PageRankAlgorithm
from repro.algorithms.sssp import WeightedSSSPAlgorithm, hash_weights
from repro.algorithms.streaming import BFSAlgorithm
from repro.engines.session import run_staged_queries
from repro.errors import (
    ConfigError,
    CrashError,
    DeadlineExceededError,
    EngineError,
    FlushFailedError,
    GraphQuarantinedError,
    IOFaultError,
    QueueFullError,
    ReproError,
    ServeError,
    UnknownGraphError,
)
from repro.obs.counters import DEFAULT_DURATION_BUCKETS, CounterRegistry
from repro.obs.exporters import PROMETHEUS_CONTENT_TYPE, to_prometheus
from repro.obs.hostprof import HOST_CLOCK, HostClock
from repro.obs.timeseries import TimeSeries, quantile_summary
from repro.obs.tracer import Tracer
from repro.serve.admission import DEFAULT_MAX_RECOVERIES, AdmissionController
from repro.serve.debug import RequestLog, RequestRecord
from repro.serve.health import STATE_CODES, BreakerPolicy
from repro.serve.registry import ArtifactRegistry, GraphEntry, parse_graph_spec
from repro.storage.faults import FaultPlan, RetryPolicy

JSON_CONTENT_TYPE = "application/json"

#: Bucket bounds for the ``serve_queue_wait_seconds`` histogram (wall
#: seconds a request sat in the admission queue).
QUEUE_WAIT_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

QUERY_ALGORITHMS = ("bfs", "sssp", "pagerank")

#: Client-supplied ``X-Request-Id`` values must match this (safe charset,
#: length-capped); anything else falls back to a generated id.
REQUEST_ID_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class _RequestProblem(Exception):
    """Internal: an HTTP error response (status + typed JSON body)."""

    def __init__(self, status: int, kind: str, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.message = message
        self.headers = headers or {}
        #: Queue wait carried by deadline problems (504 accounting).
        self.queue_wait: Optional[float] = None


def _problem_for(exc: Exception) -> _RequestProblem:
    """Map a library exception to its HTTP problem."""
    if isinstance(exc, _RequestProblem):
        return exc
    if isinstance(exc, UnknownGraphError):
        return _RequestProblem(404, "unknown_graph", str(exc))
    if isinstance(exc, QueueFullError):
        return _RequestProblem(
            429, "queue_full", str(exc),
            headers={"Retry-After": f"{exc.retry_after:g}"},
        )
    if isinstance(exc, DeadlineExceededError):
        problem = _RequestProblem(504, "deadline_exceeded", str(exc))
        problem.queue_wait = exc.queue_wait
        return problem
    if isinstance(exc, GraphQuarantinedError):
        return _RequestProblem(
            503, "graph_quarantined", str(exc),
            headers={"Retry-After": f"{exc.retry_after:g}"},
        )
    if isinstance(exc, FlushFailedError):
        return _RequestProblem(
            503, "flush_failed", str(exc),
            headers={"Retry-After": f"{exc.retry_after:g}"},
        )
    if isinstance(exc, ServeError):
        return _RequestProblem(503, "shutting_down", str(exc))
    if isinstance(exc, EngineError):
        return _RequestProblem(400, "bad_root", str(exc))
    if isinstance(exc, ConfigError):
        return _RequestProblem(400, "bad_request", str(exc))
    if isinstance(exc, ReproError):
        return _RequestProblem(500, "internal_error", str(exc))
    return _RequestProblem(
        500, "internal_error", f"{type(exc).__name__}: {exc}"
    )


class GraphService:
    """The long-lived serving process: registry + admission + HTTP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        warmup: Sequence[str] = (),
        engine: str = "fastbfs",
        capacity: int = 128,
        max_graphs: int = 4,
        config=None,
        machine_factory=None,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        default_deadline_ms: Optional[float] = None,
        flush_retries: int = 2,
        clock: Optional[HostClock] = None,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.capacity = capacity
        # Host time (deadlines, breaker cooldowns, queue-wait stamps) flows
        # through one injectable clock so fault/chaos tests can drive it.
        self.clock = clock if clock is not None else HOST_CLOCK
        self.default_deadline_ms = default_deadline_ms
        self.flush_retries = flush_retries
        self.registry = ArtifactRegistry(
            engine=engine,
            config=config,
            machine_factory=machine_factory,
            max_graphs=max_graphs,
            fault_plan=fault_plan,
            retry=retry,
            breaker_policy=breaker_policy,
            clock=self.clock,
            on_transition=self._on_breaker_transition,
        )
        self._warmup_specs = tuple(warmup)
        self._controllers: Dict[str, AdmissionController] = {}
        self._control_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._registry_metrics = CounterRegistry()
        self._request_lock = threading.Lock()
        self._request_count = 0
        #: Bounded recent-request ring behind ``GET /debug/requests``.
        self.request_log = RequestLog()
        #: Rolling windowed metrics behind ``GET /debug/timeseries``.
        self.timeseries = TimeSeries()
        self._draining = False
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "GraphService":
        """Warm up the registry, bind the socket, serve on a thread."""
        for spec in self._warmup_specs:
            name, graph = parse_graph_spec(spec)
            self.register(name, graph)
        service = self

        class _Server(ThreadingHTTPServer):
            daemon_threads = True
            # Survive bursts of simultaneous connects (the admission
            # queue, not the TCP backlog, is the intended choke point).
            request_queue_size = 128

        self._httpd = _Server((self.host, self._requested_port), _Handler)
        self._httpd.service = service  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise ServeError("service is not started")
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block until the serving thread exits (shutdown() from afar)."""
        if self._thread is not None:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)

    def shutdown(self, drain: bool = True) -> None:
        """Stop serving.  ``drain=True`` fulfills every queued ticket first.

        New query/registration requests are rejected (503) the moment this
        is called; queued BFS tickets are flushed to completion so no
        admitted request is ever dropped, then the HTTP loop stops.
        """
        self._draining = True
        with self._control_lock:
            controllers = list(self._controllers.values())
        for controller in controllers:
            controller.stop_accepting()
            controller.release()
            if drain:
                controller.drain_pending()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # registry plumbing
    # ------------------------------------------------------------------
    def register(self, name: str, graph) -> GraphEntry:
        """Stage ``graph`` under ``name`` and account its staging I/O."""
        if self._draining:
            raise ServeError("service is shutting down")
        entry = self.registry.register(name, graph)
        if entry.staged.staging_report is not None:
            staging = CounterRegistry.from_report(entry.staged.staging_report)
            staging.inc("serve_graphs_registered_total", 1.0, graph=name)
            self._merge_metrics(staging)
        with self._metrics_lock:
            self._registry_metrics.set(
                "breaker_state",
                float(entry.health.state_code()),
                graph=name,
            )
        return entry

    def controller(self, entry: GraphEntry) -> AdmissionController:
        """The admission controller bound to ``entry`` (created lazily)."""
        with self._control_lock:
            controller = self._controllers.get(entry.name)
            if controller is None or controller.entry is not entry:
                controller = AdmissionController(
                    entry,
                    capacity=self.capacity,
                    metrics_sink=self._merge_metrics,
                    clock=self.clock,
                    default_deadline_ms=self.default_deadline_ms,
                    flush_retries=self.flush_retries,
                )
                self._controllers[entry.name] = controller
            return controller

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _merge_metrics(self, registry: CounterRegistry) -> None:
        with self._metrics_lock:
            self._registry_metrics.merge(registry)
        # Feed the rolling time-series from the same per-flush samples
        # the admission controller emits (no second accounting source).
        for name, labels, value in registry.items():
            if name == "serve_flushes_total":
                self.timeseries.record_flush(
                    labels.get("graph", "?"), flushes=int(value)
                )
            elif name == "serve_flushed_queries_total":
                self.timeseries.record_flush(
                    labels.get("graph", "?"), flushes=0, queries=int(value)
                )

    def _on_breaker_transition(
        self, name: str, frm: str, to: str, reason: str
    ) -> None:
        """Breaker sink: keep the gauge + transition counter in lockstep.

        ``breaker_state`` is a *gauge* (set, never merged — merging adds)
        while ``breaker_transitions_total`` is an ordinary counter; both
        live directly on the long-lived service registry.
        """
        with self._metrics_lock:
            self._registry_metrics.inc(
                "breaker_transitions_total", 1.0,
                graph=name, **{"from": frm, "to": to},
            )
            self._registry_metrics.set(
                "breaker_state", float(STATE_CODES[to]), graph=name
            )

    def count_disconnect(self, path: str, request_id: str) -> None:
        """A client hung up mid-response: count it, no stack trace."""
        with self._metrics_lock:
            self._registry_metrics.inc("client_disconnect_total", 1.0)

    def metrics_snapshot(self) -> CounterRegistry:
        """Copy of the service registry (safe to export/reconcile)."""
        snap = CounterRegistry()
        with self._metrics_lock:
            snap.merge(self._registry_metrics)
        return snap

    def _count_request(
        self, graph: str, algorithm: str, status: int,
        queue_wait: Optional[float] = None,
        sim_seconds: Optional[float] = None,
    ) -> None:
        with self._metrics_lock:
            self._registry_metrics.inc(
                "serve_requests_total",
                1.0,
                graph=graph,
                algorithm=algorithm,
                status=status,
            )
            if queue_wait is not None:
                self._registry_metrics.observe(
                    "serve_queue_wait_seconds",
                    queue_wait,
                    buckets=QUEUE_WAIT_BUCKETS,
                    graph=graph,
                )
            if sim_seconds is not None:
                self._registry_metrics.observe(
                    "serve_service_sim_seconds",
                    sim_seconds,
                    buckets=DEFAULT_DURATION_BUCKETS,
                    graph=graph,
                )
        self.timeseries.record_request(
            graph,
            queue_wait=queue_wait or 0.0,
            service_time=sim_seconds or 0.0,
            error=status >= 400,
        )

    def next_request_id(self) -> str:
        with self._request_lock:
            self._request_count += 1
            return f"req-{self._request_count:06d}"

    @property
    def requests_served(self) -> int:
        with self._request_lock:
            return self._request_count

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def handle_query(
        self, name: str, algorithm: str, payload: Dict, request_id: str
    ) -> Tuple[Dict, Dict[str, str]]:
        """Run one query; returns (JSON body, extra headers).

        Raises library errors for the handler to map to HTTP problems.
        """
        if self._draining:
            raise ServeError("service is shutting down")
        entry = self.registry.get(name)
        if algorithm == "bfs":
            return self._handle_bfs(entry, payload, request_id)
        if algorithm == "sssp":
            return self._handle_serial(
                entry, payload, request_id, "sssp"
            )
        if algorithm == "pagerank":
            return self._handle_serial(
                entry, payload, request_id, "pagerank"
            )
        raise _RequestProblem(
            404, "not_found",
            f"unknown algorithm {algorithm!r}; options: {QUERY_ALGORITHMS}",
        )

    def _extract_roots(self, entry: GraphEntry, payload: Dict):
        """Pull root/roots out of a payload, boundary-validated."""
        if "roots" in payload:
            roots = payload["roots"]
            if (
                not isinstance(roots, list)
                or not roots
                or not all(isinstance(r, int) for r in roots)
            ):
                raise _RequestProblem(
                    400, "bad_root",
                    "\"roots\" must be a non-empty list of integers",
                )
            root_entry: object = roots
        elif "root" in payload:
            if not isinstance(payload["root"], int):
                raise _RequestProblem(
                    400, "bad_root", "\"root\" must be an integer"
                )
            root_entry = int(payload["root"])
        else:
            raise _RequestProblem(
                400, "bad_root", "payload needs \"root\" or \"roots\""
            )
        roots_list = root_entry if isinstance(root_entry, list) else [root_entry]
        # Validate here so a bad root 400s instead of poisoning a batch.
        BFSAlgorithm().validate_roots(entry.graph.num_vertices, roots_list)
        return root_entry

    def _extract_deadline(self, payload: Dict) -> Optional[float]:
        """Pull an optional per-request ``deadline_ms`` out of a payload."""
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is None:
            return None
        if (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or deadline_ms <= 0
        ):
            raise _RequestProblem(
                400, "bad_request",
                "\"deadline_ms\" must be a number > 0 (milliseconds)",
            )
        return float(deadline_ms)

    def _handle_bfs(
        self, entry: GraphEntry, payload: Dict, request_id: str
    ) -> Tuple[Dict, Dict[str, str]]:
        root_entry = self._extract_roots(entry, payload)
        deadline_ms = self._extract_deadline(payload)
        controller = self.controller(entry)
        ticket = controller.submit(
            request_id, root_entry, deadline_ms=deadline_ms
        )
        result = ticket.result
        report = ticket.report
        body = {
            "graph": entry.name,
            "algorithm": "bfs",
            "engine": entry.engine.name,
            "request_id": request_id,
            "root": root_entry,
            "flush": {
                "id": ticket.flush_id,
                "size": ticket.flush_size,
                "mode": (
                    "batched"
                    if ticket.report_id == ticket.flush_id
                    else "serial_fallback"
                ),
            },
            "result": {
                "levels": result.levels.tolist(),
                "parents": result.parents.tolist(),
                "num_iterations": int(result.num_iterations),
                "edges_scanned": int(result.edges_scanned),
            },
            "report": report.to_dict(),
            "report_id": ticket.report_id,
            "timing": {
                "queue_wait_seconds": ticket.queue_wait,
                "sim_execution_seconds": report.execution_time,
                "sim_compute_seconds": report.compute_time,
                "sim_iowait_seconds": report.iowait_time,
            },
        }
        headers = {
            "X-Queue-Wait-Seconds": f"{ticket.queue_wait:.6f}",
            "X-Sim-Execution-Seconds": f"{report.execution_time:.9f}",
            "X-Sim-Compute-Seconds": f"{report.compute_time:.9f}",
            "X-Sim-Iowait-Seconds": f"{report.iowait_time:.9f}",
            "X-Flush-Id": str(ticket.flush_id),
            "X-Flush-Size": str(ticket.flush_size),
        }
        self._count_request(
            entry.name, "bfs", 200, ticket.queue_wait, report.execution_time
        )
        self.timeseries.sample_depth(entry.name, controller.depth)
        self.request_log.record(
            RequestRecord(
                request_id=request_id,
                graph=entry.name,
                algorithm="bfs",
                roots=root_entry,
                status=200,
                flush_id=ticket.flush_id,
                flush_size=ticket.flush_size,
                timing=body["timing"],
                spans=ticket.spans,
            )
        )
        return body, headers

    def _handle_serial(
        self, entry: GraphEntry, payload: Dict, request_id: str, kind: str
    ) -> Tuple[Dict, Dict[str, str]]:
        engine = entry.engine
        if kind == "sssp":
            root_entry = self._extract_roots(entry, payload)
            max_weight = payload.get("max_weight", 8)
            if not isinstance(max_weight, int) or max_weight < 1:
                raise _RequestProblem(
                    400, "bad_request", "\"max_weight\" must be an int >= 1"
                )
            algo = WeightedSSSPAlgorithm(hash_weights(max_weight))
        else:
            rounds = payload.get("rounds", 5)
            if not isinstance(rounds, int) or rounds < 1:
                raise _RequestProblem(
                    400, "bad_request", "\"rounds\" must be an int >= 1"
                )
            damping = payload.get("damping", 0.85)
            if not isinstance(damping, (int, float)) or not 0.0 < damping < 1.0:
                raise _RequestProblem(
                    400, "bad_request", "\"damping\" must be in (0, 1)"
                )
            algo = PageRankAlgorithm(
                entry.graph.out_degrees(), damping=float(damping)
            )
            root_entry = 0  # PageRank is root-free; slot 0 satisfies the API
            # PageRank has no convergence event: cap the rounds on a
            # per-request engine sharing the staged artifact's config.
            engine = type(entry.engine)(
                entry.engine.config.with_(max_iterations=rounds)
            )
        entry.health.admit()
        with entry.lock:
            injector = entry.machine.fault_injector
            fault_base = (
                injector.counts_snapshot() if injector is not None else None
            )
            tracer = Tracer()
            entry.machine.attach_tracer(tracer)
            tracer.bind_host_clock(self.clock)
            try:
                batch = run_staged_queries(
                    engine,
                    entry.staged,
                    entry.checkpoint,
                    [root_entry],
                    algorithm=algo,
                    mode="serial",
                    span_attrs={
                        "flush_id": request_id,
                        "request_ids": [request_id],
                    },
                    max_recoveries=DEFAULT_MAX_RECOVERIES,
                )
            except (CrashError, IOFaultError) as exc:
                entry.health.record_flush_failure(type(exc).__name__)
                raise FlushFailedError(
                    f"serial {kind} query {request_id} failed: "
                    f"{type(exc).__name__}: {exc}",
                    retry_after=entry.health.retry_after(),
                ) from exc
            entry.health.record_flush_success()
            result = batch.queries[0]
            registry = CounterRegistry.from_report(result.report)
            registry.ingest_result(result)
            registry.ingest_spans(tracer)
            registry.inc("serve_serial_queries_total", 1.0,
                         graph=entry.name, algorithm=kind)
            if fault_base is not None:
                for cname, labels, value in injector.delta_samples(fault_base):
                    registry.inc(cname, value, graph=entry.name, **labels)
            entry.queries_served += 1
        self._merge_metrics(registry)
        report = result.report
        if kind == "sssp":
            output = {
                "distances": result.output["distance"].tolist(),
                "unreached_value": 0xFFFFFFFF,
                "num_iterations": int(result.num_iterations),
            }
        else:
            output = {
                "ranks": result.output["rank"].tolist(),
                "rounds": int(result.num_iterations),
            }
        body = {
            "graph": entry.name,
            "algorithm": kind,
            "engine": engine.name,
            "request_id": request_id,
            "root": root_entry if kind == "sssp" else None,
            "flush": None,
            "result": output,
            "report": report.to_dict(),
            "report_id": request_id,
            "timing": {
                "queue_wait_seconds": 0.0,
                "sim_execution_seconds": report.execution_time,
                "sim_compute_seconds": report.compute_time,
                "sim_iowait_seconds": report.iowait_time,
            },
        }
        headers = {
            "X-Queue-Wait-Seconds": "0.000000",
            "X-Sim-Execution-Seconds": f"{report.execution_time:.9f}",
            "X-Sim-Compute-Seconds": f"{report.compute_time:.9f}",
            "X-Sim-Iowait-Seconds": f"{report.iowait_time:.9f}",
        }
        self._count_request(entry.name, kind, 200, None, report.execution_time)
        self.request_log.record(
            RequestRecord(
                request_id=request_id,
                graph=entry.name,
                algorithm=kind,
                roots=root_entry if kind == "sssp" else None,
                status=200,
                flush_id=request_id,
                flush_size=1,
                timing=body["timing"],
                spans=tracer.spans,
            )
        )
        return body, headers

    # ------------------------------------------------------------------
    # non-query endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        """Liveness + per-graph readiness (`"tiny" in body["graphs"]` holds).

        ``graphs`` maps each registered name to its breaker state and
        readiness — quarantined graphs are registered but not ready.
        """
        graphs = {
            name: {
                "state": entry.health.state,
                "ready": entry.health.ready,
            }
            for name, entry in sorted(self.registry.entries().items())
        }
        return {
            "status": "draining" if self._draining else "ok",
            "graphs": graphs,
            "requests_served": self.requests_served,
        }

    def stats(self, name: str) -> Dict:
        entry = self.registry.get(name)
        controller = self.controller(entry)
        payload = entry.stats()
        payload["admission"] = controller.counters()
        snap = self.metrics_snapshot()
        payload["latency"] = {
            "queue_wait_seconds": quantile_summary(
                snap.histogram("serve_queue_wait_seconds", graph=name)
            ),
            "service_sim_seconds": quantile_summary(
                snap.histogram("serve_service_sim_seconds", graph=name)
            ),
        }
        return payload

    def debug_requests(self) -> Dict:
        return {"requests": self.request_log.summaries()}

    def debug_request(self, request_id: str) -> Dict:
        record = self.request_log.get(request_id)
        if record is None:
            raise _RequestProblem(
                404, "not_found",
                f"request {request_id!r} is not in the recent-request ring "
                f"(capacity {self.request_log.capacity})",
            )
        return record.to_dict()

    def debug_timeseries(self, windows: Optional[int] = None) -> Dict:
        return self.timeseries.snapshot(windows=windows)

    def debug_health(self) -> Dict:
        """Full breaker snapshots incl. transition logs, per graph.

        The chaos harness replays a fault schedule twice and asserts the
        ``(from, to, reason)`` transition sequences here are identical —
        health evolution is deterministic per seed.
        """
        return {
            "graphs": {
                name: entry.health.snapshot()
                for name, entry in sorted(self.registry.entries().items())
            }
        }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> GraphService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # HTTP access logging is the deployment's job, not ours

    def _request_id(self) -> str:
        """Honor a valid client-supplied ``X-Request-Id``, else generate.

        Validated against :data:`REQUEST_ID_PATTERN` (safe charset, at
        most 64 chars) so external correlation ids can't smuggle header
        injection or unbounded strings into traces and logs.
        """
        supplied = self.headers.get("X-Request-Id", "")
        if supplied and REQUEST_ID_PATTERN.match(supplied):
            return supplied
        return self.service.next_request_id()

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        request_id = self._request_id()
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send_json(200, self.service.healthz(), request_id)
            elif parts == ["metrics"]:
                text = to_prometheus(self.service.metrics_snapshot())
                self._send_text(200, text, request_id)
            elif parts == ["graphs"]:
                body = {"graphs": sorted(self.service.registry.names())}
                self._send_json(200, body, request_id)
            elif len(parts) == 3 and parts[0] == "graphs" and parts[2] == "stats":
                self._send_json(
                    200, self.service.stats(parts[1]), request_id
                )
            elif parts == ["debug", "health"]:
                self._send_json(
                    200, self.service.debug_health(), request_id
                )
            elif parts == ["debug", "requests"]:
                self._send_json(
                    200, self.service.debug_requests(), request_id
                )
            elif len(parts) == 3 and parts[:2] == ["debug", "requests"]:
                self._send_json(
                    200, self.service.debug_request(parts[2]), request_id
                )
            elif parts == ["debug", "timeseries"]:
                query = parse_qs(urlparse(self.path).query)
                windows: Optional[int] = None
                if "windows" in query:
                    try:
                        windows = int(query["windows"][0])
                    except ValueError:
                        raise _RequestProblem(
                            400, "bad_request",
                            "\"windows\" must be an integer",
                        )
                self._send_json(
                    200, self.service.debug_timeseries(windows), request_id
                )
            elif len(parts) >= 2 and parts[0] == "graphs" and parts[-1] in (
                QUERY_ALGORITHMS
            ):
                raise _RequestProblem(
                    405, "method_not_allowed",
                    f"use POST for /{'/'.join(parts)}",
                )
            else:
                raise _RequestProblem(
                    404, "not_found", f"no route for GET {self.path}"
                )
        except Exception as exc:  # noqa: BLE001 - single HTTP error funnel
            self._send_problem(_problem_for(exc), request_id)

    def do_POST(self) -> None:
        request_id = self._request_id()
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            payload = self._read_json()
            if len(parts) == 3 and parts[0] == "graphs" and parts[2] in (
                QUERY_ALGORITHMS
            ):
                body, headers = self.service.handle_query(
                    parts[1], parts[2], payload, request_id
                )
                self._send_json(200, body, request_id, headers)
            elif len(parts) == 2 and parts[0] == "graphs":
                spec = payload.get("spec")
                if not isinstance(spec, str) or not spec:
                    raise _RequestProblem(
                        400, "bad_request",
                        "registration payload needs a \"spec\" string",
                    )
                _, graph = parse_graph_spec(spec)
                entry = self.service.register(parts[1], graph)
                self._send_json(201, entry.stats(), request_id)
            else:
                raise _RequestProblem(
                    404, "not_found", f"no route for POST {self.path}"
                )
        except Exception as exc:  # noqa: BLE001 - single HTTP error funnel
            self._send_problem(_problem_for(exc), request_id)

    # ------------------------------------------------------------------
    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _RequestProblem(
                400, "bad_request", f"malformed JSON body: {exc}"
            )
        if not isinstance(payload, dict):
            raise _RequestProblem(
                400, "bad_request", "JSON body must be an object"
            )
        return payload

    def _send_json(
        self,
        status: int,
        body: Dict,
        request_id: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", JSON_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(data)))
            self.send_header("X-Request-Id", request_id)
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response.  The work is already done
            # and accounted; swallow the write failure (re-raising would
            # just stack-trace in the handler thread) and count it.
            self.service.count_disconnect(self.path, request_id)

    def _send_text(self, status: int, text: str, request_id: str) -> None:
        data = text.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(data)))
            self.send_header("X-Request-Id", request_id)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            self.service.count_disconnect(self.path, request_id)

    def _send_problem(self, problem: _RequestProblem, request_id: str) -> None:
        graph = None
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) >= 2 and parts[0] == "graphs":
            graph = parts[1]
        algorithm = parts[2] if len(parts) == 3 else None
        if graph is not None and algorithm in QUERY_ALGORITHMS:
            # Deadline problems carry the expired ticket's queue wait so
            # 504s stay visible in the wait histograms and time-series.
            self.service._count_request(
                graph, algorithm, problem.status, problem.queue_wait
            )
            # Failed query requests land in the debug ring too — a 429
            # burst should be explainable after the fact by id.
            self.service.request_log.record(
                RequestRecord(
                    request_id=request_id,
                    graph=graph,
                    algorithm=algorithm,
                    status=problem.status,
                    timing=(
                        {"queue_wait_seconds": problem.queue_wait}
                        if problem.queue_wait is not None
                        else None
                    ),
                    error={"type": problem.kind, "message": problem.message},
                )
            )
        body = {
            "error": {"type": problem.kind, "message": problem.message},
            "request_id": request_id,
        }
        self._send_json(problem.status, body, request_id, problem.headers)


__all__ = ["GraphService", "JSON_CONTENT_TYPE", "QUERY_ALGORITHMS"]
