"""Bounded recent-request ring backing the ``/debug/requests`` endpoints.

End-to-end request tracing for the serving layer: every finished query
request — leader or follower of a coalesced flush, success or error —
deposits a :class:`RequestRecord` here.  A record remembers what the
response told the client (the ``X-Queue-Wait-Seconds`` / ``X-Sim-*``
timing breakdown, the flush id and size) *plus* the flush's full span
tree, so ``GET /debug/requests/{id}`` can reconstruct exactly where a
specific request's time went after the fact — which flush it coalesced
into, which iteration dominated, how long it sat in the admission queue.

Tickets of one flush share the flush tracer's span list (the admission
controller hands the same list to every drained ticket), so a 16-wide
flush costs one trace, not sixteen copies.  The ring is bounded
(:class:`collections.deque` ``maxlen``) — debugging state never grows
with uptime.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.obs.tracer import Span

#: Default number of requests the ring remembers.
DEFAULT_REQUEST_LOG_CAPACITY = 64


class RequestRecord:
    """One served (or failed) request, as the client saw it."""

    __slots__ = (
        "request_id", "graph", "algorithm", "roots", "status",
        "flush_id", "flush_size", "timing", "error", "spans",
    )

    def __init__(
        self,
        request_id: str,
        graph: Optional[str],
        algorithm: Optional[str],
        roots: Optional[object] = None,
        status: int = 200,
        flush_id: Optional[str] = None,
        flush_size: int = 0,
        timing: Optional[Dict[str, float]] = None,
        error: Optional[Dict[str, str]] = None,
        spans: Optional[Sequence[Span]] = None,
    ) -> None:
        self.request_id = request_id
        self.graph = graph
        self.algorithm = algorithm
        self.roots = roots
        self.status = status
        self.flush_id = flush_id
        self.flush_size = flush_size
        #: The same queue-wait + sim-time breakdown the response's
        #: ``X-Queue-Wait-Seconds``/``X-Sim-*`` headers carried.
        self.timing = dict(timing) if timing else {}
        self.error = dict(error) if error else None
        self.spans = list(spans) if spans is not None else []

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """One line of ``GET /debug/requests``."""
        return {
            "request_id": self.request_id,
            "graph": self.graph,
            "algorithm": self.algorithm,
            "status": self.status,
            "flush_id": self.flush_id,
            "flush_size": self.flush_size,
            "queue_wait_seconds": self.timing.get("queue_wait_seconds", 0.0),
            "sim_execution_seconds": self.timing.get(
                "sim_execution_seconds", 0.0
            ),
            "error": self.error,
        }

    def to_dict(self) -> Dict[str, object]:
        """Full ``GET /debug/requests/{id}`` payload: summary + span tree."""
        out = self.summary()
        out["roots"] = self.roots
        out["timing"] = dict(self.timing)
        out["spans"] = [sp.to_dict() for sp in self.spans]
        query = self._own_query_span()
        if query is not None:
            out["query_span_id"] = query.span_id
            if query.host_timed:
                out["host_service_seconds"] = query.host_duration
        return out

    def _own_query_span(self) -> Optional[Span]:
        """The ``query`` span whose ``request_ids`` names this request."""
        for sp in self.spans:
            if sp.name != "query":
                continue
            ids = sp.attrs.get("request_ids")
            if isinstance(ids, (list, tuple)) and self.request_id in ids:
                return sp
        return None


class RequestLog:
    """Thread-safe bounded ring of :class:`RequestRecord` objects."""

    def __init__(self, capacity: int = DEFAULT_REQUEST_LOG_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: "deque[RequestRecord]" = deque(maxlen=self.capacity)
        self._mutex = threading.Lock()

    def record(self, record: RequestRecord) -> None:
        with self._mutex:
            self._ring.append(record)

    def get(self, request_id: str) -> Optional[RequestRecord]:
        """Newest record with this id (client-supplied ids may repeat)."""
        with self._mutex:
            for record in reversed(self._ring):
                if record.request_id == request_id:
                    return record
        return None

    def summaries(self) -> List[Dict[str, object]]:
        """Summary lines, newest request first."""
        with self._mutex:
            records = list(self._ring)
        return [r.summary() for r in reversed(records)]

    def __len__(self) -> int:
        with self._mutex:
            return len(self._ring)


__all__ = [
    "DEFAULT_REQUEST_LOG_CAPACITY",
    "RequestLog",
    "RequestRecord",
]
