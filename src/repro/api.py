"""One-call convenience front-end.

:func:`run_bfs` wires together a dataset, a machine and an engine with
sensible defaults — the examples and the CLI go through it, and it is the
quickest way to reproduce a single data point of the paper.
:func:`run_queries` is the batch front door: stage the graph once, run one
query per root entry, and report per-query plus amortized costs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.config import FastBFSConfig
from repro.core.engine import FastBFSEngine
from repro.engines.base import EngineConfig
from repro.engines.graphchi import GraphChiConfig, GraphChiEngine
from repro.engines.result import BatchResult, EngineResult
from repro.engines.xstream import XStreamEngine
from repro.errors import ConfigError, EngineError
from repro.graph.graph import Graph
from repro.obs import (
    CounterRegistry,
    TraceProfile,
    Tracer,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs import profile_trace as _profile_trace
from repro.storage.faults import FaultPlan
from repro.storage.machine import Machine

ENGINES = ("fastbfs", "x-stream", "graphchi")

#: Anything run_bfs accepts as an engine instance.
AnyEngine = Union[FastBFSEngine, XStreamEngine, GraphChiEngine]
AnyEngineConfig = Union[EngineConfig, GraphChiConfig]


def make_engine(name: str, config: Optional[AnyEngineConfig] = None) -> AnyEngine:
    """Instantiate an engine by name ('fastbfs', 'x-stream', 'graphchi')."""
    if name in ("fastbfs", "fast-bfs"):
        return FastBFSEngine(config)
    if name in ("x-stream", "xstream"):
        return XStreamEngine(config)
    if name == "graphchi":
        return GraphChiEngine(config)
    raise ConfigError(f"unknown engine {name!r}; options: {ENGINES}")


def _resolve_machine(
    machine: Optional[Machine],
    machine_kwargs: dict,
    fault_plan: Optional[FaultPlan] = None,
) -> Machine:
    if machine is None:
        return Machine.commodity_server(fault_plan=fault_plan, **machine_kwargs)
    if machine_kwargs:
        raise ConfigError("pass either a machine or machine kwargs, not both")
    if fault_plan is not None:
        raise ConfigError(
            "pass fault_plan only when run_bfs builds the machine; for your "
            "own machine use Machine(..., fault_plan=...) directly"
        )
    return machine


def _prepare_tracing(
    machine: Machine,
    trace_path: Optional[str],
    host_profile: bool = False,
) -> None:
    """Attach a fresh tracer when a trace export or host profile was
    requested; ``host_profile`` additionally binds the shared
    :class:`~repro.obs.hostprof.HostClock` so spans carry host stamps."""
    if (trace_path is not None or host_profile) and not machine.tracer.enabled:
        machine.attach_tracer(Tracer())
    if host_profile and machine.tracer.enabled:
        from repro.obs.hostprof import HOST_CLOCK

        machine.tracer.bind_host_clock(HOST_CLOCK)


def export_observability(
    machine: Machine,
    result: Union[EngineResult, BatchResult],
    trace_path: Optional[str],
    metrics_path: Optional[str],
) -> None:
    """Attach the counter snapshot to ``result`` and write export files.

    Counters are sampled from the machine (so they reconcile exactly with
    ``machine.report()``) and the run's engine-level counters are folded
    in.  Export is strictly post-run: nothing here touches the simulated
    clock or devices.
    """
    registry = CounterRegistry.from_machine(machine)
    if isinstance(result, BatchResult):
        for q in result.queries:
            q.metrics = CounterRegistry.from_report(q.report).ingest_result(q)
            registry.ingest_result(q)
    else:
        registry.ingest_result(result)
    if machine.tracer.enabled:
        registry.ingest_spans(machine.tracer)
    result.metrics = registry
    if trace_path is not None:
        write_spans_jsonl(machine.tracer, trace_path)
    if metrics_path is not None:
        write_prometheus(registry, metrics_path)


def profile_trace(
    source,
    registry: Optional[CounterRegistry] = None,
    report=None,
) -> TraceProfile:
    """Analyze a span trace into a :class:`~repro.obs.TraceProfile`.

    ``source`` is a JSONL trace path (as written by ``run_bfs(...,
    trace_path=...)``), a :class:`~repro.obs.Tracer`, a machine with a
    tracer attached, or an iterable of spans.  Supplying the run's
    ``registry`` (``result.metrics``) joins per-device I/O attribution
    into the report; supplying its ``report`` additionally enables exact
    reconciliation against the :class:`~repro.storage.machine.IOReport`.
    """
    return _profile_trace(source, registry=registry, report=report)


def run_bfs(
    graph: Graph,
    engine: Union[str, AnyEngine] = "fastbfs",
    machine: Optional[Machine] = None,
    root: int = 0,
    roots: Optional[Sequence[int]] = None,
    config: Optional[AnyEngineConfig] = None,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    host_profile: bool = False,
    **machine_kwargs: object,
) -> EngineResult:
    """Run BFS on ``graph`` with the named engine and return its result.

    A fresh 4GB/4-core single-HDD commodity server is built unless
    ``machine`` is given; extra keyword arguments (``memory=``, ``cores=``,
    ``num_disks=``, ``disk_kind=``) configure that default machine.
    ``roots`` makes the single traversal multi-source (every engine
    supports it); for a *batch* of independent traversals use
    :func:`run_queries`.

    ``fault_plan`` attaches a seeded
    :class:`~repro.storage.faults.FaultPlan` to the default machine, so
    the run executes under deterministic fault injection (see
    ``docs/fault_injection.md``); injected failures the engine cannot
    absorb surface as typed :class:`~repro.errors.ReproError` subclasses.

    ``trace_path`` writes the span trace as JSONL (attaching a tracer to
    the machine if none is installed); ``metrics_path`` writes a
    Prometheus-style counter snapshot.  Either also attaches the sampled
    :class:`~repro.obs.CounterRegistry` as ``result.metrics``.  Tracing
    never changes simulated timings or byte totals.

    ``host_profile=True`` binds the host wall clock to the tracer
    (attaching one if needed) so every span carries host-side stamps;
    ``profile_trace(...).host()`` then yields the per-stage
    ``host_seconds_per_sim_second`` breakdown.  Host stamping is strictly
    neutral for simulated results (see :mod:`repro.obs.hostprof`).
    """
    machine = _resolve_machine(machine, machine_kwargs, fault_plan)
    _prepare_tracing(machine, trace_path, host_profile)
    eng = make_engine(engine, config) if isinstance(engine, str) else engine
    result = eng.run(graph, machine, root=root, roots=roots)
    export_observability(machine, result, trace_path, metrics_path)
    return result


def run_queries(
    graph: Graph,
    roots: Sequence,
    engine: Union[str, AnyEngine] = "fastbfs",
    machine: Optional[Machine] = None,
    config: Optional[AnyEngineConfig] = None,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    mode: str = "serial",
    host_profile: bool = False,
    **machine_kwargs: object,
) -> BatchResult:
    """Run one BFS per ``roots`` entry, staging the graph exactly once.

    Each entry is a root vertex (or a sequence of roots for one
    multi-source query).  The staged artifact is shared: staging I/O is
    paid once and the returned
    :class:`~repro.engines.result.BatchResult` carries the staging report,
    one per-query result, and amortized timings.

    ``mode`` selects the scheduler policy: ``"serial"`` (default) rewinds
    the machine between queries — the historical behaviour, bit for bit;
    ``"batched"`` packs the queries into MS-BFS batches of up to 64 that
    share one edge-scan timeline (see ``docs/batched_bfs.md``), returning
    bit-identical per-query levels/parents at a fraction of the edge
    scans.  Engines/algorithms without a batched kernel fall back to
    serial execution (``batch.extras["batched_fallback"]``).

    ``trace_path``/``metrics_path`` export the batch's span trace (one
    ``query`` span per root entry in serial mode; one per batch, with
    ``query_slot`` markers, in batched mode) and counter snapshot, and
    attach registries to the batch (``batch.metrics``) and to every query
    (``query.metrics``, built from that query's delta report).
    """
    if len(roots) == 0:
        # Validate at the API boundary: an empty batch used to travel all
        # the way into the engine before failing.
        raise EngineError(
            "run_queries needs at least one root entry (got an empty list)"
        )
    machine = _resolve_machine(machine, machine_kwargs)
    _prepare_tracing(machine, trace_path, host_profile)
    eng = make_engine(engine, config) if isinstance(engine, str) else engine
    batch = eng.run_many(graph, machine, roots=roots, mode=mode)
    export_observability(machine, batch, trace_path, metrics_path)
    return batch


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    warmup: Sequence[str] = (),
    engine: str = "fastbfs",
    capacity: int = 128,
    max_graphs: int = 4,
    block: bool = True,
    fault_profile: Optional[str] = None,
    fault_seed: int = 0,
    fault_plan=None,
    retry=None,
    breaker_policy=None,
    default_deadline_ms: Optional[float] = None,
    flush_retries: int = 2,
):
    """Boot the long-lived graph query service (see docs/serving.md).

    Stages every ``warmup`` graph spec into the artifact registry, binds
    the HTTP/JSON API on ``host:port`` (port 0 picks an ephemeral port)
    and — with ``block=True`` — serves until interrupted.  ``block=False``
    returns the running :class:`~repro.serve.app.GraphService` (serving on
    a daemon thread) for embedding and tests; call ``service.shutdown()``
    to drain and stop it.

    ``warmup`` entries are dataset names from the Table II registry
    (``rmat22``), generator specs (``rmat:scale=12,edge_factor=8,seed=7``)
    or either form aliased as ``name@spec``.  ``capacity`` bounds the
    per-graph admission queue; ``max_graphs`` bounds the registry LRU.

    Resilience knobs (see "Serving under faults" in docs/serving.md):
    ``fault_profile`` names a seeded serve fault plan
    (:data:`~repro.tooling.chaos.SERVE_FAULT_PROFILES`; drawn with
    ``fault_seed``) attached to every registered graph's machine, or pass
    an explicit ``fault_plan`` / per-registration override.  ``retry``
    is an I/O-level :class:`~repro.storage.faults.RetryPolicy`,
    ``breaker_policy`` a :class:`~repro.serve.health.BreakerPolicy`,
    ``default_deadline_ms`` the server-wide request deadline and
    ``flush_retries`` the batched-flush attempt budget before the
    serial fallback.
    """
    from repro.serve import GraphService

    if fault_profile is not None:
        if fault_plan is not None:
            raise ConfigError(
                "pass either fault_profile or fault_plan, not both"
            )
        from repro.tooling.chaos import serve_fault_plan

        fault_plan = serve_fault_plan(fault_profile, fault_seed)
    service = GraphService(
        host=host,
        port=port,
        warmup=warmup,
        engine=engine,
        capacity=capacity,
        max_graphs=max_graphs,
        fault_plan=fault_plan,
        retry=retry,
        breaker_policy=breaker_policy,
        default_deadline_ms=default_deadline_ms,
        flush_retries=flush_retries,
    )
    service.start()
    if not block:
        return service
    try:
        service.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        service.shutdown()
    return service


def analyze_tree(
    paths: Sequence[str] = ("src/repro",),
    baseline_path: Optional[str] = None,
):
    """Run the whole-program static analyzer (rules FB2xx) over ``paths``.

    Returns an :class:`~repro.tooling.analyzer.AnalysisResult` whose
    ``findings`` are already ``# noqa``-suppressed and baseline-filtered;
    ``result.ok`` is the same pass/fail the ``repro analyze`` CLI exits
    with.  ``baseline_path`` names a committed ``fastbfs-baseline/1``
    file of intentionally-accepted findings (see docs/static_analysis.md).
    """
    from repro.tooling.analyzer import analyze_paths
    from repro.tooling.report import Baseline

    baseline = Baseline.load(baseline_path) if baseline_path else None
    return analyze_paths(list(paths), baseline=baseline)
