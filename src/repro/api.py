"""One-call convenience front-end.

:func:`run_bfs` wires together a dataset, a machine and an engine with
sensible defaults — the examples and the CLI go through it, and it is the
quickest way to reproduce a single data point of the paper.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.config import FastBFSConfig
from repro.core.engine import FastBFSEngine
from repro.engines.base import EngineConfig
from repro.engines.graphchi import GraphChiConfig, GraphChiEngine
from repro.engines.result import EngineResult
from repro.engines.xstream import XStreamEngine
from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.storage.machine import Machine

ENGINES = ("fastbfs", "x-stream", "graphchi")

#: Anything run_bfs accepts as an engine instance.
AnyEngine = Union[FastBFSEngine, XStreamEngine, GraphChiEngine]
AnyEngineConfig = Union[EngineConfig, GraphChiConfig]


def make_engine(name: str, config: Optional[AnyEngineConfig] = None) -> AnyEngine:
    """Instantiate an engine by name ('fastbfs', 'x-stream', 'graphchi')."""
    if name in ("fastbfs", "fast-bfs"):
        return FastBFSEngine(config)
    if name in ("x-stream", "xstream"):
        return XStreamEngine(config)
    if name == "graphchi":
        return GraphChiEngine(config)
    raise ConfigError(f"unknown engine {name!r}; options: {ENGINES}")


def run_bfs(
    graph: Graph,
    engine: Union[str, AnyEngine] = "fastbfs",
    machine: Optional[Machine] = None,
    root: int = 0,
    config: Optional[AnyEngineConfig] = None,
    **machine_kwargs: object,
) -> EngineResult:
    """Run BFS on ``graph`` with the named engine and return its result.

    A fresh 4GB/4-core single-HDD commodity server is built unless
    ``machine`` is given; extra keyword arguments (``memory=``, ``cores=``,
    ``num_disks=``, ``disk_kind=``) configure that default machine.
    """
    if machine is None:
        machine = Machine.commodity_server(**machine_kwargs)
    elif machine_kwargs:
        raise ConfigError("pass either a machine or machine kwargs, not both")
    eng = make_engine(engine, config) if isinstance(engine, str) else engine
    if isinstance(eng, GraphChiEngine):
        return eng.run(graph, machine, root=root)
    return eng.run(graph, machine, root=root)
