"""Repo-specific static lint pass (AST-based, stdlib-only).

Generic linters cannot know that this codebase simulates time, or that its
virtual files must be created through the VFS so leak tracking works.  This
module encodes those repo rules and is runnable standalone::

    PYTHONPATH=src python -m repro.tooling.lint src/repro --format sarif

Findings, ``# noqa`` suppression, output formats (text/JSON/SARIF) and the
0/1/2 exit-code contract are shared with the whole-program analyzer
(:mod:`repro.tooling.analyzer`) through :mod:`repro.tooling.report`.

Rules (suppress a line with ``# noqa`` or ``# noqa: FB1xx``):

FB101  wallclock-in-sim
    No ``time.time()`` / ``perf_counter()`` / ``monotonic()`` /
    ``process_time()`` / ``datetime.now()`` inside ``sim/``, ``core/`` or
    ``storage/``.  Simulated components must take time only from
    :class:`~repro.sim.clock.SimClock`; one wall-clock read silently breaks
    determinism and every reproduced figure.
FB102  bare-assert
    No ``assert`` statements in library code: they vanish under
    ``python -O``, so invariants guarded by them are not guarded at all.
    Raise a :class:`~repro.errors.ReproError` subclass instead.
FB103  scatter-hook-pairing
    A class overriding ``_pre_partition_scatter`` must also override
    ``_post_partition_scatter``: resources opened per-partition (stay
    writers) must have a closing hook, or they leak across partitions.
FB104  direct-virtualfile
    ``VirtualFile`` may only be constructed inside ``storage/vfs.py``.
    Files built elsewhere bypass the namespace, the leak tracking and the
    replace/delete protocol.
FB105  clock-private-mutation
    No assignments to ``._now`` / ``._compute_time`` / ``._iowait_time``
    outside ``sim/clock.py``; mutating clock internals bypasses the
    monotonicity guarantee every timeline relies on.
FB106  timeline-direct-schedule
    No ``*.timeline.schedule(...)`` calls outside ``storage/device.py``
    and ``sim/``: requests must go through ``Device.submit`` so seeks,
    bytes and the page cache are accounted.
FB107  runstate-outside-engine
    No ``_RunState(...)`` construction and no assignment to a ``._rt``
    attribute outside ``engines/`` and ``core/``.  Per-query state is
    owned by :class:`~repro.engines.session.QuerySession`; front-ends
    that build or swap it by hand bypass the session protocol (staged
    file protection, sanitizer session scoping, checkpoint discipline).
FB108  engine-debug-io
    No ``time`` module import and no ``print(...)`` calls inside
    ``engines/`` or ``core/``.  Engines run under the simulated clock
    and report through ``EngineResult``/the tracer; a ``time`` import is
    a wall-clock leak waiting to happen (FB101 only catches the call
    sites it knows about), and print-based debugging corrupts the CLI's
    machine-readable output.  Emit spans or counters instead
    (``repro.obs``).
FB109  broad-except-in-engine
    No bare ``except:`` and no ``except Exception:`` /
    ``except BaseException:`` inside ``engines/`` or ``core/``.  The
    fault-injection subsystem (:mod:`repro.storage.faults`) signals every
    failure through a typed :class:`~repro.errors.ReproError` subclass —
    ``TransientIOError`` retries, ``CrashError`` recovers, the rest
    propagate.  A broad handler silently swallows injected crashes and
    corruption signals, turning a recoverable fault into wrong output.
    Catch the specific ``ReproError`` subclass the layer can actually
    handle.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.tooling.report import (
    EXIT_USAGE,
    OUTPUT_FORMATS,
    Finding,
    exit_code,
    is_suppressed,
    render,
)

#: Lint findings are plain :class:`~repro.tooling.report.Finding` records;
#: the historical name is kept because tests and callers construct it.
LintViolation = Finding

#: Tool name reported in JSON/SARIF output.
TOOL_NAME = "repro.tooling.lint"

#: Simulated-time subsystems where wall-clock reads are forbidden.
SIM_SUBSYSTEMS = frozenset({"sim", "core", "storage"})

#: Subsystems that legitimately own per-query run state (FB107).
ENGINE_SUBSYSTEMS = frozenset({"engines", "core"})

_BANNED_TIME_FUNCS = frozenset(
    {"time", "perf_counter", "monotonic", "process_time", "clock"}
)
_BANNED_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_CLOCK_PRIVATE_ATTRS = frozenset({"_now", "_compute_time", "_iowait_time"})

RULES: Dict[str, str] = {
    "FB101": "wall-clock call in a simulated-time subsystem",
    "FB102": "bare assert in library code (stripped under python -O)",
    "FB103": "_pre_partition_scatter without _post_partition_scatter",
    "FB104": "direct VirtualFile construction outside storage/vfs.py",
    "FB105": "mutation of SimClock internals outside sim/clock.py",
    "FB106": "Timeline.schedule call outside Device.submit",
    "FB107": "_RunState construction or ._rt mutation outside engines/core",
    "FB108": "time-module import or print() call inside engines/core",
    "FB109": "bare/broad except inside engines/core (catch ReproError subclasses)",
}

#: Exception names FB109 treats as over-broad in engines/core.
_BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


@dataclass(frozen=True)
class _FileContext:
    """Where a file sits inside the package (drives per-rule scoping)."""

    path: str
    subsystem: str  # first directory under the repro package, "" if top-level
    filename: str

    @property
    def in_sim_layer(self) -> bool:
        return self.subsystem in SIM_SUBSYSTEMS

    @property
    def in_engine_layer(self) -> bool:
        return self.subsystem in ENGINE_SUBSYSTEMS

    @property
    def is_vfs_module(self) -> bool:
        return self.subsystem == "storage" and self.filename == "vfs.py"

    @property
    def is_clock_module(self) -> bool:
        return self.subsystem == "sim" and self.filename == "clock.py"

    @property
    def is_device_module(self) -> bool:
        return self.subsystem == "storage" and self.filename == "device.py"


def _file_context(path: str) -> _FileContext:
    parts = PurePosixPath(path.replace("\\", "/")).parts
    subsystem = ""
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        below = parts[idx + 1 :]
        if len(below) > 1:
            subsystem = below[0]
    return _FileContext(
        path=path, subsystem=subsystem, filename=parts[-1] if parts else ""
    )


class _Visitor(ast.NodeVisitor):
    """Single-pass collector for every rule."""

    def __init__(self, ctx: _FileContext) -> None:
        self.ctx = ctx
        self.violations: List[LintViolation] = []
        # Local aliases of banned wall-clock callables / their modules.
        self._time_modules: Set[str] = set()
        self._datetime_names: Set[str] = set()
        self._banned_names: Set[str] = set()

    # -- helpers -------------------------------------------------------
    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            LintViolation(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    # -- imports (alias tracking for FB101, time-import ban for FB108) -
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self._time_modules.add(local)
                self._flag_time_import(node)
            elif alias.name in ("datetime", "datetime.datetime"):
                self._datetime_names.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            self._flag_time_import(node)
            for alias in node.names:
                if alias.name in _BANNED_TIME_FUNCS:
                    self._banned_names.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self._datetime_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _flag_time_import(self, node: ast.AST) -> None:
        if self.ctx.in_engine_layer:
            self._flag(
                node,
                "FB108",
                f"time-module import in {self.ctx.subsystem}/ — engines run "
                "on the simulated clock (SimClock); wall time has no place "
                "here",
            )

    # -- FB101 / FB104 / FB106 / FB107 / FB108 -------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if self.ctx.in_sim_layer:
            self._check_wallclock(node, func)
        self._check_virtualfile(node, func)
        self._check_timeline_schedule(node, func)
        self._check_runstate_construction(node, func)
        self._check_print_call(node, func)
        self.generic_visit(node)

    def _check_print_call(self, node: ast.Call, func: ast.expr) -> None:
        if not self.ctx.in_engine_layer:
            return
        if isinstance(func, ast.Name) and func.id == "print":
            self._flag(
                node,
                "FB108",
                f"print() in {self.ctx.subsystem}/ — engines report through "
                "EngineResult, spans and counters (repro.obs), never stdout",
            )

    def _check_wallclock(self, node: ast.Call, func: ast.expr) -> None:
        if isinstance(func, ast.Name) and func.id in self._banned_names:
            self._flag(
                node,
                "FB101",
                f"wall-clock call {func.id}() in {self.ctx.subsystem}/ "
                "(use the run's SimClock)",
            )
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner in self._time_modules and func.attr in _BANNED_TIME_FUNCS:
                self._flag(
                    node,
                    "FB101",
                    f"wall-clock call {owner}.{func.attr}() in "
                    f"{self.ctx.subsystem}/ (use the run's SimClock)",
                )
            elif (
                owner in self._datetime_names
                and func.attr in _BANNED_DATETIME_FUNCS
            ):
                self._flag(
                    node,
                    "FB101",
                    f"wall-clock call {owner}.{func.attr}() in "
                    f"{self.ctx.subsystem}/ (use the run's SimClock)",
                )

    def _check_virtualfile(self, node: ast.Call, func: ast.expr) -> None:
        if self.ctx.is_vfs_module:
            return
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "VirtualFile":
            self._flag(
                node,
                "FB104",
                "construct files through VFS.create(), not VirtualFile() "
                "(bypasses the namespace and leak tracking)",
            )

    def _check_timeline_schedule(self, node: ast.Call, func: ast.expr) -> None:
        if self.ctx.is_device_module or self.ctx.subsystem == "sim":
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "schedule"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "timeline"
        ):
            self._flag(
                node,
                "FB106",
                "submit requests through Device.submit(), not "
                "timeline.schedule() (bypasses seek/byte accounting)",
            )

    def _check_runstate_construction(
        self, node: ast.Call, func: ast.expr
    ) -> None:
        if self.ctx.in_engine_layer:
            return
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "_RunState":
            self._flag(
                node,
                "FB107",
                "per-query state is owned by QuerySession; do not construct "
                "_RunState outside engines/ or core/",
            )

    # -- FB109 ---------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.ctx.in_engine_layer:
            if node.type is None:
                self._flag(
                    node,
                    "FB109",
                    f"bare except in {self.ctx.subsystem}/ swallows injected "
                    "faults (CrashError, corruption signals); catch the "
                    "specific ReproError subclass this layer can handle",
                )
            else:
                for exc in self._exception_names(node.type):
                    if exc in _BROAD_EXCEPTION_NAMES:
                        self._flag(
                            node,
                            "FB109",
                            f"except {exc} in {self.ctx.subsystem}/ swallows "
                            "injected faults (CrashError, corruption "
                            "signals); catch the specific ReproError "
                            "subclass this layer can handle",
                        )
        self.generic_visit(node)

    @staticmethod
    def _exception_names(expr: ast.expr) -> List[str]:
        """Names caught by an except clause (handles tuple clauses)."""
        items = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        names: List[str] = []
        for item in items:
            if isinstance(item, ast.Name):
                names.append(item.id)
            elif isinstance(item, ast.Attribute):
                names.append(item.attr)
        return names

    # -- FB102 ---------------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._flag(
            node,
            "FB102",
            "bare assert is stripped under python -O; raise a ReproError "
            "subclass instead",
        )
        self.generic_visit(node)

    # -- FB103 ---------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if (
            "_pre_partition_scatter" in methods
            and "_post_partition_scatter" not in methods
        ):
            self._flag(
                node,
                "FB103",
                f"class {node.name} overrides _pre_partition_scatter but "
                "not _post_partition_scatter; per-partition resources "
                "must be closed by the paired hook",
            )
        self.generic_visit(node)

    # -- FB105 / FB107 -------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_clock_mutation(target)
            self._check_rt_mutation(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_clock_mutation(node.target)
        self._check_rt_mutation(node.target)
        self.generic_visit(node)

    def _check_clock_mutation(self, target: ast.expr) -> None:
        if self.ctx.is_clock_module:
            return
        if (
            isinstance(target, ast.Attribute)
            and target.attr in _CLOCK_PRIVATE_ATTRS
        ):
            self._flag(
                target,
                "FB105",
                f"assignment to {target.attr} outside sim/clock.py breaks "
                "the clock's monotonicity guarantee",
            )

    def _check_rt_mutation(self, target: ast.expr) -> None:
        if self.ctx.in_engine_layer:
            return
        if isinstance(target, ast.Attribute) and target.attr == "_rt":
            self._flag(
                target,
                "FB107",
                "assignment to ._rt outside engines/ or core/ bypasses the "
                "QuerySession protocol (use engine.session(staged).run())",
            )


def lint_source(source: str, path: str = "<string>") -> List[LintViolation]:
    """Lint one source string; ``path`` scopes the per-directory rules."""
    ctx = _file_context(path)
    if ctx.filename.startswith("test_") or ctx.subsystem == "tests":
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintViolation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="FB100",
                message=f"syntax error: {exc.msg}",
            )
        ]
    visitor = _Visitor(ctx)
    visitor.visit(tree)
    lines = source.splitlines()
    return [v for v in visitor.violations if not is_suppressed(v, lines)]


def _iter_python_files(paths: Iterable[str]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Sequence[str]) -> List[LintViolation]:
    """Lint every ``.py`` file under the given files/directories."""
    violations: List[LintViolation] = []
    for file in _iter_python_files(paths):
        violations.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file))
        )
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tooling.lint",
        description="repo-specific static lint pass (see rule list with "
        "--list-rules)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--format",
        choices=OUTPUT_FORMATS,
        default="text",
        dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for code, summary in sorted(RULES.items()):
            print(f"{code}  {summary}")
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
        return EXIT_USAGE
    violations = lint_paths(args.paths)
    report = render(violations, args.fmt, TOOL_NAME, RULES)
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)
    return exit_code(violations)


if __name__ == "__main__":
    sys.exit(main())
